#!/usr/bin/env python
"""Executable-docs checker: docs that rot fail the build.

Two checks over ``README.md`` and every ``docs/*.md``:

1. **Snippet execution** -- every fenced ```` ```python ```` block is
   written to a temp file and executed with the repo's ``src`` on
   ``PYTHONPATH``; a non-zero exit fails the check.  A block whose first
   line is ``# doc-snippet: no-run`` is skipped (for deliberately partial
   fragments); everything else must actually run, so every Python example
   in the docs is continuously proven against the current API.
2. **Relative links** -- every markdown link target that is not an
   ``http(s)``/``mailto`` URL or a pure anchor must exist on disk relative
   to the file containing it.

Run from the repository root (CI's ``docs`` job does)::

    python tools/check_docs.py            # check everything
    python tools/check_docs.py --links-only
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Marker exempting one fenced block from execution.
NO_RUN_MARKER = "# doc-snippet: no-run"

FENCE_RE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.is_file()]


def python_snippets(path: Path) -> List[Tuple[int, str]]:
    """``(line_number, code)`` of every executable python block in ``path``."""
    text = path.read_text()
    snippets = []
    for match in FENCE_RE.finditer(text):
        code = match.group(1)
        first_line = code.lstrip("\n").splitlines()[0:1]
        if first_line and first_line[0].strip() == NO_RUN_MARKER:
            continue
        line = text.count("\n", 0, match.start()) + 2  # first code line
        snippets.append((line, code))
    return snippets


def run_snippet(source: Path, line: int, code: str) -> Tuple[bool, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    with tempfile.NamedTemporaryFile(
        "w", suffix=".py", prefix="doc_snippet_", delete=False
    ) as handle:
        handle.write(code)
        temp_path = handle.name
    try:
        completed = subprocess.run(
            [sys.executable, temp_path],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
    finally:
        os.unlink(temp_path)
    if completed.returncode != 0:
        return False, (
            f"{source.relative_to(REPO_ROOT)}:{line}: snippet failed "
            f"(exit {completed.returncode})\n{completed.stderr.strip()}"
        )
    return True, ""


def check_snippets(files: List[Path]) -> List[str]:
    failures = []
    for path in files:
        for line, code in python_snippets(path):
            ok, message = run_snippet(path, line, code)
            if not ok:
                failures.append(message)
            else:
                print(f"ok: {path.relative_to(REPO_ROOT)}:{line}")
    return failures


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:  # outside the repo (e.g. a test's tmp dir)
        return str(path)


def check_links(files: List[Path]) -> List[str]:
    failures = []
    for path in files:
        for match in LINK_RE.finditer(path.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                failures.append(f"{_display(path)}: broken link -> {target}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only", action="store_true", help="skip snippet execution"
    )
    args = parser.parse_args(argv)

    files = markdown_files()
    failures = check_links(files)
    if not args.links_only:
        failures.extend(check_snippets(files))
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"{len(failures)} docs check(s) failed", file=sys.stderr)
        return 1
    print(f"docs ok: {len(files)} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
