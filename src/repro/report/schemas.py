"""Centralised validation of every ``BENCH_*.json`` artifact schema.

Until this module existed, each benchmark artifact's shape was asserted by
an ad-hoc ``python - <<PY`` block inside the CI workflow -- five copies of
"load, check keys, print ok" that nothing else could reuse and no unit
test covered.  The validators here are that knowledge as a library: the CI
perf-smoke job runs ``python -m repro.report.schemas FILE...``, the report
pipeline validates artifacts before reading them, and
``tests/test_report.py`` pins every committed artifact (plus a malformed
rejection per schema) against the same code.

Each validator checks both *structure* (required keys, value types) and the
*semantic invariants* an artifact must never violate regardless of the
machine that produced it -- e.g. a shard or recovery artifact whose
transcripts were not byte-identical is invalid, not merely slow.

The validated benchmark kinds and their current schema versions are listed
in :data:`SCHEMA_VERSIONS`; ``trajectory`` is the cross-PR perf-trajectory
artifact introduced by the report pipeline (see
:mod:`repro.report.trajectory`).
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..core.errors import ReproError

__all__ = [
    "SCHEMA_VERSIONS",
    "BENCH_FILENAMES",
    "SchemaError",
    "validate_bench",
    "validate_bench_file",
    "main",
]

#: ``benchmark`` field -> current schema version, for every artifact kind.
SCHEMA_VERSIONS: Dict[str, int] = {
    "hotpath": 2,
    "e2e": 2,
    "setup": 1,
    "shard": 1,
    "recovery": 1,
    "trajectory": 1,
}

#: ``benchmark`` field -> conventional filename under ``results/`` (or a CI
#: artifact directory).
BENCH_FILENAMES: Dict[str, str] = {
    kind: f"BENCH_{kind}.json" for kind in SCHEMA_VERSIONS
}


class SchemaError(ReproError):
    """Raised when a benchmark artifact violates its schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _number(payload: Mapping[str, Any], key: str, context: str) -> float:
    value = payload.get(key)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{context}: {key!r} must be a number, got {value!r}",
    )
    _require(
        math.isfinite(float(value)), f"{context}: {key!r} must be finite"
    )
    return float(value)


def _positive(payload: Mapping[str, Any], key: str, context: str) -> float:
    value = _number(payload, key, context)
    _require(value > 0, f"{context}: {key!r} must be > 0, got {value!r}")
    return value


def _rows(payload: Mapping[str, Any], key: str, context: str) -> List[Mapping[str, Any]]:
    rows = payload.get(key)
    _require(
        isinstance(rows, list) and rows,
        f"{context}: {key!r} must be a non-empty list",
    )
    for row in rows:
        _require(isinstance(row, Mapping), f"{context}: {key!r} rows must be objects")
    return rows


def _header(payload: Mapping[str, Any], kind: str) -> None:
    _require(isinstance(payload, Mapping), f"{kind}: payload must be an object")
    _require(
        payload.get("benchmark") == kind,
        f"{kind}: 'benchmark' must be {kind!r}, got {payload.get('benchmark')!r}",
    )
    _require(
        payload.get("schema") == SCHEMA_VERSIONS[kind],
        f"{kind}: 'schema' must be {SCHEMA_VERSIONS[kind]}, "
        f"got {payload.get('schema')!r}",
    )


def _validate_hotpath(payload: Mapping[str, Any]) -> None:
    _header(payload, "hotpath")
    for row in _rows(payload, "windows", "hotpath"):
        context = f"hotpath window {row.get('window')!r}"
        window = _positive(row, "window", context)
        _require(window == int(window), f"{context}: 'window' must be integral")
        _positive(row, "indexed_ms", context)
        _positive(row, "rebuild_ms", context)
        _positive(row, "speedup", context)
        # The batched columns are load-bearing: CI's batch floor reads them,
        # and an artifact without them means the batched path never ran.
        _positive(row, "batched_ms", context)
        _positive(row, "batched_speedup", context)
        sweep = _rows(row, "batch_sweep", context)
        for cell in sweep:
            _positive(cell, "batch_size", context)
            _positive(cell, "batched_ms", context)
            _positive(cell, "speedup", context)


def _validate_e2e(payload: Mapping[str, Any]) -> None:
    _header(payload, "e2e")
    for row in _rows(payload, "scenarios", "e2e"):
        context = f"e2e scenario {row.get('label')!r}"
        _require(
            isinstance(row.get("label"), str) and row["label"],
            f"{context}: 'label' must be a non-empty string",
        )
        _positive(row, "nodes", context)
        _positive(row, "rounds", context)
        _positive(row, "window", context)
        _positive(row, "wallclock_seconds", context)
        accuracy = _number(row, "accuracy_exact", context)
        _require(
            0.0 <= accuracy <= 1.0,
            f"{context}: 'accuracy_exact' must be within [0, 1], got {accuracy}",
        )


def _validate_setup(payload: Mapping[str, Any]) -> None:
    _header(payload, "setup")
    brute_cap = _positive(payload, "brute_cap", "setup")
    for row in _rows(payload, "sizes", "setup"):
        context = f"setup size {row.get('nodes')!r}"
        nodes = _positive(row, "nodes", context)
        _positive(row, "grid_ms", context)
        _positive(row, "layout_ms", context)
        _positive(row, "edges", context)
        _positive(row, "terrain", context)
        if nodes <= brute_cap:
            _positive(row, "brute_ms", context)
            _positive(row, "speedup", context)


def _validate_shard(payload: Mapping[str, Any]) -> None:
    _header(payload, "shard")
    _positive(payload, "cores", "shard")
    _positive(payload, "nodes", "shard")
    _positive(payload, "baseline_seconds", "shard")
    counts = []
    for row in _rows(payload, "shards", "shard"):
        context = f"shard count {row.get('shards')!r}"
        counts.append(_positive(row, "shards", context))
        _positive(row, "wallclock_seconds", context)
        _positive(row, "speedup", context)
        # Not a perf number: a sharded transcript that diverged from the
        # single-process run makes the whole measurement meaningless.
        _require(
            row.get("identical") is True,
            f"{context}: 'identical' must be true (transcript diverged?)",
        )
    _require(
        counts == sorted(set(counts)),
        f"shard: counts must be strictly increasing, got {counts}",
    )


def _validate_recovery(payload: Mapping[str, Any]) -> None:
    _header(payload, "recovery")
    _positive(payload, "baseline_seconds", "recovery")
    _positive(payload, "nodes", "recovery")
    _positive(payload, "checkpoint_every", "recovery")
    checkpointed = payload.get("checkpointed")
    _require(
        isinstance(checkpointed, Mapping),
        "recovery: 'checkpointed' must be an object",
    )
    _require(
        checkpointed.get("identical") is True,
        "recovery: checkpointed transcript must be identical",
    )
    _positive(checkpointed, "checkpoints", "recovery checkpointed")
    _positive(checkpointed, "overhead_ratio", "recovery checkpointed")
    _positive(checkpointed, "mean_write_seconds", "recovery checkpointed")
    killed = payload.get("killed")
    _require(isinstance(killed, Mapping), "recovery: 'killed' must be an object")
    _require(
        killed.get("identical") is True,
        "recovery: recovered transcript must be identical",
    )
    restarts = _positive(killed, "restarts", "recovery killed")
    _require(restarts >= 1, "recovery: the killed run must have restarted")
    _require(
        isinstance(killed.get("chaos_fired"), list) and killed["chaos_fired"],
        "recovery: 'chaos_fired' must be a non-empty list (kill never fired?)",
    )
    _positive(killed, "downtime_seconds", "recovery killed")


def _validate_trajectory(payload: Mapping[str, Any]) -> None:
    _header(payload, "trajectory")
    for entry in _rows(payload, "entries", "trajectory"):
        context = f"trajectory entry {entry.get('sha')!r}"
        _require(
            isinstance(entry.get("sha"), str) and entry["sha"],
            f"{context}: 'sha' must be a non-empty string",
        )
        metrics = entry.get("metrics")
        _require(
            isinstance(metrics, Mapping) and metrics,
            f"{context}: 'metrics' must be a non-empty object",
        )
        for key, value in metrics.items():
            _require(
                isinstance(key, str) and key,
                f"{context}: metric keys must be non-empty strings",
            )
            _require(
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and math.isfinite(float(value)),
                f"{context}: metric {key!r} must be a finite number, "
                f"got {value!r}",
            )


_VALIDATORS: Dict[str, Callable[[Mapping[str, Any]], None]] = {
    "hotpath": _validate_hotpath,
    "e2e": _validate_e2e,
    "setup": _validate_setup,
    "shard": _validate_shard,
    "recovery": _validate_recovery,
    "trajectory": _validate_trajectory,
}


def validate_bench(payload: Mapping[str, Any]) -> str:
    """Validate ``payload`` against its schema; returns the benchmark kind.

    The kind is dispatched from the payload's own ``benchmark`` field, so a
    caller holding an arbitrary ``BENCH_*.json`` needs no out-of-band
    knowledge.  Raises :class:`SchemaError` on any violation.
    """
    if not isinstance(payload, Mapping):
        raise SchemaError(f"artifact payload must be an object, got {type(payload).__name__}")
    kind = payload.get("benchmark")
    validator = _VALIDATORS.get(kind)
    if validator is None:
        raise SchemaError(
            f"unknown benchmark kind {kind!r}; expected one of "
            f"{sorted(_VALIDATORS)}"
        )
    validator(payload)
    return kind


def validate_bench_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate one artifact file; returns the parsed payload."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SchemaError(f"{path}: no such artifact") from None
    except ValueError as error:
        raise SchemaError(f"{path}: not valid JSON ({error})") from None
    try:
        validate_bench(payload)
    except SchemaError as error:
        raise SchemaError(f"{path}: {error}") from None
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.report.schemas FILE...`` -- validate artifacts.

    Prints one ``<file>: <kind> schema <version> ok`` line per valid file;
    exits 1 on the first violation (CI's perf-smoke job runs this over
    every freshly benched artifact).
    """
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.report.schemas FILE...", file=sys.stderr)
        return 2
    for name in argv:
        try:
            payload = validate_bench_file(name)
        except SchemaError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"{name}: {payload['benchmark']} schema {payload['schema']} ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
