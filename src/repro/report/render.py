"""Deterministic markdown / static-HTML rendering for the report site.

A page is a title plus a flat list of typed blocks (headings, prose, text
tables, link lists, sparklines); :func:`render_markdown` and
:func:`render_html` turn the same page into the two output formats.  Both
renderers are **byte-deterministic**: number formatting goes through the
same :func:`~repro.analysis.tables._format_cell` the text tables use
(fixed precision, no locale), nothing reads the clock, the environment or
the filesystem, and dict-ordered inputs are rendered in the order given --
so the golden-file tests in ``tests/test_report.py`` can pin entire pages
byte-for-byte and any accidental nondeterminism shows up as a diff.

The only machine-varying value a page may carry is the git SHA in its
footer, and that is *injected* by the caller (``site.py``), never read
here.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from ..analysis.tables import _format_cell

__all__ = [
    "Heading",
    "Paragraph",
    "Pre",
    "TableBlock",
    "LinkList",
    "Spark",
    "Page",
    "render_markdown",
    "render_html",
]


@dataclass(frozen=True)
class Heading:
    text: str
    level: int = 2


@dataclass(frozen=True)
class Paragraph:
    text: str


@dataclass(frozen=True)
class Pre:
    """Verbatim text (the figure tables render exactly as the CLI prints
    them, so a page and ``repro-wsn figure`` can be eyeballed against each
    other)."""

    text: str


@dataclass(frozen=True)
class TableBlock:
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    precision: int = 5


@dataclass(frozen=True)
class LinkList:
    """Bulleted ``(label, href)`` links (hrefs are site-relative)."""

    items: Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class Spark:
    """One metric's values across trajectory entries.

    Markdown renders the series inline; HTML adds an SVG sparkline whose
    point coordinates are formatted at fixed precision (deterministic).
    """

    label: str
    values: Tuple[float, ...]
    precision: int = 4


Block = Union[Heading, Paragraph, Pre, TableBlock, LinkList, Spark]


@dataclass
class Page:
    """One output page: ``name`` is the file stem (``index``, ``figure4``)."""

    name: str
    title: str
    blocks: List[Block] = field(default_factory=list)

    def add(self, block: Block) -> "Page":
        self.blocks.append(block)
        return self


def _cell(value: object, precision: int) -> str:
    return _format_cell(value, precision)


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def _md_table(block: TableBlock) -> List[str]:
    header = "| " + " | ".join(str(h) for h in block.headers) + " |"
    rule = "| " + " | ".join("---" for _ in block.headers) + " |"
    lines = [header, rule]
    for row in block.rows:
        lines.append(
            "| " + " | ".join(_cell(v, block.precision) for v in row) + " |"
        )
    return lines


def _md_spark(block: Spark) -> str:
    series = " -> ".join(_cell(v, block.precision) for v in block.values)
    return f"- `{block.label}`: {series}"


def render_markdown(page: Page, footer: str = "") -> str:
    lines: List[str] = [f"# {page.title}", ""]
    for block in page.blocks:
        if isinstance(block, Heading):
            lines.extend([f"{'#' * block.level} {block.text}", ""])
        elif isinstance(block, Paragraph):
            lines.extend([block.text, ""])
        elif isinstance(block, Pre):
            lines.extend(["```", block.text, "```", ""])
        elif isinstance(block, TableBlock):
            lines.extend(_md_table(block) + [""])
        elif isinstance(block, LinkList):
            lines.extend(
                [f"- [{label}]({href})" for label, href in block.items] + [""]
            )
        elif isinstance(block, Spark):
            lines.extend([_md_spark(block), ""])
        else:  # pragma: no cover - the Block union is closed
            raise TypeError(f"unknown block type {type(block).__name__}")
    if footer:
        lines.extend(["---", "", footer, ""])
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
_CSS = """\
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       padding: 0 1rem; color: #1a1a2e; }
h1, h2, h3 { line-height: 1.2; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #c8c8d4; padding: 0.25rem 0.6rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eef0f6; }
td:first-child, th:first-child { text-align: left; }
pre { background: #f5f6fa; border: 1px solid #dcdfe8; padding: 0.75rem;
      overflow-x: auto; font-size: 0.85rem; }
code { background: #f5f6fa; padding: 0 0.2rem; }
footer { margin-top: 2rem; border-top: 1px solid #c8c8d4; padding-top: 0.5rem;
         color: #6a6a7a; font-size: 0.85rem; }
svg.spark { vertical-align: middle; margin-left: 0.5rem; }
svg.spark polyline { fill: none; stroke: #3c5bd0; stroke-width: 1.5; }
"""


def _spark_svg(block: Spark, width: int = 160, height: int = 36) -> str:
    values = [float(v) for v in block.values]
    pad = 3.0
    low, high = min(values), max(values)
    span = high - low
    points: List[str] = []
    for index, value in enumerate(values):
        if len(values) == 1:
            x = width / 2.0
        else:
            x = pad + (width - 2 * pad) * index / (len(values) - 1)
        if span == 0:
            y = height / 2.0
        else:
            y = pad + (height - 2 * pad) * (1.0 - (value - low) / span)
        points.append(f"{x:.2f},{y:.2f}")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline points="{" ".join(points)}" /></svg>'
    )


def _html_table(block: TableBlock) -> List[str]:
    lines = ["<table>", "<thead><tr>"]
    lines.extend(f"<th>{_html.escape(str(h))}</th>" for h in block.headers)
    lines.extend(["</tr></thead>", "<tbody>"])
    for row in block.rows:
        cells = "".join(
            f"<td>{_html.escape(_cell(v, block.precision))}</td>" for v in row
        )
        lines.append(f"<tr>{cells}</tr>")
    lines.extend(["</tbody>", "</table>"])
    return lines


def render_html(page: Page, footer: str = "") -> str:
    lines: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>{_html.escape(page.title)}</title>",
        f"<style>\n{_CSS}</style>",
        "</head>",
        "<body>",
        f"<h1>{_html.escape(page.title)}</h1>",
    ]
    for block in page.blocks:
        if isinstance(block, Heading):
            level = block.level
            lines.append(f"<h{level}>{_html.escape(block.text)}</h{level}>")
        elif isinstance(block, Paragraph):
            lines.append(f"<p>{_html.escape(block.text)}</p>")
        elif isinstance(block, Pre):
            lines.append(f"<pre>{_html.escape(block.text)}</pre>")
        elif isinstance(block, TableBlock):
            lines.extend(_html_table(block))
        elif isinstance(block, LinkList):
            lines.append("<ul>")
            lines.extend(
                f'<li><a href="{_html.escape(href, quote=True)}">'
                f"{_html.escape(label)}</a></li>"
                for label, href in block.items
            )
            lines.append("</ul>")
        elif isinstance(block, Spark):
            series = " -&gt; ".join(
                _html.escape(_cell(v, block.precision)) for v in block.values
            )
            lines.append(
                f"<p><code>{_html.escape(block.label)}</code>: {series}"
                f"{_spark_svg(block)}</p>"
            )
        else:  # pragma: no cover - the Block union is closed
            raise TypeError(f"unknown block type {type(block).__name__}")
    if footer:
        lines.append(f"<footer>{_html.escape(footer)}</footer>")
    lines.extend(["</body>", "</html>"])
    return "\n".join(lines) + "\n"
