"""Cross-PR perf trajectory: extraction, the v1 artifact, regression diffs.

The five committed ``BENCH_*.json`` artifacts each record one PR's
measurement of one subsystem.  This module flattens them into a single
namespace of **trajectory metrics** and maintains
``results/BENCH_trajectory.json`` (schema v1), which appends one entry per
PR so the perf story of the repo is a diffable artifact instead of
archaeology over git history.

Metric keys are parameterised by the configuration that produced them --
``hotpath.speedup.w256``, ``setup.grid_ms.n4096``,
``shard.speedup.n4096.x4`` -- because a number measured at a different
window/network size is a *different metric*, not a comparable one.  A diff
therefore only compares the **intersection** of two entries' keys: a quick
CI run (windows 64/256, 256-node shard bench) gates against a committed
full run exactly on the configurations both measured, and everything else
is listed as skipped rather than silently compared across configs.

Regression gating is deliberately restricted to **dimensionless ratios**
(speedups, the recovery overhead ratio), with generous per-metric
thresholds: raw latencies and wall-clocks vary several-fold between a dev
box and a shared CI runner, so they are tracked and rendered but never
gated -- the absolute floors in CI's perf-smoke job already guard them at
fixed configurations.  The gate here exists to catch the order-of-magnitude
regressions (an index silently falling back to rebuilds, a batched path
that stopped batching) that a same-machine floor can miss when the floor
itself is conservative.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from .schemas import SCHEMA_VERSIONS, SchemaError, validate_bench
from .reader import load_bench_artifacts

__all__ = [
    "TRAJECTORY_SCHEMA",
    "MetricGate",
    "GATES",
    "gate_for",
    "extract_metrics",
    "new_entry",
    "empty_trajectory",
    "load_trajectory",
    "append_entry",
    "baseline_metrics",
    "DiffRow",
    "RegressionReport",
    "diff_metrics",
]

#: Version of the ``BENCH_trajectory.json`` artifact this module writes.
TRAJECTORY_SCHEMA = SCHEMA_VERSIONS["trajectory"]

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(label: str) -> str:
    """Stable metric-key fragment from a human label."""
    return _SLUG_RE.sub("-", label.lower()).strip("-")


# ----------------------------------------------------------------------
# Metric extraction
# ----------------------------------------------------------------------
def extract_metrics(
    artifacts: Mapping[str, Mapping[str, Any]]
) -> Dict[str, float]:
    """Flatten validated bench artifacts into ``{metric key: value}``.

    ``artifacts`` is ``{kind: payload}`` as returned by
    :func:`~repro.report.reader.load_bench_artifacts`; kinds that are
    absent contribute nothing (their metrics simply don't exist for this
    entry), and a ``trajectory`` payload is ignored -- it is the history,
    not a measurement.
    """
    metrics: Dict[str, float] = {}

    hotpath = artifacts.get("hotpath")
    if hotpath is not None:
        for row in hotpath["windows"]:
            w = int(row["window"])
            metrics[f"hotpath.indexed_ms.w{w}"] = float(row["indexed_ms"])
            metrics[f"hotpath.speedup.w{w}"] = float(row["speedup"])
            metrics[f"hotpath.batched_ms.w{w}"] = float(row["batched_ms"])
            metrics[f"hotpath.batched_speedup.w{w}"] = float(
                row["batched_speedup"]
            )

    e2e = artifacts.get("e2e")
    if e2e is not None:
        total = 0.0
        for row in e2e["scenarios"]:
            total += float(row["wallclock_seconds"])
            key = (
                f"e2e.wallclock_s.{_slug(row['label'])}"
                f".n{int(row['nodes'])}.w{int(row['window'])}"
            )
            metrics[key] = float(row["wallclock_seconds"])
        metrics["e2e.total_wallclock_s"] = total

    setup = artifacts.get("setup")
    if setup is not None:
        for row in setup["sizes"]:
            n = int(row["nodes"])
            metrics[f"setup.layout_ms.n{n}"] = float(row["layout_ms"])
            metrics[f"setup.grid_ms.n{n}"] = float(row["grid_ms"])
            if row.get("speedup") is not None:
                metrics[f"setup.speedup.n{n}"] = float(row["speedup"])

    shard = artifacts.get("shard")
    if shard is not None:
        n = int(shard["nodes"])
        metrics[f"shard.baseline_s.n{n}"] = float(shard["baseline_seconds"])
        for row in shard["shards"]:
            metrics[f"shard.speedup.n{n}.x{int(row['shards'])}"] = float(
                row["speedup"]
            )

    recovery = artifacts.get("recovery")
    if recovery is not None:
        n = int(recovery["nodes"])
        checkpointed = recovery["checkpointed"]
        killed = recovery["killed"]
        metrics[f"recovery.overhead_ratio.n{n}"] = float(
            checkpointed["overhead_ratio"]
        )
        metrics[f"recovery.checkpoint_write_ms.n{n}"] = (
            float(checkpointed["mean_write_seconds"]) * 1000.0
        )
        metrics[f"recovery.downtime_s.n{n}"] = float(
            killed["downtime_seconds"]
        )

    return dict(sorted(metrics.items()))


# ----------------------------------------------------------------------
# Regression gates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricGate:
    """Gating rule for one metric-key prefix.

    For a higher-is-better metric a current/base ratio below ``ratio``
    regresses; for lower-is-better, a ratio above ``ratio`` does.
    """

    prefix: str
    higher_is_better: bool
    ratio: float

    def regressed(self, base: float, current: float) -> bool:
        observed = current / base
        if self.higher_is_better:
            return observed < self.ratio
        return observed > self.ratio


#: Gated prefixes, first match wins.  Thresholds are calibrated so a quick
#: CI run diffing against a committed full-profile artifact stays clean on
#: any plausible runner while an order-of-magnitude regression still trips:
#: e.g. the committed window-256 indexed speedup is ~19x, so the 0.25 gate
#: fires below ~4.7x -- right where perf-smoke's absolute floor (5x) sits.
GATES: Tuple[MetricGate, ...] = (
    MetricGate("hotpath.speedup.", higher_is_better=True, ratio=0.25),
    MetricGate("hotpath.batched_speedup.", higher_is_better=True, ratio=0.2),
    MetricGate("setup.speedup.", higher_is_better=True, ratio=0.25),
    MetricGate("shard.speedup.", higher_is_better=True, ratio=0.4),
    MetricGate("recovery.overhead_ratio.", higher_is_better=False, ratio=2.0),
)


def gate_for(key: str) -> Optional[MetricGate]:
    """The gate covering ``key``, or ``None`` (tracked but not gated)."""
    for gate in GATES:
        if key.startswith(gate.prefix):
            return gate
    return None


# ----------------------------------------------------------------------
# The trajectory artifact
# ----------------------------------------------------------------------
def empty_trajectory() -> Dict[str, Any]:
    return {
        "benchmark": "trajectory",
        "schema": TRAJECTORY_SCHEMA,
        "entries": [],
    }


def new_entry(
    metrics: Mapping[str, float],
    sha: str,
    note: Optional[str] = None,
) -> Dict[str, Any]:
    """One trajectory entry: a git SHA plus its flattened metrics."""
    if not sha:
        raise SchemaError("a trajectory entry needs a non-empty sha")
    if not metrics:
        raise SchemaError(
            "a trajectory entry needs at least one metric (no artifacts read?)"
        )
    entry: Dict[str, Any] = {
        "sha": sha,
        "metrics": {key: float(metrics[key]) for key in sorted(metrics)},
    }
    if note:
        entry["note"] = note
    return entry


def load_trajectory(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a trajectory artifact."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SchemaError(f"{path}: no such trajectory artifact") from None
    except ValueError as error:
        raise SchemaError(f"{path}: not valid JSON ({error})") from None
    if validate_bench(payload) != "trajectory":
        raise SchemaError(f"{path}: not a trajectory artifact")
    return payload


def append_entry(path: Union[str, Path], entry: Dict[str, Any]) -> Dict[str, Any]:
    """Append ``entry`` to the artifact at ``path`` (created if absent).

    An existing entry with the same ``sha`` is *replaced in place* rather
    than duplicated, so re-running the report on the same commit is
    idempotent.  The updated payload is validated before being written and
    returned.
    """
    path = Path(path)
    payload = load_trajectory(path) if path.is_file() else empty_trajectory()
    for index, existing in enumerate(payload["entries"]):
        if existing.get("sha") == entry["sha"]:
            payload["entries"][index] = entry
            break
    else:
        payload["entries"].append(entry)
    validate_bench(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    return payload


def baseline_metrics(base: Union[str, Path]) -> Tuple[str, Dict[str, float]]:
    """Resolve a ``--diff BASE`` operand to ``(label, metrics)``.

    ``BASE`` is either a directory of committed ``BENCH_*.json`` artifacts
    (metrics are extracted from them) or a ``BENCH_trajectory.json`` file
    (the newest entry's metrics are used, labelled by its SHA).
    """
    base = Path(base)
    if base.is_dir():
        artifacts = load_bench_artifacts(base)
        metrics = extract_metrics(artifacts)
        if not metrics:
            raise SchemaError(f"{base}: no BENCH_*.json artifacts to diff against")
        return str(base), metrics
    payload = load_trajectory(base)
    entry = payload["entries"][-1]
    return entry["sha"], {k: float(v) for k, v in entry["metrics"].items()}


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiffRow:
    """One compared metric of a regression diff."""

    key: str
    base: float
    current: float
    gate: Optional[MetricGate]

    @property
    def ratio(self) -> float:
        return self.current / self.base

    @property
    def regression(self) -> bool:
        return self.gate is not None and self.gate.regressed(
            self.base, self.current
        )

    @property
    def verdict(self) -> str:
        if self.gate is None:
            return "info"
        return "REGRESSION" if self.regression else "ok"


@dataclass(frozen=True)
class RegressionReport:
    """Every compared metric plus the keys only one side measured."""

    base_label: str
    rows: Tuple[DiffRow, ...]
    only_base: Tuple[str, ...]
    only_current: Tuple[str, ...]

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Readable text table of the whole diff (printed by the CLI)."""
        from ..analysis.tables import format_table

        table_rows = []
        for row in self.rows:
            gate = "-"
            if row.gate is not None:
                direction = ">=" if row.gate.higher_is_better else "<="
                gate = f"{direction} {row.gate.ratio:g}x"
            table_rows.append(
                (row.key, row.base, row.current, row.ratio, gate, row.verdict)
            )
        lines = [
            format_table(
                ("metric", "base", "current", "ratio", "gate", "verdict"),
                table_rows,
                precision=4,
                title=f"Perf trajectory diff vs {self.base_label}",
            )
        ]
        if self.only_base:
            lines.append(
                f"skipped (base only): {len(self.only_base)} metric(s) "
                f"not measured by the current run"
            )
        if self.only_current:
            lines.append(
                f"skipped (current only): {len(self.only_current)} new "
                f"metric(s) with no baseline"
            )
        verdict = (
            "clean: no gated metric regressed"
            if self.ok
            else f"REGRESSION: {len(self.regressions)} gated metric(s) "
            f"beyond threshold"
        )
        lines.append(verdict)
        return "\n".join(lines)


def diff_metrics(
    base: Mapping[str, float],
    current: Mapping[str, float],
    base_label: str = "baseline",
) -> RegressionReport:
    """Compare two metric namespaces over their key intersection."""
    shared = sorted(set(base) & set(current))
    if not shared:
        raise SchemaError(
            "regression diff has no metrics in common with the baseline "
            "(were the runs configured so differently?)"
        )
    rows = tuple(
        DiffRow(
            key=key,
            base=float(base[key]),
            current=float(current[key]),
            gate=gate_for(key),
        )
        for key in shared
    )
    return RegressionReport(
        base_label=base_label,
        rows=rows,
        only_base=tuple(sorted(set(base) - set(current))),
        only_current=tuple(sorted(set(current) - set(base))),
    )
