"""Cross-seed / cross-cell aggregation for the report pipeline.

Three kinds of aggregation the report pages need, all deterministic and
dependency-free (sorted-list percentiles, not numpy, so a page renders
byte-identically on every machine):

* :func:`summarize` -- order statistics (mean / median / p95 / min / max)
  over one metric across a family's seeds or cells;
* :func:`paired_ratio` -- baseline-vs-variant ratios (the building block of
  the perf-trajectory regression diff, where every comparison is "new
  value over old value");
* :func:`summary_rollup` / :func:`robustness_rollup` -- whole-family
  rollups over stored results: the former aggregates every key of
  ``SimulationResult.summary()``, the latter reuses
  :mod:`repro.analysis.robustness` to grade injected-fault
  precision/recall and availability across a fault family's runs.

Invariants (pinned by hypothesis property tests in
``tests/test_report.py``): every statistic of :func:`summarize` lies within
``[min, max]``; ``paired_ratio(a, b) * paired_ratio(b, a) == 1`` up to
float rounding; and all of them are invariant under permutation of the
input order -- aggregation must not depend on which cell happened to be
listed first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..analysis.robustness import injected_point_scores
from ..core.errors import ExperimentError
from ..datasets.loader import build_intel_lab_dataset
from ..wsn.results import SimulationResult
from ..wsn.scenario import ScenarioConfig

__all__ = [
    "SummaryStats",
    "percentile",
    "summarize",
    "paired_ratio",
    "summary_rollup",
    "robustness_rollup",
]


@dataclass(frozen=True)
class SummaryStats:
    """Order statistics of one metric across seeds/cells."""

    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float

    def as_row(self) -> Tuple[float, float, float, float, float, float]:
        """``(count, mean, median, p95, min, max)`` -- one table row."""
        return (
            float(self.count),
            self.mean,
            self.median,
            self.p95,
            self.minimum,
            self.maximum,
        )


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Matches numpy's default (``linear``) method on sorted data, but stays
    pure python so aggregation cannot drift with a numpy upgrade.
    """
    if not values:
        raise ExperimentError("percentile() of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ExperimentError(f"percentile q must be within [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def summarize(values: Iterable[float]) -> SummaryStats:
    """Order statistics over ``values`` (raises on an empty input)."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ExperimentError("summarize() of an empty sequence")
    return SummaryStats(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        median=percentile(ordered, 50.0),
        p95=percentile(ordered, 95.0),
        minimum=ordered[0],
        maximum=ordered[-1],
    )


def paired_ratio(baseline: float, variant: float) -> float:
    """``variant / baseline`` -- the regression diff's unit of comparison.

    Symmetric by construction: ``paired_ratio(a, b)`` is the reciprocal of
    ``paired_ratio(b, a)``.  A zero baseline has no meaningful ratio and is
    rejected (benchmark metrics are strictly positive; a zero means the
    artifact lied and should have failed schema validation).
    """
    if baseline == 0:
        raise ExperimentError("paired_ratio() against a zero baseline")
    return variant / baseline


def summary_rollup(
    results: Sequence[SimulationResult],
) -> Dict[str, SummaryStats]:
    """Aggregate every ``summary()`` key across a family's stored results.

    Keys present in only some results (e.g. ``mean_availability``, which
    fault-free runs omit) are aggregated over the runs that report them.
    """
    samples: Dict[str, List[float]] = {}
    for result in results:
        for key, value in result.summary().items():
            samples.setdefault(key, []).append(float(value))
    return {key: summarize(values) for key, values in sorted(samples.items())}


def robustness_rollup(
    pairs: Sequence[Tuple[ScenarioConfig, SimulationResult]],
) -> Dict[str, SummaryStats]:
    """Injected-fault retrieval + availability rollup across stored runs.

    Reuses :func:`repro.analysis.robustness.injected_point_scores` per run:
    the dataset behind each scenario is rebuilt from its config (dataset
    construction is deterministic and is *not* a simulation -- the
    store-only guarantee is about protocol runs, which this never
    triggers).  Runs whose datasets carry no injections grade as
    precision/recall 1.0 by the robustness module's convention.
    """
    if not pairs:
        raise ExperimentError("robustness_rollup() over no results")
    datasets: Dict[object, object] = {}
    precision: List[float] = []
    recall: List[float] = []
    availability: List[float] = []
    for scenario, result in pairs:
        config = scenario.dataset_config()
        if config not in datasets:
            datasets[config] = build_intel_lab_dataset(config)
        scores = injected_point_scores(result, datasets[config])
        precision.append(scores.precision)
        recall.append(scores.recall)
        availability.append(result.mean_availability)
    return {
        "injected_precision": summarize(precision),
        "injected_recall": summarize(recall),
        "mean_availability": summarize(availability),
    }
