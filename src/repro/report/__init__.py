"""Sweep analytics and the regression-report pipeline.

Everything between "a directory full of stored simulation results plus
committed ``BENCH_*.json`` artifacts" and "a report a human (or CI) can
act on" lives here:

* :mod:`~repro.report.schemas` -- the single home of every benchmark
  artifact schema (``python -m repro.report.schemas`` validates files);
* :mod:`~repro.report.reader` -- typed loaders over the result store
  (per-family completeness against the registry, quarantine-aware) and the
  artifacts;
* :mod:`~repro.report.aggregate` -- deterministic cross-seed/cross-cell
  statistics and robustness rollups;
* :mod:`~repro.report.render` / :mod:`~repro.report.site` -- the
  byte-deterministic markdown + static-HTML report site
  (``repro-wsn report``);
* :mod:`~repro.report.trajectory` -- the cross-PR perf-trajectory artifact
  and its regression diff (``repro-wsn report --diff``).
"""

from .aggregate import (
    SummaryStats,
    paired_ratio,
    percentile,
    robustness_rollup,
    summarize,
    summary_rollup,
)
from .reader import (
    FamilyStatus,
    ResultSet,
    family_status,
    load_bench_artifacts,
    read_family,
    store_health,
)
from .schemas import (
    BENCH_FILENAMES,
    SCHEMA_VERSIONS,
    SchemaError,
    validate_bench,
    validate_bench_file,
)
from .site import SiteBuild, build_site, resolve_git_sha
from .trajectory import (
    GATES,
    TRAJECTORY_SCHEMA,
    DiffRow,
    MetricGate,
    RegressionReport,
    append_entry,
    baseline_metrics,
    diff_metrics,
    extract_metrics,
    gate_for,
    load_trajectory,
    new_entry,
)

__all__ = [
    "SCHEMA_VERSIONS",
    "BENCH_FILENAMES",
    "SchemaError",
    "validate_bench",
    "validate_bench_file",
    "FamilyStatus",
    "ResultSet",
    "family_status",
    "read_family",
    "load_bench_artifacts",
    "store_health",
    "SummaryStats",
    "percentile",
    "summarize",
    "paired_ratio",
    "summary_rollup",
    "robustness_rollup",
    "SiteBuild",
    "build_site",
    "resolve_git_sha",
    "TRAJECTORY_SCHEMA",
    "MetricGate",
    "GATES",
    "gate_for",
    "extract_metrics",
    "new_entry",
    "append_entry",
    "load_trajectory",
    "baseline_metrics",
    "DiffRow",
    "RegressionReport",
    "diff_metrics",
]
