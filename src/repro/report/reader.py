"""Typed read layer over the result store and the benchmark artifacts.

Everything the report site renders comes through here:

* :func:`family_status` / :func:`read_family` -- per-sweep-family views of
  a :class:`~repro.orchestrator.store.ResultStore`: which scenarios of the
  family's registered grid are present on disk, which are missing, and the
  decoded results themselves (a :class:`ResultSet`).  Completeness is
  checked against the **registry** -- the family's own ``build(profile)``
  grid is the ground truth of what a complete sweep holds -- so the report
  can prove "this page was regenerated from the store alone" before
  rendering a single number.
* Store health (``.corrupt`` quarantine files, ``.poison`` markers) is
  surfaced alongside, via
  :meth:`~repro.orchestrator.store.ResultStore.health`, so a report over a
  store with quarantined entries says so instead of silently rendering the
  survivors.
* :func:`load_bench_artifacts` -- the five ``BENCH_*.json`` perf artifacts
  (plus the trajectory artifact), each validated against its schema
  (:mod:`repro.report.schemas`) before anything reads a number out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..orchestrator.registry import SweepFamily
from ..orchestrator.store import ResultStore, StoreHealth
from ..wsn.results import SimulationResult
from ..wsn.scenario import ScenarioConfig
from .schemas import BENCH_FILENAMES, validate_bench_file

__all__ = [
    "FamilyStatus",
    "ResultSet",
    "family_status",
    "read_family",
    "load_bench_artifacts",
    "store_health",
]


@dataclass(frozen=True)
class FamilyStatus:
    """Completeness of one sweep family's grid against a store.

    ``total`` counts the *unique* scenarios of the family's registered
    ``build(profile)`` grid (families may list duplicates; the executor
    deduplicates, and so does the store).  ``present`` counts how many of
    those have an entry on disk.  A family with an empty build grid (e.g.
    the in-memory ``example51`` trace) is complete by definition.
    """

    name: str
    description: str
    profile: str
    total: int
    present: int
    missing_labels: Tuple[str, ...]

    @property
    def missing(self) -> int:
        return self.total - self.present

    @property
    def complete(self) -> bool:
        return self.present == self.total

    @property
    def status(self) -> str:
        """One-word rendering state: ``complete`` / ``partial`` / ``empty``."""
        if self.complete:
            return "complete"
        return "empty" if self.present == 0 else "partial"


@dataclass(frozen=True)
class ResultSet:
    """The decoded results of one family's grid, aligned with the grid.

    ``results[i]`` is the stored :class:`SimulationResult` for
    ``scenarios[i]``, or ``None`` when that cell is missing from the store.
    """

    family: str
    profile: str
    scenarios: Tuple[ScenarioConfig, ...]
    results: Tuple[Optional[SimulationResult], ...]

    @property
    def present(self) -> List[Tuple[ScenarioConfig, SimulationResult]]:
        """Every ``(scenario, result)`` pair that resolved from the store."""
        return [
            (scenario, result)
            for scenario, result in zip(self.scenarios, self.results)
            if result is not None
        ]

    @property
    def complete(self) -> bool:
        return all(result is not None for result in self.results)


def _unique_grid(family: SweepFamily, profile: Any) -> List[ScenarioConfig]:
    unique: List[ScenarioConfig] = []
    seen = set()
    for scenario in family.build(profile):
        if scenario not in seen:
            seen.add(scenario)
            unique.append(scenario)
    return unique


def family_status(
    family: SweepFamily,
    profile: Any,
    store: ResultStore,
    max_missing_labels: int = 3,
) -> FamilyStatus:
    """Check the family's grid for presence in ``store`` (no decoding).

    Presence is a file-existence check against the content-addressed path,
    deliberately cheaper than a decode: several families share grids, and a
    status sweep over the whole registry should not re-parse every entry
    once per family.  A present-but-corrupt entry is therefore counted here
    and only discovered by :func:`read_family` (which quarantines it).
    """
    grid = _unique_grid(family, profile)
    missing = [
        scenario
        for scenario in grid
        if not store.path_for(scenario).is_file()
    ]
    labels = tuple(
        f"{scenario.label()} seed={scenario.seed}"
        for scenario in missing[:max_missing_labels]
    )
    return FamilyStatus(
        name=family.name,
        description=family.description,
        profile=getattr(profile, "name", str(profile)),
        total=len(grid),
        present=len(grid) - len(missing),
        missing_labels=labels,
    )


def read_family(
    family: SweepFamily, profile: Any, store: ResultStore
) -> ResultSet:
    """Decode the family's grid from ``store`` (missing cells stay ``None``).

    Goes through :meth:`ResultStore.get`, so undecodable entries are
    quarantined to ``.corrupt`` exactly as the executor would -- a
    subsequent :meth:`~repro.orchestrator.store.ResultStore.health` call
    sees them.
    """
    grid = tuple(_unique_grid(family, profile))
    return ResultSet(
        family=family.name,
        profile=getattr(profile, "name", str(profile)),
        scenarios=grid,
        results=tuple(store.get(scenario) for scenario in grid),
    )


def load_bench_artifacts(
    directory: Union[str, Path],
    kinds: Optional[Tuple[str, ...]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Load every present ``BENCH_<kind>.json`` under ``directory``.

    Returns ``{kind: validated payload}`` for the artifacts that exist;
    absent files are simply omitted (a repo mid-way through growing its
    benchmark suite has fewer than the full set).  An artifact that exists
    but fails validation raises
    :class:`~repro.report.schemas.SchemaError` -- a malformed committed
    artifact should fail the report, not vanish from it.
    """
    directory = Path(directory)
    artifacts: Dict[str, Dict[str, Any]] = {}
    for kind in kinds if kinds is not None else sorted(BENCH_FILENAMES):
        path = directory / BENCH_FILENAMES[kind]
        if not path.is_file():
            continue
        artifacts[kind] = validate_bench_file(path)
    return artifacts


def store_health(store: ResultStore) -> StoreHealth:
    """Convenience re-export of :meth:`ResultStore.health` for report code
    that only imports the reader."""
    return store.health()
