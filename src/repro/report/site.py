"""Assemble the static report site from a result store.

:func:`build_site` is the report pipeline's top: given a persistent
:class:`~repro.orchestrator.store.ResultStore` and a set of registered
sweep families, it renders one page per family, an index page and (when
benchmark artifacts are available) a perf-trajectory page, in markdown
and/or static HTML, plus machine-readable ``data/<family>.txt`` /
``data/<family>.json`` files.

Two properties the whole pipeline leans on:

* **Store-only rendering.**  Every ``family.report(profile)`` call runs
  with ``REPRO_STORE_ONLY`` exported, so a missing cache entry raises
  instead of silently re-simulating -- a built site is *proof* that the
  store holds the complete sweep.  Families whose grids are incomplete get
  a status page saying exactly what is missing and no tables.
* **Determinism.**  The ``data/<family>.txt`` files are written in exactly
  the format the benchmark harness commits under ``results/`` (figure
  reports joined by blank lines), so CI byte-compares the regenerated
  tables against the committed ones; pages carry no timestamps, paths or
  machine identifiers, and the git SHA in the footer is injected by the
  caller (:func:`resolve_git_sha` is a convenience, not something the
  renderers consult).
"""

from __future__ import annotations

import json
import os
import subprocess
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ExperimentError
from ..orchestrator.executor import STORE_ONLY_ENV
from ..orchestrator.registry import SweepFamily
from ..orchestrator.store import ResultStore, StoreHealth
from .aggregate import SummaryStats, robustness_rollup, summary_rollup
from .reader import FamilyStatus, family_status, read_family
from .render import (
    Heading,
    LinkList,
    Page,
    Paragraph,
    Pre,
    Spark,
    TableBlock,
    render_html,
    render_markdown,
)
from .trajectory import extract_metrics, gate_for

__all__ = [
    "FORMATS",
    "ROBUSTNESS_FAMILIES",
    "SiteBuild",
    "resolve_git_sha",
    "build_site",
]

#: Output format name -> file extension.
FORMATS: Dict[str, str] = {"md": "md", "html": "html"}

#: Families whose workloads inject dataset-level faults, and therefore get
#: the injected-fault precision/recall rollup on their pages.
ROBUSTNESS_FAMILIES = frozenset({"metric-sensitivity", "fault-churn"})


def resolve_git_sha(explicit: Optional[str] = None) -> str:
    """The commit to stamp pages with: explicit > ``GITHUB_SHA`` > git."""
    if explicit:
        return explicit
    from_env = os.environ.get("GITHUB_SHA")
    if from_env:
        return from_env
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:  # pragma: no cover - git missing entirely
        return "unknown"
    if proc.returncode == 0 and proc.stdout.strip():
        return proc.stdout.strip()
    return "unknown"


@contextmanager
def _store_only_env(store: ResultStore) -> Iterator[None]:
    """Export the store-only execution contract for a report call.

    The experiments layer resolves scenarios through the ``REPRO_*``
    environment (same pattern as the sweep CLI's report phase); here we
    additionally flip ``REPRO_STORE_ONLY`` so any cache miss raises instead
    of simulating.
    """
    names = ("REPRO_RESULT_STORE", "REPRO_WORKERS", STORE_ONLY_ENV)
    saved = {name: os.environ.get(name) for name in names}
    os.environ["REPRO_RESULT_STORE"] = str(store.root)
    os.environ["REPRO_WORKERS"] = "1"
    os.environ[STORE_ONLY_ENV] = "1"
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@dataclass
class SiteBuild:
    """What :func:`build_site` wrote, for the CLI to report."""

    out_dir: Path
    pages: List[Path] = field(default_factory=list)
    data_files: List[Path] = field(default_factory=list)
    statuses: List[FamilyStatus] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    health: Optional[StoreHealth] = None


def _stats_table(rollup: Mapping[str, SummaryStats]) -> TableBlock:
    return TableBlock(
        headers=("metric", "count", "mean", "median", "p95", "min", "max"),
        rows=tuple(
            (
                key,
                stats.count,
                stats.mean,
                stats.median,
                stats.p95,
                stats.minimum,
                stats.maximum,
            )
            for key, stats in rollup.items()
        ),
    )


def _family_page(
    family: SweepFamily,
    profile: Any,
    store: ResultStore,
    status: FamilyStatus,
) -> Tuple[Page, Optional[List[Any]]]:
    """Build one family's page; returns ``(page, figures or None)``."""
    page = Page(name=family.name, title=f"Sweep family: {family.name}")
    page.add(Paragraph(family.description))
    page.add(
        Paragraph(
            f"Grid: {status.present}/{status.total} scenario(s) present in "
            f"the store ({status.status}, profile {status.profile})."
        )
    )
    if not status.complete:
        if status.missing_labels:
            page.add(
                Paragraph(
                    "Missing, e.g.: " + "; ".join(status.missing_labels)
                )
            )
        page.add(
            Paragraph(
                f"Tables are not rendered from a partial store; run "
                f"`repro-wsn sweep {family.name} --store DIR` to complete "
                f"the family first."
            )
        )
        return page, None

    figures: List[Any] = []
    if family.report is not None:
        with _store_only_env(store):
            figures = list(family.report(profile))
    if figures:
        page.add(Heading("Figure tables"))
        for figure in figures:
            page.add(Pre(figure.report()))

    result_set = read_family(family, profile, store)
    present = result_set.present
    if present:
        page.add(Heading("Stored-run rollup"))
        page.add(
            Paragraph(
                f"Order statistics of every result-summary metric across "
                f"the family's {len(present)} stored run(s)."
            )
        )
        page.add(_stats_table(summary_rollup([r for _, r in present])))
        if family.name in ROBUSTNESS_FAMILIES:
            page.add(Heading("Injected-fault robustness rollup"))
            page.add(
                Paragraph(
                    "Precision/recall of the final estimates against the "
                    "injected dataset faults, and planned node "
                    "availability, across the same stored runs."
                )
            )
            page.add(_stats_table(robustness_rollup(present)))
    return page, figures


def _index_page(
    statuses: Sequence[FamilyStatus],
    health: StoreHealth,
    ext: str,
    has_trajectory: bool,
    profile_name: str,
) -> Page:
    page = Page(
        name="index",
        title="WSN outlier-detection reproduction -- sweep report",
    )
    page.add(
        Paragraph(
            f"Every table on this site was rendered from the persistent "
            f"result store alone (profile {profile_name}); store-only mode "
            f"was enforced, so nothing was simulated at report time."
        )
    )
    page.add(
        Paragraph(
            f"Store health: {health.entries} entries, {health.corrupt} "
            f"corrupt, {health.poison} poisoned."
        )
    )
    if health.quarantined:
        page.add(
            Paragraph(
                f"Warning: {health.quarantined} quarantined entrie(s) were "
                f"excluded from every table on this site."
            )
        )
    page.add(
        TableBlock(
            headers=("family", "scenarios", "present", "status"),
            rows=tuple(
                (status.name, status.total, status.present, status.status)
                for status in statuses
            ),
        )
    )
    links = [
        (status.name, f"{status.name}.{ext}") for status in statuses
    ]
    if has_trajectory:
        links.append(("perf trajectory", f"trajectory.{ext}"))
    page.add(Heading("Pages"))
    page.add(LinkList(tuple(links)))
    return page


def _trajectory_page(
    bench: Optional[Mapping[str, Mapping[str, Any]]],
    trajectory: Optional[Mapping[str, Any]],
) -> Page:
    page = Page(name="trajectory", title="Perf trajectory")
    page.add(
        Paragraph(
            "Benchmark metrics flattened from the BENCH_*.json artifacts "
            "(keys are parameterised by configuration, so only like-for-"
            "like configurations ever get compared), and their history "
            "across committed PRs."
        )
    )
    if bench:
        metrics = extract_metrics(bench)
        page.add(Heading("Current artifact metrics"))
        page.add(
            TableBlock(
                headers=("metric", "value", "gated"),
                rows=tuple(
                    (key, value, gate_for(key) is not None)
                    for key, value in metrics.items()
                ),
                precision=4,
            )
        )
    entries = list(trajectory["entries"]) if trajectory else []
    if entries:
        page.add(Heading("Committed trajectory"))
        page.add(
            TableBlock(
                headers=("commit", "metrics", "note"),
                rows=tuple(
                    (
                        str(entry["sha"])[:12],
                        len(entry["metrics"]),
                        entry.get("note", ""),
                    )
                    for entry in entries
                ),
            )
        )
        gated_keys = sorted(
            {
                key
                for entry in entries
                for key in entry["metrics"]
                if gate_for(key) is not None
            }
        )
        if gated_keys:
            page.add(Heading("Gated metrics across PRs"))
            for key in gated_keys:
                values = tuple(
                    float(entry["metrics"][key])
                    for entry in entries
                    if key in entry["metrics"]
                )
                page.add(Spark(label=key, values=values))
    return page


def build_site(
    store: ResultStore,
    profile: Any,
    families: Sequence[SweepFamily],
    out_dir: Union[str, Path],
    formats: Sequence[str] = ("md",),
    git_sha: str = "unknown",
    bench: Optional[Mapping[str, Mapping[str, Any]]] = None,
    trajectory: Optional[Mapping[str, Any]] = None,
) -> SiteBuild:
    """Render the full report site under ``out_dir``.

    ``formats`` is any subset of ``("md", "html")``.  ``bench`` is the
    validated ``{kind: payload}`` artifact mapping (see
    :func:`~repro.report.reader.load_bench_artifacts`) and ``trajectory``
    the committed trajectory payload; either being present adds the
    perf-trajectory page.
    """
    for fmt in formats:
        if fmt not in FORMATS:
            raise ExperimentError(
                f"unknown report format {fmt!r}; expected one of "
                f"{sorted(FORMATS)}"
            )
    if not formats:
        raise ExperimentError("build_site() needs at least one format")

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    build = SiteBuild(out_dir=out_dir, health=store.health())
    profile_name = getattr(profile, "name", str(profile))
    footer = (
        f"repro-wsn report -- commit {git_sha} -- profile {profile_name}"
    )

    renderers = {"md": render_markdown, "html": render_html}

    def write_page(page: Page) -> None:
        for fmt in formats:
            rendered = renderers[fmt](page, footer=footer)
            path = out_dir / f"{page.name}.{FORMATS[fmt]}"
            path.write_text(rendered)
            build.pages.append(path)

    data_dir = out_dir / "data"
    for family in families:
        status = family_status(family, profile, store)
        build.statuses.append(status)
        page, figures = _family_page(family, profile, store, status)
        write_page(page)
        if figures is None:
            build.skipped.append(family.name)
            continue
        if figures:
            data_dir.mkdir(exist_ok=True)
            # Exactly the committed ``results/<family>.txt`` format: the
            # figure reports joined by blank lines (CI byte-compares).
            text_path = data_dir / f"{family.name}.txt"
            text_path.write_text(
                "\n\n".join(figure.report() for figure in figures) + "\n"
            )
            json_path = data_dir / f"{family.name}.json"
            json_path.write_text(
                json.dumps(
                    {
                        "family": family.name,
                        "profile": profile_name,
                        "figures": [f.to_json_dict() for f in figures],
                    },
                    sort_keys=True,
                    indent=1,
                )
                + "\n"
            )
            build.data_files.extend([text_path, json_path])

    has_trajectory = bool(bench) or bool(
        trajectory and trajectory.get("entries")
    )
    if has_trajectory:
        write_page(_trajectory_page(bench, trajectory))

    for fmt in formats:
        index = _index_page(
            build.statuses,
            build.health,
            FORMATS[fmt],
            has_trajectory,
            profile_name,
        )
        rendered = renderers[fmt](index, footer=footer)
        path = out_dir / f"index.{FORMATS[fmt]}"
        path.write_text(rendered)
        build.pages.append(path)

    return build
