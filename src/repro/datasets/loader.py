"""One-call dataset construction.

:func:`build_intel_lab_dataset` wires the generation pipeline together the
way the paper prepared its input data:

1. place the sensors (Intel-Lab-like layout by default),
2. generate spatio-temporally correlated temperature streams,
3. drop a small fraction of readings and impute them by preceding-window
   averages (reproducing the trace's missing-data handling),
4. inject anomalies (the events the detectors are supposed to surface).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.errors import DatasetError
from .imputation import apply_missing_data
from .layout import (
    DEFAULT_NODE_COUNT,
    DEFAULT_TERRAIN_SIZE,
    intel_lab_layout,
)
from .outlier_injection import InjectionConfig, apply_node_faults, inject_anomalies
from .streams import SensorDataset
from .synthetic import (
    MultiAttributeFieldModel,
    TemperatureFieldModel,
    generate_multiattribute_readings,
    generate_readings,
)

__all__ = ["DatasetConfig", "build_intel_lab_dataset"]


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of the synthetic Intel-Lab-style dataset.

    ``extra_channels`` adds correlated sensing channels (humidity, light,
    voltage, ...) beyond temperature: the points then carry
    ``(temperature, extras..., x, y)`` value vectors and every extra
    channel is imputed by its own preceding-window average.  ``0``
    (default) keeps the paper's 3-attribute pipeline bit-for-bit.

    ``node_stuck_probability`` / ``node_drift_probability`` engage the
    fault subsystem's *permanent* sensor faults (see
    :func:`~repro.datasets.outlier_injection.apply_node_faults`): with the
    given per-node probability a sensor sticks or drifts from a random
    onset epoch to the end of its stream.  Both ``0`` (default) keeps the
    pipeline byte-identical to the fault-free one.
    """

    node_count: int = DEFAULT_NODE_COUNT
    epochs: int = 60
    terrain_size: float = DEFAULT_TERRAIN_SIZE
    missing_probability: float = 0.03
    imputation_window: int = 10
    injection: InjectionConfig = InjectionConfig()
    extra_channels: int = 0
    node_stuck_probability: float = 0.0
    node_drift_probability: float = 0.0
    field_seed: int = 0
    missing_seed: int = 2
    node_fault_seed: int = 3

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise DatasetError("node_count must be >= 1")
        if self.epochs < 1:
            raise DatasetError("epochs must be >= 1")
        if self.extra_channels < 0:
            raise DatasetError("extra_channels must be non-negative")
        for name in ("node_stuck_probability", "node_drift_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must be in [0, 1], got {value}")


def build_intel_lab_dataset(
    config: DatasetConfig = DatasetConfig(),
    positions: Optional[Dict[int, Tuple[float, float]]] = None,
) -> SensorDataset:
    """Generate a complete :class:`SensorDataset` per the paper's pipeline."""
    placement = positions or intel_lab_layout(
        node_count=config.node_count, terrain_size=config.terrain_size
    )
    if config.extra_channels:
        multi_model = MultiAttributeFieldModel(
            terrain_size=config.terrain_size,
            extra_channels=config.extra_channels,
            seed=config.field_seed,
        )
        clean = generate_multiattribute_readings(
            placement, epochs=config.epochs, model=multi_model
        )
    else:
        model = TemperatureFieldModel(
            terrain_size=config.terrain_size, seed=config.field_seed
        )
        clean = generate_readings(placement, epochs=config.epochs, model=model)
    completed, _imputed = apply_missing_data(
        clean,
        missing_probability=config.missing_probability,
        window_length=config.imputation_window,
        seed=config.missing_seed,
        reading_channels=1 + config.extra_channels,
    )
    corrupted, record = inject_anomalies(completed, config.injection)
    if config.node_stuck_probability or config.node_drift_probability:
        corrupted, record = apply_node_faults(
            corrupted,
            record,
            stuck_probability=config.node_stuck_probability,
            drift_probability=config.node_drift_probability,
            stuck_value=config.injection.stuck_value,
            drift_rate=config.injection.drift_rate,
            seed=config.node_fault_seed,
        )
    return SensorDataset(positions=dict(placement), streams=corrupted, injections=record)
