"""Anomaly injection.

Sensor faults and genuine rare events are what the detection algorithms are
supposed to surface.  The injector corrupts a configurable fraction of the
generated readings with the fault types the WSN literature (and the paper's
motivation section) describe:

* **spike** -- a single reading jumps far away from the local trend
  (transient glitch, e.g. an ADC error or a transmission bit-flip);
* **stuck** -- the sensor repeats a constant, implausible value for a run of
  consecutive epochs (hardware fault / battery brown-out);
* **drift** -- the readings ramp away from the truth over a run of epochs
  (calibration loss as power dwindles).

Injected points are recorded so that experiments can measure how often the
detectors' top-n outliers coincide with true injected anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from ..core.errors import DatasetError
from ..core.points import DataPoint, RestKey, make_point
from ..simulator.rng import RandomStreams

__all__ = [
    "InjectionConfig",
    "InjectionRecord",
    "inject_anomalies",
    "apply_node_faults",
]


@dataclass(frozen=True)
class InjectionConfig:
    """Controls how many and what kind of anomalies are injected."""

    spike_probability: float = 0.01
    stuck_probability: float = 0.002
    drift_probability: float = 0.002
    spike_magnitude: float = 15.0
    stuck_value: float = 0.0
    stuck_duration: int = 5
    drift_rate: float = 1.5
    drift_duration: int = 5
    seed: int = 1

    def __post_init__(self) -> None:
        for name in ("spike_probability", "stuck_probability", "drift_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must be in [0, 1], got {value}")
        if self.stuck_duration < 1 or self.drift_duration < 1:
            raise DatasetError("fault durations must be >= 1")

    @property
    def total_probability(self) -> float:
        return self.spike_probability + self.stuck_probability + self.drift_probability


@dataclass
class InjectionRecord:
    """Which points were corrupted, and how."""

    spikes: Set[RestKey] = field(default_factory=set)
    stuck: Set[RestKey] = field(default_factory=set)
    drifts: Set[RestKey] = field(default_factory=set)

    @property
    def all_keys(self) -> Set[RestKey]:
        return self.spikes | self.stuck | self.drifts

    def count(self) -> int:
        return len(self.all_keys)

    def is_injected(self, point: DataPoint) -> bool:
        return point.rest in self.all_keys


def _replace_value(point: DataPoint, new_temperature: float) -> DataPoint:
    values = (new_temperature,) + point.values[1:]
    return make_point(values, origin=point.origin, epoch=point.epoch,
                      timestamp=point.timestamp, hop=point.hop)


def inject_anomalies(
    streams: Mapping[int, Sequence[DataPoint]],
    config: InjectionConfig = InjectionConfig(),
) -> Tuple[Dict[int, List[DataPoint]], InjectionRecord]:
    """Return a corrupted copy of ``streams`` plus the injection record.

    Only the first value component (the temperature) is corrupted; the
    coordinate components are left intact, matching the fault model of the
    paper's motivation (bad readings, not bad placements, are the common
    case -- though the algorithms would treat either identically).
    """
    rng = RandomStreams(config.seed).stream("injection")
    record = InjectionRecord()
    corrupted: Dict[int, List[DataPoint]] = {}

    for node_id in sorted(streams):
        original = list(streams[node_id])
        result: List[DataPoint] = []
        index = 0
        while index < len(original):
            point = original[index]
            draw = rng.random()
            if draw < config.spike_probability:
                sign = 1.0 if rng.random() < 0.5 else -1.0
                magnitude = config.spike_magnitude * rng.uniform(0.8, 1.2)
                spiked = _replace_value(point, point.values[0] + sign * magnitude)
                result.append(spiked)
                record.spikes.add(spiked.rest)
                index += 1
                continue
            if draw < config.spike_probability + config.stuck_probability:
                duration = min(config.stuck_duration, len(original) - index)
                for offset in range(duration):
                    victim = original[index + offset]
                    stuck = _replace_value(victim, config.stuck_value)
                    result.append(stuck)
                    record.stuck.add(stuck.rest)
                index += duration
                continue
            if draw < config.total_probability:
                duration = min(config.drift_duration, len(original) - index)
                for offset in range(duration):
                    victim = original[index + offset]
                    drifted = _replace_value(
                        victim, victim.values[0] + config.drift_rate * (offset + 1)
                    )
                    result.append(drifted)
                    record.drifts.add(drifted.rest)
                index += duration
                continue
            result.append(point)
            index += 1
        corrupted[node_id] = result
    return corrupted, record


def apply_node_faults(
    streams: Mapping[int, Sequence[DataPoint]],
    record: InjectionRecord,
    stuck_probability: float,
    drift_probability: float,
    stuck_value: float = 0.0,
    drift_rate: float = 1.5,
    seed: int = 3,
) -> Tuple[Dict[int, List[DataPoint]], InjectionRecord]:
    """Whole-sensor faults: a node's sensor goes bad and *stays* bad.

    Unlike :func:`inject_anomalies` (transient, per-point faults), this
    models the fault-and-churn subsystem's permanent hardware failures: with
    the given per-node probabilities a sensor either sticks at
    ``stuck_value`` or drifts away at ``drift_rate`` per epoch, from a
    random onset epoch (drawn in the middle half of the stream) to the end.
    Corrupted points are added to ``record.stuck`` / ``record.drifts`` so
    robustness metrics can grade detectors on faulty-sensor points.

    Each node draws from its own named stream (``sensor-fault-<id>``), so
    one node's fault never perturbs another's draws.  With both
    probabilities zero this is an exact no-op: ``streams`` is returned
    unchanged (same objects) and no stream is consumed.
    """
    if not 0.0 <= stuck_probability <= 1.0 or not 0.0 <= drift_probability <= 1.0:
        raise DatasetError("sensor-fault probabilities must be in [0, 1]")
    if stuck_probability + drift_probability > 1.0:
        raise DatasetError(
            "stuck_probability + drift_probability must not exceed 1"
        )
    if stuck_probability == 0.0 and drift_probability == 0.0:
        return dict(streams), record

    family = RandomStreams(seed)
    corrupted: Dict[int, List[DataPoint]] = {}
    for node_id in sorted(streams):
        original = list(streams[node_id])
        rng = family.stream(f"sensor-fault-{node_id}")
        draw = rng.random()
        if draw >= stuck_probability + drift_probability or len(original) < 2:
            corrupted[node_id] = original
            continue
        # Onset in the middle half of the stream: the fault has clean data
        # before it (so it is detectable as a change) and a tail long enough
        # to dominate the final windows.
        epochs = len(original)
        onset = rng.randint(epochs // 4, max(epochs // 4, (3 * epochs) // 4))
        result = original[:onset]
        for offset, victim in enumerate(original[onset:]):
            if draw < stuck_probability:
                faulty = _replace_value(victim, stuck_value)
                record.stuck.add(faulty.rest)
            else:
                faulty = _replace_value(
                    victim, victim.values[0] + drift_rate * (offset + 1)
                )
                record.drifts.add(faulty.rest)
            result.append(faulty)
        corrupted[node_id] = result
    return corrupted, record
