"""Anomaly injection.

Sensor faults and genuine rare events are what the detection algorithms are
supposed to surface.  The injector corrupts a configurable fraction of the
generated readings with the fault types the WSN literature (and the paper's
motivation section) describe:

* **spike** -- a single reading jumps far away from the local trend
  (transient glitch, e.g. an ADC error or a transmission bit-flip);
* **stuck** -- the sensor repeats a constant, implausible value for a run of
  consecutive epochs (hardware fault / battery brown-out);
* **drift** -- the readings ramp away from the truth over a run of epochs
  (calibration loss as power dwindles).

Injected points are recorded so that experiments can measure how often the
detectors' top-n outliers coincide with true injected anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from ..core.errors import DatasetError
from ..core.points import DataPoint, RestKey, make_point
from ..simulator.rng import RandomStreams

__all__ = ["InjectionConfig", "InjectionRecord", "inject_anomalies"]


@dataclass(frozen=True)
class InjectionConfig:
    """Controls how many and what kind of anomalies are injected."""

    spike_probability: float = 0.01
    stuck_probability: float = 0.002
    drift_probability: float = 0.002
    spike_magnitude: float = 15.0
    stuck_value: float = 0.0
    stuck_duration: int = 5
    drift_rate: float = 1.5
    drift_duration: int = 5
    seed: int = 1

    def __post_init__(self) -> None:
        for name in ("spike_probability", "stuck_probability", "drift_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must be in [0, 1], got {value}")
        if self.stuck_duration < 1 or self.drift_duration < 1:
            raise DatasetError("fault durations must be >= 1")

    @property
    def total_probability(self) -> float:
        return self.spike_probability + self.stuck_probability + self.drift_probability


@dataclass
class InjectionRecord:
    """Which points were corrupted, and how."""

    spikes: Set[RestKey] = field(default_factory=set)
    stuck: Set[RestKey] = field(default_factory=set)
    drifts: Set[RestKey] = field(default_factory=set)

    @property
    def all_keys(self) -> Set[RestKey]:
        return self.spikes | self.stuck | self.drifts

    def count(self) -> int:
        return len(self.all_keys)

    def is_injected(self, point: DataPoint) -> bool:
        return point.rest in self.all_keys


def _replace_value(point: DataPoint, new_temperature: float) -> DataPoint:
    values = (new_temperature,) + point.values[1:]
    return make_point(values, origin=point.origin, epoch=point.epoch,
                      timestamp=point.timestamp, hop=point.hop)


def inject_anomalies(
    streams: Mapping[int, Sequence[DataPoint]],
    config: InjectionConfig = InjectionConfig(),
) -> Tuple[Dict[int, List[DataPoint]], InjectionRecord]:
    """Return a corrupted copy of ``streams`` plus the injection record.

    Only the first value component (the temperature) is corrupted; the
    coordinate components are left intact, matching the fault model of the
    paper's motivation (bad readings, not bad placements, are the common
    case -- though the algorithms would treat either identically).
    """
    rng = RandomStreams(config.seed).stream("injection")
    record = InjectionRecord()
    corrupted: Dict[int, List[DataPoint]] = {}

    for node_id in sorted(streams):
        original = list(streams[node_id])
        result: List[DataPoint] = []
        index = 0
        while index < len(original):
            point = original[index]
            draw = rng.random()
            if draw < config.spike_probability:
                sign = 1.0 if rng.random() < 0.5 else -1.0
                magnitude = config.spike_magnitude * rng.uniform(0.8, 1.2)
                spiked = _replace_value(point, point.values[0] + sign * magnitude)
                result.append(spiked)
                record.spikes.add(spiked.rest)
                index += 1
                continue
            if draw < config.spike_probability + config.stuck_probability:
                duration = min(config.stuck_duration, len(original) - index)
                for offset in range(duration):
                    victim = original[index + offset]
                    stuck = _replace_value(victim, config.stuck_value)
                    result.append(stuck)
                    record.stuck.add(stuck.rest)
                index += duration
                continue
            if draw < config.total_probability:
                duration = min(config.drift_duration, len(original) - index)
                for offset in range(duration):
                    victim = original[index + offset]
                    drifted = _replace_value(
                        victim, victim.values[0] + config.drift_rate * (offset + 1)
                    )
                    result.append(drifted)
                    record.drifts.add(drifted.rest)
                index += duration
                continue
            result.append(point)
            index += 1
        corrupted[node_id] = result
    return corrupted, record
