"""Spatio-temporally correlated synthetic sensor streams.

The paper feeds its algorithms real temperature streams from the Intel
Berkeley Research Lab deployment; each data point carries the temperature
reading plus the sensor's (x, y) coordinates, and the streams are both
spatially and temporally correlated.  Because the original traces are not
available offline, :class:`TemperatureFieldModel` synthesises streams with
the same structure:

* a smooth *spatial* field (a mixture of fixed Gaussian warm/cool spots over
  the terrain) so nearby sensors read similar values,
* a shared *diurnal* temporal trend (slow sinusoid),
* per-sensor AR(1) temporal noise so each stream is smooth in time,
* per-sample measurement noise,
* optional missing readings (imputed exactly as the paper does: by the
  average of the preceding window -- see :mod:`repro.datasets.imputation`),
* injected anomalies (see :mod:`repro.datasets.outlier_injection`).

The generator is fully deterministic given its seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import DatasetError
from ..core.points import DataPoint, make_point
from ..simulator.rng import RandomStreams

__all__ = ["TemperatureFieldModel", "generate_readings"]


@dataclass(frozen=True)
class _GaussianSpot:
    """A fixed warm or cool spot contributing to the spatial field."""

    x: float
    y: float
    amplitude: float
    width: float

    def value_at(self, x: float, y: float) -> float:
        distance_sq = (x - self.x) ** 2 + (y - self.y) ** 2
        return self.amplitude * math.exp(-distance_sq / (2.0 * self.width ** 2))


@dataclass
class TemperatureFieldModel:
    """Generator of correlated temperature readings over a terrain.

    Parameters
    ----------
    terrain_size:
        Side length of the square terrain in metres.
    base_temperature:
        Mean temperature of the field (degrees Celsius).
    diurnal_amplitude / diurnal_period:
        Amplitude (deg C) and period (in sampling epochs) of the shared
        temporal trend.
    spot_count / spot_amplitude / spot_width:
        Number, magnitude and spatial extent of the fixed warm/cool spots.
    ar_coefficient / ar_noise:
        AR(1) persistence and innovation standard deviation of each sensor's
        private temporal noise.
    measurement_noise:
        Standard deviation of the white measurement noise.
    seed:
        Master seed; all randomness derives from it.
    """

    terrain_size: float = 50.0
    base_temperature: float = 21.0
    diurnal_amplitude: float = 2.0
    diurnal_period: float = 300.0
    spot_count: int = 4
    spot_amplitude: float = 3.0
    spot_width: float = 12.0
    ar_coefficient: float = 0.9
    ar_noise: float = 0.08
    measurement_noise: float = 0.05
    seed: int = 0
    _spots: List[_GaussianSpot] = field(default_factory=list, init=False, repr=False)
    _ar_state: Dict[int, float] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.terrain_size <= 0:
            raise DatasetError("terrain_size must be positive")
        if not 0.0 <= self.ar_coefficient < 1.0:
            raise DatasetError("ar_coefficient must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise DatasetError("diurnal_period must be positive")
        self._streams = RandomStreams(self.seed)
        rng = self._streams.stream("field-spots")
        self._spots = [
            _GaussianSpot(
                x=rng.uniform(0.0, self.terrain_size),
                y=rng.uniform(0.0, self.terrain_size),
                amplitude=rng.uniform(-self.spot_amplitude, self.spot_amplitude),
                width=self.spot_width * rng.uniform(0.6, 1.4),
            )
            for _ in range(self.spot_count)
        ]

    # ------------------------------------------------------------------
    # Field evaluation
    # ------------------------------------------------------------------
    def spatial_component(self, x: float, y: float) -> float:
        """Deterministic spatially-smooth part of the field at (x, y)."""
        return sum(spot.value_at(x, y) for spot in self._spots)

    def temporal_component(self, epoch: int) -> float:
        """Shared diurnal trend at the given sampling epoch."""
        return self.diurnal_amplitude * math.sin(
            2.0 * math.pi * epoch / self.diurnal_period
        )

    def _ar_noise_for(self, node_id: int, epoch: int) -> float:
        rng = self._streams.stream(f"ar-{node_id}")
        previous = self._ar_state.get(node_id, 0.0)
        innovation = rng.gauss(0.0, self.ar_noise)
        current = self.ar_coefficient * previous + innovation
        self._ar_state[node_id] = current
        return current

    def reading(self, node_id: int, position: Tuple[float, float], epoch: int) -> float:
        """One temperature sample for ``node_id`` at ``epoch``.

        Note: successive calls for the same node must use increasing epochs,
        as the AR(1) state advances on every call.
        """
        rng = self._streams.stream(f"measurement-{node_id}")
        return (
            self.base_temperature
            + self.spatial_component(*position)
            + self.temporal_component(epoch)
            + self._ar_noise_for(node_id, epoch)
            + rng.gauss(0.0, self.measurement_noise)
        )


def generate_readings(
    positions: Mapping[int, Tuple[float, float]],
    epochs: int,
    model: Optional[TemperatureFieldModel] = None,
    start_epoch: int = 0,
) -> Dict[int, List[DataPoint]]:
    """Generate ``epochs`` samples per sensor as :class:`DataPoint` streams.

    Each point carries ``(temperature, x, y)`` as its value vector -- the
    exact feature set the paper feeds to its ranking functions -- plus the
    origin id, epoch number and a timestamp equal to the epoch.
    """
    if epochs < 1:
        raise DatasetError(f"epochs must be >= 1, got {epochs}")
    field_model = model or TemperatureFieldModel()
    streams: Dict[int, List[DataPoint]] = {node_id: [] for node_id in positions}
    for epoch in range(start_epoch, start_epoch + epochs):
        for node_id in sorted(positions):
            x, y = positions[node_id]
            temperature = field_model.reading(node_id, (x, y), epoch)
            streams[node_id].append(
                make_point([temperature, x, y], origin=node_id, epoch=epoch)
            )
    return streams
