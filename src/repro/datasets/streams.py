"""Dataset bundles: per-sensor streams plus the deployment they belong to.

A :class:`SensorDataset` ties together node positions, per-sensor point
streams (one point per sensor per epoch) and the injection record, and
provides the per-round views the simulation runner needs (which points enter
the window at epoch ``t``, which points a window of length ``w`` contains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import DatasetError
from ..core.points import DataPoint
from .outlier_injection import InjectionRecord

__all__ = ["SensorDataset"]


@dataclass
class SensorDataset:
    """All the data one simulation run consumes.

    Attributes
    ----------
    positions:
        ``{node_id: (x, y)}`` placement of every sensor.
    streams:
        ``{node_id: [DataPoint, ...]}`` in epoch order; every sensor reports
        one point per epoch.
    injections:
        Record of artificially injected anomalies (may be empty).
    """

    positions: Dict[int, Tuple[float, float]]
    streams: Dict[int, List[DataPoint]]
    injections: InjectionRecord = field(default_factory=InjectionRecord)

    def __post_init__(self) -> None:
        if set(self.positions) != set(self.streams):
            raise DatasetError(
                "positions and streams must cover the same sensor ids"
            )
        lengths = {len(points) for points in self.streams.values()}
        if len(lengths) > 1:
            raise DatasetError(
                f"all sensors must have streams of equal length, got lengths {sorted(lengths)}"
            )
        for node_id, points in self.streams.items():
            for point in points:
                if point.origin != node_id:
                    raise DatasetError(
                        f"stream of sensor {node_id} contains a point originating at "
                        f"{point.origin}"
                    )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        return sorted(self.streams)

    @property
    def node_count(self) -> int:
        return len(self.streams)

    @property
    def epochs(self) -> int:
        """Number of sampling epochs in every stream."""
        if not self.streams:
            return 0
        return len(next(iter(self.streams.values())))

    @property
    def first_epoch(self) -> int:
        return min(p.epoch for p in next(iter(self.streams.values())))

    # ------------------------------------------------------------------
    # Views used by the runner
    # ------------------------------------------------------------------
    def points_at(self, epoch_index: int) -> Dict[int, DataPoint]:
        """The one point each sensor samples at stream position ``epoch_index``."""
        if not 0 <= epoch_index < self.epochs:
            raise DatasetError(
                f"epoch index {epoch_index} out of range [0, {self.epochs})"
            )
        return {node_id: self.streams[node_id][epoch_index] for node_id in self.node_ids}

    def window(self, node_id: int, end_index: int, length: int) -> List[DataPoint]:
        """The last ``length`` points of ``node_id`` up to position ``end_index``
        inclusive (fewer at the start of the stream)."""
        if node_id not in self.streams:
            raise DatasetError(f"unknown sensor {node_id}")
        start = max(0, end_index - length + 1)
        return list(self.streams[node_id][start : end_index + 1])

    def windows(self, end_index: int, length: int) -> Dict[int, List[DataPoint]]:
        """Window contents of every sensor at position ``end_index``."""
        return {
            node_id: self.window(node_id, end_index, length)
            for node_id in self.node_ids
        }

    def union_window(self, end_index: int, length: int) -> Set[DataPoint]:
        """Union over sensors of the window contents (the global dataset the
        reference answer is computed over)."""
        union: Set[DataPoint] = set()
        for points in self.windows(end_index, length).values():
            union |= set(points)
        return union

    def restrict_nodes(self, node_ids: Iterable[int]) -> "SensorDataset":
        """A sub-dataset over the given sensors only (used for the 32-node
        scaling comparison mentioned in the paper)."""
        wanted = sorted(set(node_ids))
        missing = [n for n in wanted if n not in self.streams]
        if missing:
            raise DatasetError(f"unknown sensors {missing}")
        return SensorDataset(
            positions={n: self.positions[n] for n in wanted},
            streams={n: list(self.streams[n]) for n in wanted},
            injections=self.injections,
        )
