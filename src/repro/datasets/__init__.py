"""Dataset substrate: layouts, synthetic correlated streams, anomaly
injection, missing-data imputation and dataset bundles."""

from .imputation import apply_missing_data, drop_readings, impute_missing
from .layout import (
    DEFAULT_NODE_COUNT,
    DEFAULT_TERRAIN_SIZE,
    DEFAULT_TRANSMISSION_RANGE,
    grid_layout,
    intel_lab_layout,
    random_layout,
)
from .loader import DatasetConfig, build_intel_lab_dataset
from .outlier_injection import (
    InjectionConfig,
    InjectionRecord,
    apply_node_faults,
    inject_anomalies,
)
from .streams import SensorDataset
from .synthetic import (
    EXTRA_CHANNEL_SPECS,
    ChannelSpec,
    MultiAttributeFieldModel,
    TemperatureFieldModel,
    generate_multiattribute_readings,
    generate_readings,
)

__all__ = [
    "intel_lab_layout",
    "grid_layout",
    "random_layout",
    "DEFAULT_NODE_COUNT",
    "DEFAULT_TERRAIN_SIZE",
    "DEFAULT_TRANSMISSION_RANGE",
    "TemperatureFieldModel",
    "generate_readings",
    "ChannelSpec",
    "EXTRA_CHANNEL_SPECS",
    "MultiAttributeFieldModel",
    "generate_multiattribute_readings",
    "InjectionConfig",
    "InjectionRecord",
    "inject_anomalies",
    "apply_node_faults",
    "apply_missing_data",
    "drop_readings",
    "impute_missing",
    "SensorDataset",
    "DatasetConfig",
    "build_intel_lab_dataset",
]
