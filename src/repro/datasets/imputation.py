"""Missing readings and their imputation.

The Intel-Lab traces used by the paper contain missing samples (mostly due
to packet loss between the motes and the logging base station).  The paper
replaces each missing sample with the average of the readings in the sliding
window preceding it, which preserves the stream's temporal trend.  This
module reproduces both halves: dropping readings at a configurable rate and
filling the holes with the preceding-window average.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from ..core.errors import DatasetError
from ..core.points import DataPoint, make_point
from ..simulator.rng import RandomStreams

__all__ = ["drop_readings", "impute_missing", "apply_missing_data"]


def drop_readings(
    streams: Mapping[int, Sequence[DataPoint]],
    missing_probability: float,
    seed: int = 2,
) -> Dict[int, List[DataPoint]]:
    """Return a copy of ``streams`` with samples independently removed.

    The first sample of every stream is never dropped so that imputation
    always has at least one preceding value to work with.
    """
    if not 0.0 <= missing_probability < 1.0:
        raise DatasetError(
            f"missing_probability must be in [0, 1), got {missing_probability}"
        )
    rng = RandomStreams(seed).stream("missing")
    result: Dict[int, List[DataPoint]] = {}
    for node_id in sorted(streams):
        kept: List[DataPoint] = []
        for index, point in enumerate(streams[node_id]):
            if index > 0 and rng.random() < missing_probability:
                continue
            kept.append(point)
        result[node_id] = kept
    return result


def impute_missing(
    stream: Sequence[DataPoint],
    expected_epochs: Sequence[int],
    window_length: int,
    reading_channels: int = 1,
) -> List[DataPoint]:
    """Fill the gaps of one sensor's stream by preceding-window averages.

    Parameters
    ----------
    stream:
        The surviving samples of one sensor, in epoch order.
    expected_epochs:
        Every epoch the sensor was supposed to report.
    window_length:
        How many preceding (possibly imputed) readings to average.
    reading_channels:
        How many leading value components are sensed readings (each imputed
        by its own preceding-window average); the remaining components are
        the fixed deployment coordinates, copied verbatim.  ``1`` matches
        the paper's single-temperature streams.
    """
    if window_length < 1:
        raise DatasetError(f"window_length must be >= 1, got {window_length}")
    by_epoch = {point.epoch: point for point in stream}
    if not by_epoch:
        raise DatasetError("cannot impute an entirely empty stream")
    template = next(iter(by_epoch.values()))
    if not 1 <= reading_channels <= len(template.values):
        raise DatasetError(
            f"reading_channels must be in [1, {len(template.values)}], "
            f"got {reading_channels}"
        )
    origin = template.origin
    coords = template.values[reading_channels:]

    completed: List[DataPoint] = []
    histories: List[List[float]] = [[] for _ in range(reading_channels)]
    for epoch in expected_epochs:
        point = by_epoch.get(epoch)
        if point is None:
            if histories[0]:
                values = tuple(
                    sum(history[-window_length:]) / len(history[-window_length:])
                    for history in histories
                )
            else:
                values = template.values[:reading_channels]
            point = make_point(values + coords, origin=origin, epoch=epoch)
        completed.append(point)
        for channel, history in enumerate(histories):
            history.append(point.values[channel])
    return completed


def apply_missing_data(
    streams: Mapping[int, Sequence[DataPoint]],
    missing_probability: float,
    window_length: int,
    seed: int = 2,
    reading_channels: int = 1,
) -> Tuple[Dict[int, List[DataPoint]], Dict[int, Set[int]]]:
    """Drop then impute readings for every sensor.

    Returns the completed streams and, per sensor, the set of epochs that
    were imputed (useful for analysing how imputation interacts with outlier
    detection).
    """
    expected: Dict[int, List[int]] = {
        node_id: [p.epoch for p in points] for node_id, points in streams.items()
    }
    dropped = drop_readings(streams, missing_probability, seed=seed)
    completed: Dict[int, List[DataPoint]] = {}
    imputed_epochs: Dict[int, Set[int]] = {}
    for node_id in sorted(streams):
        surviving = dropped[node_id]
        surviving_epochs = {p.epoch for p in surviving}
        completed[node_id] = impute_missing(
            surviving, expected[node_id], window_length,
            reading_channels=reading_channels,
        )
        imputed_epochs[node_id] = set(expected[node_id]) - surviving_epochs
    return completed, imputed_epochs
