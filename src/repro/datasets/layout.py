"""Sensor placements.

The paper's evaluation uses the coordinates of the 53/54-mote Intel Berkeley
Research Lab deployment, rescaled onto a 50 m x 50 m terrain, with a uniform
transmission range of about 6.77 m.  The original coordinate file is not
redistributable here, so :func:`intel_lab_layout` generates a deterministic
lab-like deployment with the same cardinality and the same qualitative
properties that matter for the experiments:

* sensors arranged along the perimeter and through the interior of a
  rectangular floor plan (rows of offices around an open centre),
* inter-sensor spacing a few metres, well below the transmission range, so
  the unit-disk graph is connected with an average degree comparable to the
  real deployment,
* node 0 placed near one corner, which the centralized baseline uses as the
  sink (data collection point), reproducing the traffic concentration the
  paper describes.

Additional generators (grid, uniform random with a minimum spacing) are
provided for tests and for scaling studies beyond the paper.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Tuple

from ..core.errors import DatasetError

__all__ = [
    "intel_lab_layout",
    "grid_layout",
    "random_layout",
    "DEFAULT_TERRAIN_SIZE",
    "DEFAULT_TRANSMISSION_RANGE",
    "DEFAULT_NODE_COUNT",
]

#: Terrain side length used throughout the paper's evaluation (metres).
DEFAULT_TERRAIN_SIZE = 50.0

#: Transmission range used throughout the paper's evaluation (metres).
DEFAULT_TRANSMISSION_RANGE = 6.77

#: Number of sensors in the paper's large network.
DEFAULT_NODE_COUNT = 53


def intel_lab_layout(
    node_count: int = DEFAULT_NODE_COUNT,
    terrain_size: float = DEFAULT_TERRAIN_SIZE,
) -> Dict[int, Tuple[float, float]]:
    """Deterministic lab-like deployment of ``node_count`` sensors.

    Sensors are laid out in a serpentine pattern over a rectangular floor
    plan: rows 5 m apart, sensors within a row 5 m apart, with a slight
    deterministic stagger (at most 0.5 m in each axis) so that distances are
    not degenerate.  Because adjacent sensors are at most ~6 m apart even in
    the worst stagger case, the unit-disk graph is guaranteed connected at
    the paper's 6.77 m transmission range, with an average degree of about 4
    -- comparable to the real deployment.  Consecutive identifiers are
    physically adjacent (the serpentine), so node 0 sits in a corner, which
    is where the centralized baseline puts its sink.
    """
    if node_count < 1:
        raise DatasetError(f"node_count must be >= 1, got {node_count}")
    if terrain_size <= 0:
        raise DatasetError(f"terrain_size must be positive, got {terrain_size}")

    margin = 2.5
    spacing = 5.0
    usable = max(terrain_size - 2 * margin, spacing)
    per_row = max(2, int(usable // spacing) + 1)
    jitter_scale = 0.5

    positions: Dict[int, Tuple[float, float]] = {}
    for index in range(node_count):
        row = index // per_row
        col = index % per_row
        # Serpentine ordering keeps consecutive ids adjacent on the floor.
        if row % 2 == 1:
            col = per_row - 1 - col
        # Deterministic stagger (a fixed pseudo-random jitter derived from the
        # index) avoids perfectly collinear placements.
        jitter_x = jitter_scale * math.sin(2.39996 * index)
        jitter_y = jitter_scale * math.cos(1.61803 * index)
        x = margin + col * spacing + jitter_x
        y = margin + row * spacing + jitter_y
        x = min(max(x, 0.0), terrain_size)
        y = min(max(y, 0.0), terrain_size)
        positions[index] = (x, y)
    return positions


def grid_layout(
    columns: int,
    rows: int,
    spacing: float,
    origin: Tuple[float, float] = (0.0, 0.0),
) -> Dict[int, Tuple[float, float]]:
    """Regular ``columns x rows`` grid with the given spacing (metres)."""
    if columns < 1 or rows < 1:
        raise DatasetError("grid dimensions must be positive")
    if spacing <= 0:
        raise DatasetError(f"spacing must be positive, got {spacing}")
    positions: Dict[int, Tuple[float, float]] = {}
    node_id = 0
    for row in range(rows):
        for col in range(columns):
            positions[node_id] = (origin[0] + col * spacing, origin[1] + row * spacing)
            node_id += 1
    return positions


def random_layout(
    node_count: int,
    terrain_size: float,
    seed: int,
    min_spacing: float = 1.0,
    max_attempts: int = 10_000,
) -> Dict[int, Tuple[float, float]]:
    """Uniform random placement with a minimum pairwise spacing.

    The spacing check buckets placed points into a grid of
    ``min_spacing``-sized cells, so each candidate is tested with
    ``math.hypot`` only against the points in its 5x5 cell neighborhood --
    any point outside that window is more than ``2 * min_spacing`` away.
    The RNG draw sequence and every accept/reject decision are identical to
    the historical scan over all placed points, so a given
    ``(node_count, terrain_size, seed)`` yields the same positions.
    """
    if node_count < 1:
        raise DatasetError(f"node_count must be >= 1, got {node_count}")
    rng = random.Random(seed)
    positions: Dict[int, Tuple[float, float]] = {}
    buckets: Dict[Tuple[int, int], list] = {}
    cell = min_spacing if min_spacing > 0 else 0.0

    def far_enough(x: float, y: float) -> bool:
        if cell == 0.0:
            return True
        cell_x = math.floor(x / cell)
        cell_y = math.floor(y / cell)
        for dx in (-2, -1, 0, 1, 2):
            for dy in (-2, -1, 0, 1, 2):
                for px, py in buckets.get((cell_x + dx, cell_y + dy), ()):
                    if math.hypot(x - px, y - py) < min_spacing:
                        return False
        return True

    attempts = 0
    while len(positions) < node_count:
        attempts += 1
        if attempts > max_attempts:
            # An upper bound on how many points with pairwise spacing >= s
            # fit in an L x L square (each point owns a disjoint s/2-radius
            # disk inside the square grown by s/2 on every side).
            density_bound = (
                math.floor(
                    (terrain_size + min_spacing) ** 2
                    / (math.pi * (min_spacing / 2.0) ** 2)
                )
                if min_spacing > 0
                else node_count
            )
            raise DatasetError(
                f"placed only {len(positions)} of {node_count} nodes after "
                f"{max_attempts} attempts: a {terrain_size:g} m x "
                f"{terrain_size:g} m terrain fits at most ~{density_bound} "
                f"points at min_spacing {min_spacing:g} m; reduce node_count "
                "or min_spacing, or enlarge the terrain"
            )
        candidate = (rng.uniform(0, terrain_size), rng.uniform(0, terrain_size))
        if far_enough(candidate[0], candidate[1]):
            positions[len(positions)] = candidate
            if cell > 0.0:
                key = (
                    math.floor(candidate[0] / cell),
                    math.floor(candidate[1] / cell),
                )
                buckets.setdefault(key, []).append(candidate)
    return positions
