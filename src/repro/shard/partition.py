"""Partitioning one deployment into shards along the hop-level structure.

The semi-global scheme is *defined* by a hop-level decomposition of the
network around the sink, which makes BFS hop distance the natural axis to
cut a deployment along: nodes at the same hop level talk to each other and
to the adjacent levels, so hop-ordered cuts minimise how much of the
broadcast traffic becomes cross-shard.

Two placement modes over the hop-sorted node order (nodes sorted by
``(hop distance from sink, node id)`` using the CSR
:meth:`~repro.network.topology.Topology.hop_distances_from` BFS):

* ``hop-interleaved`` (default) -- deal nodes round-robin across the k
  shards.  Every shard owns a slice of *every* hop level, which is what
  keeps the lockstep epochs busy on all workers: the workload schedule
  fires samples in ascending node-id order inside each round, so contiguous
  hop bands would take turns being the only busy shard.
* ``band`` -- contiguous hop bands (shard 0 owns the sink's levels, shard
  k-1 the rim).  Minimises cross-shard edges at the cost of load balance;
  kept for experiments on the bus itself.

A :class:`ShardPlan` records the member sets, the owner map and the
boundary sets (remote nodes adjacent to a shard -- exactly the nodes whose
availability a shard must mirror and whose packets cross the bus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from ..core.errors import ConfigurationError
from ..network.topology import Topology

__all__ = ["ShardPlan", "partition_topology", "PARTITION_MODES"]

#: Recognised placement modes.
PARTITION_MODES = ("hop-interleaved", "band")


@dataclass(frozen=True)
class ShardPlan:
    """The result of cutting one topology into shards.

    Attributes
    ----------
    members:
        One ascending node-id tuple per shard; disjoint, covering every node.
    boundaries:
        Per shard, the frozen set of *remote* nodes adjacent to at least one
        member -- the nodes whose packets and availability transitions cross
        the bus into this shard.
    mode:
        The placement mode the plan was built with.
    """

    members: Tuple[Tuple[int, ...], ...]
    boundaries: Tuple[FrozenSet[int], ...]
    mode: str

    @property
    def shard_count(self) -> int:
        return len(self.members)

    def owner_map(self) -> Dict[int, int]:
        """``node_id -> shard index`` over every node of the topology."""
        return {
            node_id: shard
            for shard, nodes in enumerate(self.members)
            for node_id in nodes
        }

    def cross_edges(self, topology: Topology) -> int:
        """Number of undirected edges whose endpoints live on different
        shards (the traffic the bus has to carry)."""
        owner = self.owner_map()
        crossing = 0
        for node_id in topology.node_ids:
            for neighbor_id in topology.neighbors_sorted(node_id):
                if neighbor_id > node_id and owner[node_id] != owner[neighbor_id]:
                    crossing += 1
        return crossing


def partition_topology(
    topology: Topology,
    sink_id: int,
    shards: int,
    mode: str = "hop-interleaved",
) -> ShardPlan:
    """Cut ``topology`` into ``shards`` disjoint node sets along hop levels."""
    if mode not in PARTITION_MODES:
        raise ConfigurationError(
            f"unknown partition mode {mode!r}; expected one of {PARTITION_MODES}"
        )
    node_ids = list(topology.node_ids)
    if shards < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {shards}")
    if shards > len(node_ids):
        raise ConfigurationError(
            f"cannot cut {len(node_ids)} nodes into {shards} shards"
        )
    hops = topology.hop_distances_from(sink_id)
    order = sorted(node_ids, key=lambda node_id: (hops[node_id], node_id))

    groups: Tuple[list, ...] = tuple([] for _ in range(shards))
    if mode == "hop-interleaved":
        for index, node_id in enumerate(order):
            groups[index % shards].append(node_id)
    else:  # band: contiguous hop-ordered chunks of near-equal size
        base, extra = divmod(len(order), shards)
        start = 0
        for shard in range(shards):
            size = base + (1 if shard < extra else 0)
            groups[shard].extend(order[start : start + size])
            start += size

    members = tuple(tuple(sorted(group)) for group in groups)
    boundaries = []
    for group in members:
        local = set(group)
        boundary = {
            neighbor_id
            for node_id in group
            for neighbor_id in topology.neighbors_sorted(node_id)
            if neighbor_id not in local
        }
        boundaries.append(frozenset(boundary))
    return ShardPlan(members=members, boundaries=tuple(boundaries), mode=mode)
