"""Shard-local worker runtime: one shard's slice of a deployment.

Each worker process owns the :class:`~repro.network.node.SimNode` objects,
applications, detector state and routing agents of its shard's nodes, plus a
full (read-only) copy of the topology.  Three substitutions make the slice
behave exactly like its cut-out of the single-process run:

* :class:`ShardChannel` -- transmissions reach local receivers directly;
  for *remote* receivers a :class:`CrossingRecord` is emitted instead of a
  delivery event, carrying the send time (energy is charged at transmit
  time), the delivery time (computed with the identical float expression the
  single-process schedule uses) and the packet.  The records drain to the
  bus at the next epoch barrier.
* :class:`RecordingEnergyMeter` -- float accumulation order matters for
  byte-equivalence, and a shard charges its nodes' receive energy for
  cross-shard packets only when the records arrive.  The meter therefore
  *records* every charge with its simulated timestamp and the lineage key
  of the charging event, and replays them in that order at finalisation,
  reproducing the exact per-accumulator ``+=`` order of the single-process
  run (tx, rx and idle accumulate into separate fields, so only per-kind
  order matters).
* :class:`ShardFaultRuntime` -- fault transitions of local nodes run as
  usual; transitions of *boundary* nodes (remote nodes adjacent to the
  shard) run as mirror events that flip a mirrored up/down map -- used by
  the channel to decide whether a remote receiver's radio is on at transmit
  time -- and re-deliver ``neighborhood_changed`` to the local neighbors,
  exactly as the single-process runtime would.  Mirror event executions are
  subtracted from the shard's event count, since the owning shard already
  counts the real transition.

The worker protocol (:func:`shard_worker_main`) is a lockstep epoch loop:
report ``(next event time, clock, outbox, checkpoint info)`` at the
barrier, receive either an epoch grant ``(time, inbox)`` -- inject the
inbox in the canonical order and
:meth:`~repro.simulator.engine.Simulator.run_exclusive` to the grant -- or
a finalisation request, after which the shard's slice of the result
material is shipped back.  Under a checkpoint policy the worker snapshots
its whole slice at configured barriers and can be respawned from such a
snapshot (see :mod:`repro.recovery`).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..recovery.checkpoint import CheckpointPolicy, capture_state, restore_state
from ..recovery.store import CheckpointStore
from ..network.channel import WirelessChannel
from ..network.energy import EnergyMeter
from ..network.packet import Packet
from ..network.topology import Topology
from ..simulator.engine import Simulator
from ..simulator.events import EventPriority
from ..simulator.rng import RandomStreams
from ..wsn.deployment import Deployment, build_deployment
from ..wsn.faults import FaultPlan, FaultRuntime
from ..wsn.runner import schedule_workload
from ..wsn.scenario import ScenarioConfig

__all__ = [
    "CrossingRecord",
    "RecordingEnergyMeter",
    "ShardChannel",
    "ShardFaultRuntime",
    "SimulatorLineageClock",
    "shard_worker_main",
]

_TX = 0
_RX = 1


class _NullClock:
    """Stamp for a recording meter used outside a simulator (tests)."""

    def __call__(self) -> Tuple[float, Tuple]:
        return (0.0, ())


class SimulatorLineageClock:
    """Stamp charges with the simulator clock and the executing event's
    lineage key.

    A plain class (not a closure) on purpose: checkpointing a shard slice
    pickles every meter, and this reference re-binds to the *restored*
    simulator inside the same object graph -- a lambda would make the whole
    slice unpicklable.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    def __call__(self) -> Tuple[float, Tuple]:
        return (self.simulator.now, self.simulator.current_lineage_key)


@dataclass(frozen=True)
class CrossingRecord:
    """One cross-shard packet delivery in flight.

    ``lineage`` is the delivery event's lineage triple ``(gen, pkey, idx)``
    allocated on the *sending* shard (see
    :meth:`~repro.simulator.engine.Simulator.allocate_lineage`): the
    crossing occupies a schedule-call slot of the transmitting event
    exactly like a local delivery would, so scheduling the injected
    delivery under this key slots it among the receiver's simultaneous
    events precisely where the single-process schedule would have.
    ``sort_key`` orders injections (and therefore the receive-side
    statistics counters) the same canonical way.
    """

    send_time: float
    deliver_time: float
    src: int
    dst: int
    packet: Packet
    lineage: Tuple[int, Tuple, int]

    @property
    def sort_key(self) -> Tuple[float, Tuple[int, Tuple, int]]:
        return (self.deliver_time, self.lineage)


class RecordingEnergyMeter(EnergyMeter):
    """An :class:`EnergyMeter` that records charges instead of summing them.

    ``replay()`` pours the recorded charges, stably sorted by
    ``(timestamp, lineage key of the charging event)``, through a plain
    meter -- reconstructing the single-process fold order even though
    cross-shard receive charges are appended out of order when their
    records arrive at a barrier.  The lineage key matters: a flood
    wavefront has many nodes transmitting different-size packets at the
    exact same instant, so same-timestamp charges must fold into the float
    accumulators in the order the charging *events* execute in the
    single-process run -- which is their lineage order (see
    :mod:`repro.simulator.events`) -- or the sum moves by an ulp.  Local
    charges record the executing event's key; a cross-shard receive
    records the *sender's* transmitting event's key, which is exactly the
    event that would have charged it in one process.  The per-kind
    accumulators are separate floats, so only per-kind order matters and
    the tx/rx interleave is free.  The integer counters are kept live
    (addition commutes); only the float accumulators need the ordered
    replay.
    """

    def __init__(self, model=None, clock=None) -> None:
        super().__init__(model=model if model is not None else EnergyMeter().model)
        self._clock = clock if clock is not None else _NullClock()
        self._charges: List[Tuple[float, Tuple, int, int]] = []

    def _stamp(self) -> Tuple[float, Tuple]:
        time, key = self._clock()
        return time, key if key is not None else ()

    def charge_tx(self, size_bytes: int) -> float:
        time, key = self._stamp()
        self._charges.append((time, key, _TX, size_bytes))
        self.packets_sent += 1
        self.bytes_sent += size_bytes
        return self.model.tx_energy(size_bytes)

    def charge_rx(self, size_bytes: int) -> float:
        time, key = self._stamp()
        self._charges.append((time, key, _RX, size_bytes))
        self.packets_received += 1
        self.bytes_received += size_bytes
        return self.model.rx_energy(size_bytes)

    def record_remote_rx(
        self, time: float, key: Tuple, size_bytes: int
    ) -> None:
        """A receive charge for a packet sent from another shard at ``time``
        by the transmitting event with lineage key ``key`` (receive energy
        is spent at transmit time: promiscuous radios decode the whole
        airtime)."""
        self._charges.append((time, key, _RX, size_bytes))
        self.packets_received += 1
        self.bytes_received += size_bytes

    def charge_idle(self, seconds: float) -> float:  # pragma: no cover - guard
        raise SimulationError(
            "RecordingEnergyMeter must be replay()ed before idle accounting"
        )

    def replay(self) -> EnergyMeter:
        """A plain meter with every charge applied in single-process order."""
        meter = EnergyMeter(model=self.model)
        for _time, _key, kind, size_bytes in sorted(
            self._charges, key=lambda charge: (charge[0], charge[1])
        ):
            if kind == _TX:
                meter.charge_tx(size_bytes)
            else:
                meter.charge_rx(size_bytes)
        return meter


class ShardChannel(WirelessChannel):
    """A :class:`WirelessChannel` over the full topology with only the
    shard's own nodes attached.

    Local receivers behave exactly as in the single-process channel.  A
    remote receiver has no attached node; if the mirrored availability map
    says its radio is up at transmit time, a :class:`CrossingRecord` is
    appended to the outbox instead of scheduling a delivery.  Receive
    energy and the delivery counter for crossings are accounted on the
    *receiving* shard when the record is injected, so per-node meters and
    the summed channel statistics match the single-process run exactly.

    Sharded execution requires a lossless channel (``loss_probability=0``,
    no burst model): the i.i.d. and Gilbert-Elliott loss draws consume
    shared random streams in global transmission order, which no
    per-shard execution can reproduce.  The bus rejects lossy scenarios
    up front.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        streams: Optional[RandomStreams] = None,
        local_ids: Sequence[int] = (),
    ) -> None:
        super().__init__(
            simulator,
            topology,
            loss_probability=0.0,
            streams=streams,
            burst=None,
        )
        self._local_ids = frozenset(local_ids)
        #: Crossings emitted since the last barrier drain.
        self.outbox: List[CrossingRecord] = []
        #: Mirrored availability of boundary nodes (absent means up);
        #: maintained by :class:`ShardFaultRuntime`.
        self.remote_up: Dict[int, bool] = {}

    def attach(self, node) -> None:
        if node.node_id not in self._local_ids:
            raise SimulationError(
                f"node {node.node_id} does not belong to this shard"
            )
        super().attach(node)
        # Swap in the recording meter before any charge can happen (the
        # node constructor attaches immediately after creating the meter).
        node.energy = RecordingEnergyMeter(
            model=node.energy.model,
            clock=SimulatorLineageClock(self.simulator),
        )

    def drain_outbox(self) -> List[CrossingRecord]:
        drained, self.outbox = self.outbox, []
        return drained

    def transmit(self, sender_id: int, packet: Packet) -> None:
        sender = self.node(sender_id)
        if not sender.up:
            return
        airtime = sender.energy.model.airtime(packet.size_bytes)
        sender.energy.charge_tx(packet.size_bytes)
        self.stats.transmissions += 1
        self.stats.bytes_transmitted += packet.size_bytes

        delay = airtime + self.processing_delay
        now = self.simulator.now
        for neighbor_id in self.topology.neighbors_sorted(sender_id):
            receiver = self._nodes.get(neighbor_id)
            if receiver is not None:
                if not receiver.up:
                    continue
                receiver.energy.charge_rx(packet.size_bytes)
                self.stats.deliveries += 1
                self.simulator.schedule(
                    delay,
                    receiver.deliver,
                    packet,
                    name=f"deliver#{packet.packet_id}->{neighbor_id}",
                )
            elif self.remote_up.get(neighbor_id, True):
                # ``now + delay`` is the identical float expression
                # ``schedule`` evaluates, so the delivery lands at the
                # bit-exact single-process instant on the other shard.  The
                # crossing consumes a schedule-call slot of this transmit
                # event just like the local delivery it stands in for.
                self.outbox.append(
                    CrossingRecord(
                        send_time=now,
                        deliver_time=now + delay,
                        src=sender_id,
                        dst=neighbor_id,
                        packet=packet,
                        lineage=self.simulator.allocate_lineage(
                            now + delay, EventPriority.NORMAL
                        ),
                    )
                )

    def inject(self, record: CrossingRecord) -> None:
        """Deliver one crossing into this shard (receiver side)."""
        receiver = self.node(record.dst)
        # record.lineage[1] is the sender's transmitting event key -- the
        # event that charges this receive in the single-process run.
        receiver.energy.record_remote_rx(
            record.send_time, record.lineage[1], record.packet.size_bytes
        )
        self.stats.deliveries += 1
        # Schedule the delivery under the sender-allocated lineage so it
        # slots among this shard's simultaneous events exactly where the
        # single-process schedule would have put it.
        self.simulator.schedule_at(
            record.deliver_time,
            receiver.deliver,
            record.packet,
            name=f"deliver#{record.packet.packet_id}->{record.dst}",
            lineage=record.lineage,
        )


class ShardFaultRuntime(FaultRuntime):
    """Fault runtime of one shard: real transitions for local nodes, mirror
    transitions for boundary nodes.

    A mirror transition flips the shared ``remote_up`` map (consulted by the
    channel at transmit time) and re-delivers ``neighborhood_changed`` to
    the affected *local* applications -- the restriction of the
    single-process transition's effects to this shard.  Mirror executions
    are counted so the bus can subtract them from the merged event total
    (the owning shard counts the real event).
    """

    def __init__(
        self,
        plan: FaultPlan,
        nodes,
        apps,
        topology=None,
        *,
        boundary_ids: FrozenSet[int] = frozenset(),
        remote_up: Optional[Dict[int, bool]] = None,
    ) -> None:
        super().__init__(plan, nodes, apps, topology=topology)
        self._boundary = frozenset(boundary_ids)
        self._remote_up = remote_up if remote_up is not None else {}
        self._mirror_depth: Dict[int, int] = {}
        self.mirror_executions = 0

    def _is_up(self, node_id: int) -> bool:
        node = self._nodes.get(node_id)
        if node is not None:
            return node.up
        return self._remote_up.get(node_id, True)

    def schedule(self, simulator: Simulator) -> None:
        horizon = self.plan.duration
        for node_id, schedule in sorted(self.plan.schedules.items()):
            if node_id in self._nodes:
                down, up, tag = self.power_down, self.power_up, "fault"
            elif node_id in self._boundary:
                down, up, tag = self.mirror_down, self.mirror_up, "mirror"
            else:
                continue
            for start, end, kind in schedule.intervals:
                if start >= horizon:
                    continue
                simulator.schedule_at(
                    max(0.0, start),
                    down,
                    node_id,
                    priority=EventPriority.FAULT,
                    name=f"{tag}-down-{kind}-n{node_id}",
                )
                if end < horizon:
                    simulator.schedule_at(
                        end,
                        up,
                        node_id,
                        kind,
                        priority=EventPriority.FAULT,
                        name=f"{tag}-up-{kind}-n{node_id}",
                    )

    def mirror_down(self, node_id: int) -> None:
        self.mirror_executions += 1
        depth = self._mirror_depth.get(node_id, 0) + 1
        self._mirror_depth[node_id] = depth
        if depth == 1:
            self._remote_up[node_id] = False
            self._notify_neighbors(node_id)

    def mirror_up(self, node_id: int, kind: str) -> None:
        self.mirror_executions += 1
        depth = self._mirror_depth[node_id] - 1
        self._mirror_depth[node_id] = depth
        if depth == 0:
            self._remote_up[node_id] = True
            self._notify_neighbors(node_id)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass
class _ShardSlice:
    """The assembled shard-local stack."""

    deployment: Deployment
    channel: ShardChannel
    simulator: Simulator


def _build_slice(
    scenario: ScenarioConfig,
    dataset,
    topology: Topology,
    local_ids: Tuple[int, ...],
    boundary_ids: FrozenSet[int],
) -> _ShardSlice:
    simulator = Simulator(lineage=True)
    streams = RandomStreams(scenario.seed)
    channel = ShardChannel(simulator, topology, streams=streams, local_ids=local_ids)

    def fault_runtime_factory(plan, nodes, apps, topology=None):
        return ShardFaultRuntime(
            plan,
            nodes,
            apps,
            topology=topology,
            boundary_ids=boundary_ids,
            remote_up=channel.remote_up,
        )

    deployment = build_deployment(
        scenario,
        dataset,
        topology=topology,
        simulator=simulator,
        channel=channel,
        node_ids=local_ids,
        fault_runtime_factory=fault_runtime_factory,
    )
    schedule_workload(deployment, local_nodes=frozenset(local_ids))
    return _ShardSlice(deployment=deployment, channel=channel, simulator=simulator)


def _finalize(slice_: _ShardSlice, duration: float) -> Dict[str, object]:
    deployment = slice_.deployment
    meters: Dict[int, EnergyMeter] = {}
    for node_id, node in deployment.nodes.items():
        meter = node.energy.replay()
        meter.charge_idle(duration)
        meters[node_id] = meter
    fault_runtime = deployment.fault_runtime
    mirror_executions = getattr(fault_runtime, "mirror_executions", 0)
    return {
        "estimates": {
            node_id: app.estimate() for node_id, app in deployment.apps.items()
        },
        "protocol_stats": {
            node_id: detector.stats.as_dict()
            for node_id, detector in deployment.detectors.items()
        },
        "fault_stats": fault_runtime.stats() if fault_runtime is not None else {},
        "skipped_keys": (
            set(fault_runtime.skipped_keys) if fault_runtime is not None else set()
        ),
        "meters": meters,
        "channel": slice_.channel.stats.as_dict(),
        "events_executed": slice_.simulator.events_executed - mirror_executions,
        "now": slice_.simulator.now,
    }


def shard_worker_main(
    conn,
    scenario: ScenarioConfig,
    dataset,
    topology: Topology,
    local_ids: Tuple[int, ...],
    boundary_ids: FrozenSet[int],
    checkpoint: Optional[CheckpointPolicy] = None,
    resume_from: Optional[str] = None,
) -> None:
    """Entry point of one shard worker process.

    Protocol (all messages are tuples, kind first):

    * worker -> bus: ``("barrier", next_event_time | None, now, outbox,
      checkpoint_info | None)``
    * bus -> worker: ``("epoch", grant_time, inbox)`` or
      ``("finalize", duration)``
    * worker -> bus: ``("result", payload)`` (after finalize), or
      ``("error", formatted_traceback)`` on any failure.

    With a :class:`~repro.recovery.checkpoint.CheckpointPolicy` the worker
    snapshots its whole slice at every ``checkpoint.every``-th barrier --
    *before* peeking the queue or draining the outbox, so a worker restored
    from that snapshot (``resume_from`` names the snapshot key; ``None``
    rebuilds from the scenario, i.e. barrier 0) regenerates the exact
    barrier message the original sent right after capturing.  The barrier's
    ``checkpoint_info`` announces ``{"epoch", "key", "bytes",
    "write_seconds"}`` so the supervisor can truncate its replay journal.
    """
    try:
        store = (
            CheckpointStore(checkpoint.directory) if checkpoint is not None else None
        )
        if resume_from is not None:
            slice_, meta = restore_state(store.get(resume_from))
            epoch = int(meta["epoch"])
            skip_capture_epoch: Optional[int] = epoch
        else:
            slice_ = _build_slice(
                scenario, dataset, topology, local_ids, boundary_ids
            )
            epoch = 0
            skip_capture_epoch = None
        simulator, channel = slice_.simulator, slice_.channel
        while True:
            checkpoint_info = None
            if (
                checkpoint is not None
                and checkpoint.due(epoch)
                and epoch != skip_capture_epoch
            ):
                started = time.perf_counter()
                payload = capture_state(slice_, meta={"epoch": epoch})
                checkpoint_info = {
                    "epoch": epoch,
                    "key": store.put(payload),
                    "bytes": len(payload),
                    "write_seconds": time.perf_counter() - started,
                }
            conn.send(
                (
                    "barrier",
                    simulator.peek_time(),
                    simulator.now,
                    channel.drain_outbox(),
                    checkpoint_info,
                )
            )
            message = conn.recv()
            if message[0] == "epoch":
                _, grant, inbox = message
                for record in sorted(inbox, key=lambda r: r.sort_key):
                    channel.inject(record)
                simulator.run_exclusive(grant)
                epoch += 1
            elif message[0] == "finalize":
                conn.send(("result", _finalize(slice_, message[1])))
                return
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown bus message {message[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()
