"""The deterministic message bus: lockstep epochs over shard workers.

One scenario, k processes.  The bus is a conservative parallel
discrete-event coordinator (CMB-style, with a global barrier): at each
barrier every worker reports its next pending event time and the crossings
it emitted, the bus routes the crossings, and grants every worker the epoch

    ``[now, T)``  with  ``T = E_min + lookahead``

where ``E_min`` is the global minimum over workers' next event times *and*
in-flight crossing delivery times, and ``lookahead`` is the channel's
per-hop ``processing_delay``.  The grant is safe because every cross-shard
effect of an event executed at time ``t >= E_min`` is a packet delivery at
``t + airtime + processing_delay >= T`` -- at or beyond the barrier, hence
delivered (in the canonical :class:`~repro.shard.runtime.CrossingRecord`
order) before any worker is allowed to reach it.  Workers execute events
*strictly* before ``T`` (:meth:`~repro.simulator.engine.Simulator.run_exclusive`),
so at least one event fires per epoch and the loop always terminates.

Determinism contract: the merged execution presents every *node* with
exactly the event sequence of the single-process run -- per-node RNG
streams, per-node detector state and the replayed per-node energy charge
order are all preserved -- so the merged :class:`SimulationResult`
serialises byte-identically to the single-process transcript.  Two scenario
knobs are incompatible with sharding and rejected up front: channel loss
(i.i.d. or burst) draws from shared streams in global transmission order,
which no per-shard execution can replay.

The epoch loop itself lives in
:class:`~repro.recovery.supervisor.ShardSupervisor`, which also owns the
worker processes: with recovery enabled it heartbeats them, restarts a
crashed or hung worker from its latest checkpoint and replays it back to
parity -- without recovery it degrades to the plain fail-fast loop.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set, Tuple

from ..analysis.accuracy import compare_estimates, normalise
from ..core.errors import ConfigurationError
from ..datasets.loader import build_intel_lab_dataset
from ..datasets.streams import SensorDataset
from ..network.channel import ChannelStatistics
from ..network.stats import EnergyReport
from ..network.topology import Topology
from ..recovery.chaos import ChaosPlan
from ..recovery.supervisor import RecoveryConfig, ShardSupervisor
from ..wsn.results import SimulationResult
from ..wsn.runner import final_references
from ..wsn.scenario import ScenarioConfig
from .partition import partition_topology
from .runtime import shard_worker_main

__all__ = ["run_sharded_scenario", "LOOKAHEAD_SECONDS"]

#: The bus lookahead: the wireless channel's constant per-hop processing
#: delay.  Every cross-shard influence is a packet delivery arriving at
#: least ``airtime + LOOKAHEAD_SECONDS`` after the event that caused it,
#: so granting ``E_min + LOOKAHEAD_SECONDS`` (exclusive) is always causal.
LOOKAHEAD_SECONDS = 1e-3


def _validate(scenario: ScenarioConfig, shards: int) -> None:
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if scenario.loss_probability > 0.0:
        raise ConfigurationError(
            "sharded execution requires a lossless channel "
            "(loss_probability=0): i.i.d. loss draws consume a shared "
            "random stream in global transmission order"
        )
    if scenario.faults.burst_enabled:
        raise ConfigurationError(
            "sharded execution does not support the Gilbert-Elliott burst "
            "model: per-link chains draw from a shared random stream in "
            "global transmission order"
        )


def run_sharded_scenario(
    scenario: ScenarioConfig,
    dataset: Optional[SensorDataset] = None,
    shards: int = 2,
    mode: str = "hop-interleaved",
    *,
    recovery: Optional[RecoveryConfig] = None,
    chaos: Optional[ChaosPlan] = None,
    recovery_stats: Optional[dict] = None,
) -> SimulationResult:
    """Run one scenario partitioned across ``shards`` worker processes.

    The result is byte-identical (``SimulationResult.canonical_json``) to
    ``run_scenario(scenario)`` -- the sharded-equivalence test suite pins
    this on golden scenarios for every algorithm, metric and fault setting.

    With a :class:`~repro.recovery.supervisor.RecoveryConfig` the workers
    checkpoint periodically and the bus survives worker crashes and hangs
    by restarting from the last checkpoint and replaying -- the merged
    result stays byte-identical (pinned by the recovery test suite and the
    chaos-smoke CI job).  A :class:`~repro.recovery.chaos.ChaosPlan`
    deterministically inflicts such faults; shard-targeted chaos implies a
    default recovery config when none is given.  ``recovery_stats``, if
    provided, is filled in place with the supervisor's checkpoint/restart/
    chaos report -- deliberately out-of-band so that recovery knobs can
    never perturb the result bytes or the result-store cache key.
    """
    started = time.perf_counter()
    _validate(scenario, shards)
    if chaos is not None and chaos.has("shard") and recovery is None:
        recovery = RecoveryConfig()
    data = dataset or build_intel_lab_dataset(scenario.dataset_config())
    topology = Topology.from_positions(
        data.positions, transmission_range=scenario.transmission_range
    )
    topology.require_connected()
    plan = partition_topology(topology, scenario.sink_id, shards, mode=mode)

    supervisor = ShardSupervisor(
        scenario,
        data,
        topology,
        plan,
        recovery=recovery,
        chaos=chaos,
        worker_main=shard_worker_main,
        lookahead=LOOKAHEAD_SECONDS,
    )
    payloads = supervisor.run()
    if recovery_stats is not None:
        recovery_stats.update(supervisor.stats)
        if chaos is not None:
            recovery_stats["chaos_pending"] = [
                action.describe() for action in chaos.pending()
            ]

    # ------------------------------------------------------------------
    # Merge the shard slices into one result (same order of operations as
    # the single-process tail of run_scenario).
    # ------------------------------------------------------------------
    final_index = scenario.rounds - 1
    final_windows = data.windows(final_index, scenario.detection.window_length)
    skipped: Set[Tuple[int, int]] = set()
    for payload in payloads:
        skipped |= payload["skipped_keys"]
    if scenario.faults.churn_enabled:
        final_windows = {
            node_id: [p for p in points if (p.origin, p.epoch) not in skipped]
            for node_id, points in final_windows.items()
        }
    references = final_references(scenario, topology, final_windows)

    estimates: Dict[int, list] = {}
    protocol_stats: Dict[int, Dict[str, int]] = {}
    fault_stats: Dict[int, Dict[str, float]] = {}
    meters: Dict[int, object] = {}
    channel_totals: Dict[str, int] = {}
    events_executed = 0
    for payload in payloads:
        estimates.update(payload["estimates"])
        protocol_stats.update(payload["protocol_stats"])
        fault_stats.update(payload["fault_stats"])
        meters.update(payload["meters"])
        for key, value in payload["channel"].items():
            channel_totals[key] = channel_totals.get(key, 0) + value
        events_executed += payload["events_executed"]

    accuracy = compare_estimates(estimates, references)
    energy = EnergyReport.from_meters(meters, rounds=scenario.rounds)

    return SimulationResult(
        scenario=scenario,
        energy=energy,
        channel=ChannelStatistics(**channel_totals),
        accuracy=accuracy,
        estimates={n: normalise(e) for n, e in estimates.items()},
        references={n: normalise(r) for n, r in references.items()},
        protocol_stats=protocol_stats,
        fault_stats=fault_stats,
        events_executed=events_executed,
        wallclock_seconds=time.perf_counter() - started,
    )


