"""The deterministic message bus: lockstep epochs over shard workers.

One scenario, k processes.  The bus is a conservative parallel
discrete-event coordinator (CMB-style, with a global barrier): at each
barrier every worker reports its next pending event time and the crossings
it emitted, the bus routes the crossings, and grants every worker the epoch

    ``[now, T)``  with  ``T = E_min + lookahead``

where ``E_min`` is the global minimum over workers' next event times *and*
in-flight crossing delivery times, and ``lookahead`` is the channel's
per-hop ``processing_delay``.  The grant is safe because every cross-shard
effect of an event executed at time ``t >= E_min`` is a packet delivery at
``t + airtime + processing_delay >= T`` -- at or beyond the barrier, hence
delivered (in the canonical :class:`~repro.shard.runtime.CrossingRecord`
order) before any worker is allowed to reach it.  Workers execute events
*strictly* before ``T`` (:meth:`~repro.simulator.engine.Simulator.run_exclusive`),
so at least one event fires per epoch and the loop always terminates.

Determinism contract: the merged execution presents every *node* with
exactly the event sequence of the single-process run -- per-node RNG
streams, per-node detector state and the replayed per-node energy charge
order are all preserved -- so the merged :class:`SimulationResult`
serialises byte-identically to the single-process transcript.  Two scenario
knobs are incompatible with sharding and rejected up front: channel loss
(i.i.d. or burst) draws from shared streams in global transmission order,
which no per-shard execution can replay.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.accuracy import compare_estimates, normalise
from ..core.errors import ConfigurationError, SimulationError
from ..datasets.loader import build_intel_lab_dataset
from ..datasets.streams import SensorDataset
from ..network.channel import ChannelStatistics
from ..network.stats import EnergyReport
from ..network.topology import Topology
from ..wsn.results import SimulationResult
from ..wsn.runner import final_references
from ..wsn.scenario import ScenarioConfig
from .partition import ShardPlan, partition_topology
from .runtime import CrossingRecord, shard_worker_main

__all__ = ["run_sharded_scenario", "LOOKAHEAD_SECONDS"]

#: The bus lookahead: the wireless channel's constant per-hop processing
#: delay.  Every cross-shard influence is a packet delivery arriving at
#: least ``airtime + LOOKAHEAD_SECONDS`` after the event that caused it,
#: so granting ``E_min + LOOKAHEAD_SECONDS`` (exclusive) is always causal.
LOOKAHEAD_SECONDS = 1e-3

_INFINITY = float("inf")


def _validate(scenario: ScenarioConfig, shards: int) -> None:
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if scenario.loss_probability > 0.0:
        raise ConfigurationError(
            "sharded execution requires a lossless channel "
            "(loss_probability=0): i.i.d. loss draws consume a shared "
            "random stream in global transmission order"
        )
    if scenario.faults.burst_enabled:
        raise ConfigurationError(
            "sharded execution does not support the Gilbert-Elliott burst "
            "model: per-link chains draw from a shared random stream in "
            "global transmission order"
        )


def run_sharded_scenario(
    scenario: ScenarioConfig,
    dataset: Optional[SensorDataset] = None,
    shards: int = 2,
    mode: str = "hop-interleaved",
) -> SimulationResult:
    """Run one scenario partitioned across ``shards`` worker processes.

    The result is byte-identical (``SimulationResult.canonical_json``) to
    ``run_scenario(scenario)`` -- the sharded-equivalence test suite pins
    this on golden scenarios for every algorithm, metric and fault setting.
    """
    started = time.perf_counter()
    _validate(scenario, shards)
    data = dataset or build_intel_lab_dataset(scenario.dataset_config())
    topology = Topology.from_positions(
        data.positions, transmission_range=scenario.transmission_range
    )
    topology.require_connected()
    plan = partition_topology(topology, scenario.sink_id, shards, mode=mode)

    payloads = _run_workers(scenario, data, topology, plan)

    # ------------------------------------------------------------------
    # Merge the shard slices into one result (same order of operations as
    # the single-process tail of run_scenario).
    # ------------------------------------------------------------------
    final_index = scenario.rounds - 1
    final_windows = data.windows(final_index, scenario.detection.window_length)
    skipped: Set[Tuple[int, int]] = set()
    for payload in payloads:
        skipped |= payload["skipped_keys"]
    if scenario.faults.churn_enabled:
        final_windows = {
            node_id: [p for p in points if (p.origin, p.epoch) not in skipped]
            for node_id, points in final_windows.items()
        }
    references = final_references(scenario, topology, final_windows)

    estimates: Dict[int, list] = {}
    protocol_stats: Dict[int, Dict[str, int]] = {}
    fault_stats: Dict[int, Dict[str, float]] = {}
    meters: Dict[int, object] = {}
    channel_totals: Dict[str, int] = {}
    events_executed = 0
    for payload in payloads:
        estimates.update(payload["estimates"])
        protocol_stats.update(payload["protocol_stats"])
        fault_stats.update(payload["fault_stats"])
        meters.update(payload["meters"])
        for key, value in payload["channel"].items():
            channel_totals[key] = channel_totals.get(key, 0) + value
        events_executed += payload["events_executed"]

    accuracy = compare_estimates(estimates, references)
    energy = EnergyReport.from_meters(meters, rounds=scenario.rounds)

    return SimulationResult(
        scenario=scenario,
        energy=energy,
        channel=ChannelStatistics(**channel_totals),
        accuracy=accuracy,
        estimates={n: normalise(e) for n, e in estimates.items()},
        references={n: normalise(r) for n, r in references.items()},
        protocol_stats=protocol_stats,
        fault_stats=fault_stats,
        events_executed=events_executed,
        wallclock_seconds=time.perf_counter() - started,
    )


def _run_workers(
    scenario: ScenarioConfig,
    data: SensorDataset,
    topology: Topology,
    plan: ShardPlan,
) -> List[dict]:
    """Spawn one worker per shard and drive the epoch loop to completion."""
    context = multiprocessing.get_context()
    connections = []
    processes = []
    try:
        for shard, members in enumerate(plan.members):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=shard_worker_main,
                args=(
                    child_conn,
                    scenario,
                    data,
                    topology,
                    members,
                    plan.boundaries[shard],
                ),
                name=f"repro-shard-{shard}",
            )
            process.start()
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)

        shard_count = plan.shard_count
        inboxes: List[List[CrossingRecord]] = [[] for _ in range(shard_count)]
        owner = plan.owner_map()
        clocks = [0.0] * shard_count
        while True:
            effective_next = [_INFINITY] * shard_count
            for shard, conn in enumerate(connections):
                kind, *body = _receive(conn, processes[shard])
                if kind != "barrier":  # pragma: no cover - defensive
                    raise SimulationError(f"unexpected worker message {kind!r}")
                next_time, now, outbox = body
                clocks[shard] = now
                if next_time is not None:
                    effective_next[shard] = next_time
                for record in outbox:
                    inboxes[owner[record.dst]].append(record)
            for shard in range(shard_count):
                for record in inboxes[shard]:
                    effective_next[shard] = min(
                        effective_next[shard], record.deliver_time
                    )
            horizon = min(effective_next)
            if horizon == _INFINITY:
                break
            grant = horizon + LOOKAHEAD_SECONDS
            for shard, conn in enumerate(connections):
                conn.send(("epoch", grant, inboxes[shard]))
                inboxes[shard] = []

        duration = max(scenario.duration, max(clocks))
        payloads: List[Optional[dict]] = [None] * shard_count
        for shard, conn in enumerate(connections):
            conn.send(("finalize", duration))
            kind, payload = _receive(conn, processes[shard])
            if kind != "result":  # pragma: no cover - defensive
                raise SimulationError(f"unexpected worker message {kind!r}")
            payloads[shard] = payload
        return payloads
    finally:
        for conn in connections:
            conn.close()
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join()


def _receive(conn, process) -> tuple:
    """One message from a worker; turns worker errors and dead workers into
    :class:`SimulationError` with the worker's traceback attached."""
    try:
        message = conn.recv()
    except EOFError:
        raise SimulationError(
            f"shard worker {process.name} exited unexpectedly "
            f"(exit code {process.exitcode})"
        ) from None
    if message[0] == "error":
        raise SimulationError(
            f"shard worker {process.name} failed:\n{message[1]}"
        )
    return message
