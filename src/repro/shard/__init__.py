"""Sharded scenario execution.

Partition one deployment across processes along the semi-global hop-level
decomposition and run the shard-local simulators in lockstep epochs over a
deterministic message bus.  The public entry point is
``run_scenario(..., shards=k)`` in :mod:`repro.wsn.runner`; this package
holds the machinery:

* :mod:`repro.shard.partition` -- hop-level partitioner over the CSR
  topology (``hop-interleaved`` round-robin placement by default, so every
  shard owns a slice of every hop level and stays busy in every epoch);
* :mod:`repro.shard.runtime` -- the worker-side slice: shard channel with
  crossing records, recording energy meters, mirrored fault transitions;
* :mod:`repro.shard.bus` -- the coordinator: epoch grants, canonical
  crossing delivery order, and the merge of shard slices into one
  :class:`~repro.wsn.results.SimulationResult` that is byte-identical to
  the single-process transcript.
"""

from .bus import LOOKAHEAD_SECONDS, run_sharded_scenario
from .partition import PARTITION_MODES, ShardPlan, partition_topology

__all__ = [
    "LOOKAHEAD_SECONDS",
    "PARTITION_MODES",
    "ShardPlan",
    "partition_topology",
    "run_sharded_scenario",
]
