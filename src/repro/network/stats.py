"""Per-run energy and traffic reporting.

The experiment figures all derive from the same primitive measurements: how
many joules each node spent transmitting, receiving and idling over the
simulated interval.  :class:`EnergyReport` snapshots those numbers for every
node and provides the aggregate views used by the plots (averages per node
per sampling round, minimum/maximum node totals, normalised ranges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from ..core.errors import ExperimentError
from .energy import EnergyMeter

__all__ = ["NodeEnergy", "EnergyReport"]


@dataclass(frozen=True)
class NodeEnergy:
    """Immutable snapshot of one node's energy meter."""

    node_id: int
    tx_joules: float
    rx_joules: float
    idle_joules: float
    packets_sent: int
    packets_received: int
    bytes_sent: int
    bytes_received: int

    @property
    def total_joules(self) -> float:
        return self.tx_joules + self.rx_joules + self.idle_joules

    @classmethod
    def from_meter(cls, node_id: int, meter: EnergyMeter) -> "NodeEnergy":
        return cls(
            node_id=node_id,
            tx_joules=meter.tx_joules,
            rx_joules=meter.rx_joules,
            idle_joules=meter.idle_joules,
            packets_sent=meter.packets_sent,
            packets_received=meter.packets_received,
            bytes_sent=meter.bytes_sent,
            bytes_received=meter.bytes_received,
        )


class EnergyReport:
    """Energy figures for a whole simulation run."""

    def __init__(self, nodes: Iterable[NodeEnergy], rounds: int) -> None:
        self.nodes: List[NodeEnergy] = sorted(nodes, key=lambda n: n.node_id)
        if not self.nodes:
            raise ExperimentError("an energy report needs at least one node")
        if rounds < 1:
            raise ExperimentError(f"rounds must be >= 1, got {rounds}")
        self.rounds = int(rounds)

    @classmethod
    def from_meters(
        cls, meters: Mapping[int, EnergyMeter], rounds: int
    ) -> "EnergyReport":
        return cls(
            (NodeEnergy.from_meter(node_id, meter) for node_id, meter in meters.items()),
            rounds=rounds,
        )

    # ------------------------------------------------------------------
    # Aggregates used by the figures
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def _per_node(self, attribute: str) -> List[float]:
        return [getattr(node, attribute) for node in self.nodes]

    def average_per_node(self, attribute: str = "total_joules") -> float:
        """Average of ``attribute`` over nodes (whole run)."""
        values = self._per_node(attribute)
        return sum(values) / len(values)

    def average_per_node_per_round(self, attribute: str = "total_joules") -> float:
        """Average of ``attribute`` per node per sampling round -- the unit
        the paper's "energy per round" plots use."""
        return self.average_per_node(attribute) / self.rounds

    def minimum_node_total(self) -> float:
        return min(node.total_joules for node in self.nodes)

    def maximum_node_total(self) -> float:
        return max(node.total_joules for node in self.nodes)

    def normalised_range(self) -> Dict[str, float]:
        """Min/avg/max node totals normalised by the average (Figure 6)."""
        average = self.average_per_node("total_joules")
        if average == 0:
            return {"min": 0.0, "avg": 0.0, "max": 0.0}
        return {
            "min": self.minimum_node_total() / average,
            "avg": 1.0,
            "max": self.maximum_node_total() / average,
        }

    def totals(self) -> Dict[str, float]:
        """Network-wide totals of each energy component."""
        return {
            "tx_joules": sum(self._per_node("tx_joules")),
            "rx_joules": sum(self._per_node("rx_joules")),
            "idle_joules": sum(self._per_node("idle_joules")),
            "total_joules": sum(node.total_joules for node in self.nodes),
        }

    def by_node(self) -> Dict[int, NodeEnergy]:
        return {node.node_id: node for node in self.nodes}

    def hottest_node(self) -> NodeEnergy:
        """The node that consumed the most energy (the sink's neighborhood in
        the centralized baseline)."""
        return max(self.nodes, key=lambda n: n.total_joules)

    def as_rows(self) -> List[Dict[str, float]]:
        """One dict per node, convenient for CSV-style dumps."""
        return [
            {
                "node_id": node.node_id,
                "tx_joules": node.tx_joules,
                "rx_joules": node.rx_joules,
                "idle_joules": node.idle_joules,
                "total_joules": node.total_joules,
                "packets_sent": node.packets_sent,
                "packets_received": node.packets_received,
            }
            for node in self.nodes
        ]
