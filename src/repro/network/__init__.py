"""Wireless network substrate: topology, channel, nodes, energy accounting."""

from .channel import ChannelStatistics, GilbertElliottParams, WirelessChannel
from .energy import CROSSBOW_MICA2, EnergyMeter, EnergyModel
from .node import SimNode
from .packet import BROADCAST_ADDRESS, Packet, PacketKind
from .stats import EnergyReport, NodeEnergy
from .topology import NodePlacement, Topology

__all__ = [
    "Topology",
    "NodePlacement",
    "WirelessChannel",
    "ChannelStatistics",
    "GilbertElliottParams",
    "SimNode",
    "Packet",
    "PacketKind",
    "BROADCAST_ADDRESS",
    "EnergyModel",
    "EnergyMeter",
    "CROSSBOW_MICA2",
    "EnergyReport",
    "NodeEnergy",
]
