"""Simulated sensor node.

A :class:`SimNode` owns an energy meter and a stack of packet handlers
(routing agents, applications).  Its MAC behaviour is deliberately simple, as
in the paper: all transmissions are physical broadcasts; on reception the
node keeps link-layer broadcasts and packets addressed to itself and hands
them to the handler stack, discarding everything else (the receive energy has
already been paid -- that is the cost of promiscuous listening).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.errors import SimulationError
from .channel import WirelessChannel
from .energy import CROSSBOW_MICA2, EnergyMeter, EnergyModel
from .packet import BROADCAST_ADDRESS, Packet

__all__ = ["SimNode"]

#: A packet handler receives ``(node, packet)`` and returns ``True`` when it
#: consumed the packet (stopping propagation down the handler stack).
PacketHandler = Callable[["SimNode", Packet], bool]


class SimNode:
    """One wireless sensor in the simulated network.

    Parameters
    ----------
    node_id:
        Identifier; must exist in the channel's topology.
    channel:
        The shared wireless channel.
    energy_model:
        Radio power characteristics (defaults to the Crossbow constants used
        in the paper).
    """

    def __init__(
        self,
        node_id: int,
        channel: WirelessChannel,
        energy_model: EnergyModel = CROSSBOW_MICA2,
    ) -> None:
        self.node_id = int(node_id)
        self.channel = channel
        self.energy = EnergyMeter(model=energy_model)
        self._handlers: List[PacketHandler] = []
        self.packets_discarded = 0
        #: Availability state driven by the fault model; a down node neither
        #: samples, transmits nor receives.  Always ``True`` without faults.
        self.up = True
        self.transmissions_suppressed = 0
        self.deliveries_missed_down = 0
        channel.attach(self)

    # ------------------------------------------------------------------
    # Availability (fault model)
    # ------------------------------------------------------------------
    def power_down(self) -> None:
        """Turn the radio (and the node) off: crash or duty-cycle sleep."""
        self.up = False

    def power_up(self) -> None:
        """Bring the node back; state restoration is the application's job."""
        self.up = True

    # ------------------------------------------------------------------
    # Handler stack
    # ------------------------------------------------------------------
    def add_handler(self, handler: PacketHandler) -> None:
        """Append a packet handler (first-registered runs first)."""
        self._handlers.append(handler)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    @property
    def simulator(self):
        return self.channel.simulator

    @property
    def neighbors(self) -> set:
        """The node's single-hop neighborhood according to the topology."""
        return self.channel.topology.neighbors(self.node_id)

    def send(self, packet: Packet) -> None:
        """Transmit a packet whose current link hop originates here."""
        if packet.link_source != self.node_id:
            raise SimulationError(
                f"node {self.node_id} cannot transmit a packet whose link source "
                f"is {packet.link_source}"
            )
        if not self.up:
            # A transmission scheduled before a crash/sleep fires into a
            # dead radio: it silently evaporates.
            self.transmissions_suppressed += 1
            return
        self.channel.transmit(self.node_id, packet)

    def broadcast(self, packet: Packet) -> None:
        """Transmit a link-layer broadcast originating here."""
        if not self.up:
            self.transmissions_suppressed += 1
            return
        packet.link_source = self.node_id
        packet.link_destination = BROADCAST_ADDRESS
        self.channel.transmit(self.node_id, packet)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        """Called by the channel when a packet reaches this node's radio."""
        if not self.up:
            # The node went down between the loss draw and the delivery
            # instant (airtime + processing delay): the packet is gone.
            self.deliveries_missed_down += 1
            return
        if not packet.is_broadcast and packet.link_destination != self.node_id:
            # Overheard unicast traffic meant for someone else: the energy
            # has been spent, but the packet is not processed further.
            self.packets_discarded += 1
            return
        for handler in self._handlers:
            if handler(self, packet):
                return
        self.packets_discarded += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimNode(id={self.node_id}, handlers={len(self._handlers)})"
