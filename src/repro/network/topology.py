"""Network topology: node placement and unit-disk connectivity.

The paper deploys 53 motes (Intel Lab layout) on a 50 m x 50 m terrain with a
uniform transmission range of about 6.77 m; two sensors can communicate
directly when their Euclidean distance does not exceed the range (the classic
unit-disk graph model, which is also what SENSE's free-space propagation with
a fixed reception threshold produces).

:class:`Topology` builds and queries that graph.  Construction runs through
the uniform-grid spatial index (:class:`~repro.core.spatial.GridIndex`, cell
size = transmission range): bucketing is one O(n log n) argsort and the edge
set comes from per-cell block distance kernels, so a 16k-node deployment
builds in tens of milliseconds where the historical all-pairs double loop
took minutes.  That double loop is retained, selectable with
``builder="brute"``, as the oracle the grid path is validated against --
``tests/test_spatial.py`` proves both builders produce bit-identical edge
sets on every registered layout generator.

The hot queries (neighbors, BFS hop distances, shortest-path trees,
connectivity) run on CSR-style flat adjacency arrays built once at
construction; a :mod:`networkx` view of the same graph is available behind
the lazily-built :meth:`Topology.graph` compatibility accessor but is never
needed on the simulation path.

Determinism: neighbor lists are exposed in ascending node-id order, BFS
explores neighbors in that order with a FIFO frontier, so every derived
structure (hop distances, shortest-path trees and their tie-breaks) is a
pure function of the placement set -- and matches what the historical
networkx traversals produced for id-ordered placements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.errors import TopologyError
from ..core.spatial import GridIndex, brute_force_pairs

__all__ = ["NodePlacement", "Topology"]


@dataclass(frozen=True)
class NodePlacement:
    """A node identifier with its (x, y) position in metres."""

    node_id: int
    x: float
    y: float

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def distance_to(self, other: "NodePlacement") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class Topology:
    """Unit-disk communication graph over a set of placed nodes.

    Parameters
    ----------
    placements:
        Node placements; identifiers must be unique.
    transmission_range:
        Maximum distance (metres) at which two nodes hear each other.
    builder:
        ``"grid"`` (default) builds the edge set through the uniform-grid
        spatial index; ``"brute"`` runs the historical O(n^2) double loop.
        Both produce bit-identical edge sets -- ``"brute"`` exists as the
        oracle for equivalence tests and benchmarks.
    """

    def __init__(
        self,
        placements: Iterable[NodePlacement],
        transmission_range: float,
        builder: str = "grid",
    ) -> None:
        if transmission_range <= 0:
            raise TopologyError(
                f"transmission range must be positive, got {transmission_range}"
            )
        if builder not in ("grid", "brute"):
            raise TopologyError(
                f"unknown topology builder {builder!r}; expected 'grid' or 'brute'"
            )
        self.transmission_range = float(transmission_range)
        self.builder = builder
        self._placements: Dict[int, NodePlacement] = {}
        for placement in placements:
            if placement.node_id in self._placements:
                raise TopologyError(f"duplicate node id {placement.node_id}")
            self._placements[placement.node_id] = placement
        if not self._placements:
            raise TopologyError("a topology needs at least one node")

        # Flat arrays in ascending-id order; ``index`` below means a node's
        # rank in this order.
        self._node_ids: List[int] = sorted(self._placements)
        self._index_of: Dict[int, int] = {
            node_id: index for index, node_id in enumerate(self._node_ids)
        }
        self._xs = np.array(
            [self._placements[n].x for n in self._node_ids], dtype=np.float64
        )
        self._ys = np.array(
            [self._placements[n].y for n in self._node_ids], dtype=np.float64
        )

        self._grid: Optional[GridIndex] = None
        if builder == "grid":
            self._grid = GridIndex(
                self._xs, self._ys, cell_size=self.transmission_range
            )
            edge_a, edge_b = self._grid.pairs_within_radius(
                self.transmission_range
            )
        else:
            edge_a, edge_b = brute_force_pairs(
                self._xs, self._ys, self.transmission_range
            )
        self._edge_a = edge_a
        self._edge_b = edge_b

        # CSR adjacency: ``_indptr[i]:_indptr[i+1]`` slices ``_adjacency_flat``
        # into node i's neighbor indices, ascending.
        count = len(self._node_ids)
        if edge_a.size:
            heads = np.concatenate((edge_a, edge_b))
            tails = np.concatenate((edge_b, edge_a))
            order = np.lexsort((tails, heads))
            heads = heads[order]
            tails = tails[order]
            degrees = np.bincount(heads, minlength=count)
        else:
            tails = np.empty(0, dtype=np.int64)
            degrees = np.zeros(count, dtype=np.int64)
        self._indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(degrees, out=self._indptr[1:])
        self._adjacency_flat = tails

        # Python-native mirrors of the CSR rows: BFS iterates these (no
        # numpy scalar boxing on the hot path), and the id-typed tuples keep
        # ``np.int64`` out of JSON payloads and dict keys downstream.
        flat_indices: List[int] = tails.tolist()
        self._adj_index_lists: List[List[int]] = [
            flat_indices[self._indptr[i] : self._indptr[i + 1]]
            for i in range(count)
        ]
        self._neighbor_ids: List[Tuple[int, ...]] = [
            tuple(self._node_ids[j] for j in row)
            for row in self._adj_index_lists
        ]
        self._adjacency_cache: Optional[Dict[int, Set[int]]] = None
        self._connected: Optional[bool] = None
        self._components_cache: Optional[List[List[int]]] = None
        self._nx_graph = None

    @classmethod
    def from_positions(
        cls,
        positions: Mapping[int, Tuple[float, float]],
        transmission_range: float,
        builder: str = "grid",
    ) -> "Topology":
        """Build a topology from a ``{node_id: (x, y)}`` mapping."""
        placements = [
            NodePlacement(node_id, float(x), float(y))
            for node_id, (x, y) in positions.items()
        ]
        return cls(placements, transmission_range, builder=builder)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        """Node identifiers in ascending order (cached; treat as read-only)."""
        return self._node_ids

    def __len__(self) -> int:
        return len(self._placements)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._placements

    @property
    def edge_count(self) -> int:
        """Number of undirected links in the unit-disk graph."""
        return int(self._edge_a.size)

    def placement(self, node_id: int) -> NodePlacement:
        try:
            return self._placements[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None

    def position(self, node_id: int) -> Tuple[float, float]:
        return self.placement(node_id).position

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes, in metres."""
        return self.placement(a).distance_to(self.placement(b))

    def _index(self, node_id: int) -> int:
        try:
            return self._index_of[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None

    def neighbors(self, node_id: int) -> Set[int]:
        """Single-hop neighbors of ``node_id`` (a fresh, mutable set)."""
        return set(self._neighbor_ids[self._index(node_id)])

    def neighbors_sorted(self, node_id: int) -> Tuple[int, ...]:
        """Single-hop neighbors in ascending id order (cached tuple).

        The channel and the fault runtime iterate this on every broadcast
        and every repair notification; the tuple is built once at
        construction, so the per-call cost is one dict lookup.
        """
        return self._neighbor_ids[self._index(node_id)]

    def adjacency(self) -> Dict[int, Set[int]]:
        """The full neighbor map ``{node_id: set(neighbors)}``.

        Built once and cached; callers must treat the returned mapping as
        read-only (every in-tree consumer does).
        """
        if self._adjacency_cache is None:
            self._adjacency_cache = {
                node_id: set(self._neighbor_ids[index])
                for index, node_id in enumerate(self._node_ids)
            }
        return self._adjacency_cache

    def degree_statistics(self) -> Tuple[int, float, int]:
        """(min, mean, max) node degree -- handy for sanity-checking density."""
        degrees = np.diff(self._indptr)
        return (
            int(degrees.min()),
            float(degrees.mean()),
            int(degrees.max()),
        )

    # ------------------------------------------------------------------
    # Connectivity (union-find over the edge arrays)
    # ------------------------------------------------------------------
    def _components(self) -> List[List[int]]:
        """Connected components as sorted id lists (cached)."""
        if self._components_cache is not None:
            return self._components_cache
        count = len(self._node_ids)
        parent = list(range(count))

        def find(index: int) -> int:
            root = index
            while parent[root] != root:
                root = parent[root]
            while parent[index] != root:
                parent[index], index = root, parent[index]
            return root

        for a, b in zip(self._edge_a.tolist(), self._edge_b.tolist()):
            root_a = find(a)
            root_b = find(b)
            if root_a != root_b:
                parent[root_b] = root_a
        groups: Dict[int, List[int]] = {}
        for index in range(count):
            groups.setdefault(find(index), []).append(index)
        self._components_cache = sorted(
            (sorted(self._node_ids[i] for i in members)
             for members in groups.values()),
            key=lambda component: component[0],
        )
        self._connected = len(self._components_cache) == 1
        return self._components_cache

    def is_connected(self) -> bool:
        """True when a (multi-hop) path exists between every pair of nodes."""
        if self._connected is None:
            self._components()
        return bool(self._connected)

    def require_connected(self) -> None:
        """Raise :class:`TopologyError` when the network is partitioned."""
        if not self.is_connected():
            components = self._components()
            raise TopologyError(
                f"network is not connected: {len(components)} components {components}"
            )

    # ------------------------------------------------------------------
    # BFS (FIFO frontier, ascending-id neighbor order)
    # ------------------------------------------------------------------
    def _bfs(
        self,
        source_index: int,
        max_hops: Optional[int] = None,
        target_index: Optional[int] = None,
    ) -> Tuple[List[int], List[int], List[int]]:
        """Breadth-first search over the CSR adjacency.

        Returns ``(order, distances, parents)``: visited indices in
        discovery order, per-index hop counts (-1 = unreached) and per-index
        BFS-tree parents (-1 = none).  Stops early at ``max_hops`` levels or
        when ``target_index`` is dequeued.
        """
        count = len(self._node_ids)
        distances = [-1] * count
        parents = [-1] * count
        distances[source_index] = 0
        visit_order = [source_index]
        frontier = [source_index]
        adjacency = self._adj_index_lists
        depth = 0
        while frontier:
            if max_hops is not None and depth >= max_hops:
                break
            if target_index is not None and distances[target_index] >= 0:
                break
            depth += 1
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if distances[neighbor] < 0:
                        distances[neighbor] = depth
                        parents[neighbor] = node
                        visit_order.append(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return visit_order, distances, parents

    def hop_distance(self, a: int, b: int) -> int:
        """Number of hops on a shortest path between two nodes."""
        index_a = self._index(a)
        index_b = self._index(b)
        _, distances, _ = self._bfs(index_a, target_index=index_b)
        hops = distances[index_b]
        if hops < 0:
            raise TopologyError(f"no path between nodes {a} and {b}")
        return hops

    def hop_distances_from(self, source: int) -> Dict[int, int]:
        """Hop distance from ``source`` to every reachable node."""
        visit_order, distances, _ = self._bfs(self._index(source))
        return {
            self._node_ids[index]: distances[index] for index in visit_order
        }

    def nodes_within_hops(self, source: int, max_hops: int) -> Set[int]:
        """All nodes (including ``source``) at hop distance <= ``max_hops``.

        Runs a depth-cutoff BFS: the traversal stops expanding at
        ``max_hops`` levels, so the cost is proportional to the
        neighborhood's size, not the whole network's.
        """
        visit_order, _, _ = self._bfs(self._index(source), max_hops=max_hops)
        return {self._node_ids[index] for index in visit_order}

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest path (as a list of node ids) between two nodes.

        Deterministic: the path follows the ascending-id BFS tree rooted at
        ``a``.
        """
        index_a = self._index(a)
        index_b = self._index(b)
        _, distances, parents = self._bfs(index_a, target_index=index_b)
        if distances[index_b] < 0:
            raise TopologyError(f"no path between nodes {a} and {b}")
        reversed_path = [index_b]
        while reversed_path[-1] != index_a:
            reversed_path.append(parents[reversed_path[-1]])
        return [self._node_ids[index] for index in reversed(reversed_path)]

    def shortest_path_tree(self, sink: int) -> Dict[int, Optional[int]]:
        """Next-hop table towards ``sink``: ``{node: next_hop_or_None}``.

        The sink maps to ``None``; unreachable nodes are absent.  A node's
        next hop is its parent in the BFS tree rooted at the sink, which is
        exactly the predecessor relation the historical
        ``networkx.single_source_shortest_path`` call produced.  Used by the
        static-routing variant of the centralized baseline and as the ground
        truth AODV should discover.
        """
        sink_index = self._index(sink)
        visit_order, _, parents = self._bfs(sink_index)
        table: Dict[int, Optional[int]] = {sink: None}
        for index in visit_order:
            if index == sink_index:
                continue
            table[self._node_ids[index]] = self._node_ids[parents[index]]
        return table

    def diameter(self) -> int:
        """Longest shortest-path hop count in the (connected) network."""
        self.require_connected()
        worst = 0
        for index in range(len(self._node_ids)):
            _, distances, _ = self._bfs(index)
            worst = max(worst, max(distances))
        return worst

    # ------------------------------------------------------------------
    # Compatibility accessors
    # ------------------------------------------------------------------
    def spatial_index(self) -> GridIndex:
        """The grid index over this topology's node positions.

        Built during construction for the default builder; materialised on
        first use for the brute-force oracle builder.  Point indices in the
        returned :class:`~repro.core.spatial.GridIndex` are positions in
        :attr:`node_ids` (ascending-id order).
        """
        if self._grid is None:
            self._grid = GridIndex(
                self._xs, self._ys, cell_size=self.transmission_range
            )
        return self._grid

    def graph(self):
        """A copy of the topology as a :class:`networkx.Graph`.

        networkx is only needed by callers that want generic graph
        algorithms on top of the topology; none of the simulation path does,
        so the graph is built lazily on first access and cached.  Edge
        ``distance`` attributes carry the same ``math.hypot`` values the
        historical eager builder stored.
        """
        if self._nx_graph is None:
            import networkx as nx

            graph = nx.Graph()
            for node_id in self._node_ids:
                graph.add_node(node_id, pos=self._placements[node_id].position)
            for a, b in zip(self._edge_a.tolist(), self._edge_b.tolist()):
                id_a = self._node_ids[a]
                id_b = self._node_ids[b]
                graph.add_edge(
                    id_a,
                    id_b,
                    distance=self._placements[id_a].distance_to(
                        self._placements[id_b]
                    ),
                )
            self._nx_graph = graph
        return self._nx_graph.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(nodes={len(self)}, range={self.transmission_range:g}m, "
            f"edges={self.edge_count})"
        )
