"""Network topology: node placement and unit-disk connectivity.

The paper deploys 53 motes (Intel Lab layout) on a 50 m x 50 m terrain with a
uniform transmission range of about 6.77 m; two sensors can communicate
directly when their Euclidean distance does not exceed the range (the classic
unit-disk graph model, which is also what SENSE's free-space propagation with
a fixed reception threshold produces).

:class:`Topology` builds and queries that graph: neighbor sets, connectivity,
hop distances, and the shortest-path trees the centralized baseline uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.errors import TopologyError

__all__ = ["NodePlacement", "Topology"]


@dataclass(frozen=True)
class NodePlacement:
    """A node identifier with its (x, y) position in metres."""

    node_id: int
    x: float
    y: float

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def distance_to(self, other: "NodePlacement") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class Topology:
    """Unit-disk communication graph over a set of placed nodes.

    Parameters
    ----------
    placements:
        Node placements; identifiers must be unique.
    transmission_range:
        Maximum distance (metres) at which two nodes hear each other.
    """

    def __init__(
        self,
        placements: Iterable[NodePlacement],
        transmission_range: float,
    ) -> None:
        if transmission_range <= 0:
            raise TopologyError(
                f"transmission range must be positive, got {transmission_range}"
            )
        self.transmission_range = float(transmission_range)
        self._placements: Dict[int, NodePlacement] = {}
        for placement in placements:
            if placement.node_id in self._placements:
                raise TopologyError(f"duplicate node id {placement.node_id}")
            self._placements[placement.node_id] = placement
        if not self._placements:
            raise TopologyError("a topology needs at least one node")
        self._graph = self._build_graph()

    @classmethod
    def from_positions(
        cls,
        positions: Mapping[int, Tuple[float, float]],
        transmission_range: float,
    ) -> "Topology":
        """Build a topology from a ``{node_id: (x, y)}`` mapping."""
        placements = [
            NodePlacement(node_id, float(x), float(y))
            for node_id, (x, y) in positions.items()
        ]
        return cls(placements, transmission_range)

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for placement in self._placements.values():
            graph.add_node(placement.node_id, pos=placement.position)
        nodes = list(self._placements.values())
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                dist = a.distance_to(b)
                if dist <= self.transmission_range:
                    graph.add_edge(a.node_id, b.node_id, distance=dist)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        """Sorted node identifiers."""
        return sorted(self._placements)

    def __len__(self) -> int:
        return len(self._placements)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._placements

    def placement(self, node_id: int) -> NodePlacement:
        try:
            return self._placements[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None

    def position(self, node_id: int) -> Tuple[float, float]:
        return self.placement(node_id).position

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes, in metres."""
        return self.placement(a).distance_to(self.placement(b))

    def neighbors(self, node_id: int) -> Set[int]:
        """Single-hop neighbors of ``node_id`` (nodes within range)."""
        if node_id not in self._placements:
            raise TopologyError(f"unknown node id {node_id}")
        return set(self._graph.neighbors(node_id))

    def adjacency(self) -> Dict[int, Set[int]]:
        """The full neighbor map ``{node_id: set(neighbors)}``."""
        return {node_id: self.neighbors(node_id) for node_id in self.node_ids}

    def degree_statistics(self) -> Tuple[int, float, int]:
        """(min, mean, max) node degree -- handy for sanity-checking density."""
        degrees = [self._graph.degree(n) for n in self.node_ids]
        return (min(degrees), sum(degrees) / len(degrees), max(degrees))

    def is_connected(self) -> bool:
        """True when a (multi-hop) path exists between every pair of nodes."""
        return nx.is_connected(self._graph)

    def require_connected(self) -> None:
        """Raise :class:`TopologyError` when the network is partitioned."""
        if not self.is_connected():
            components = [sorted(c) for c in nx.connected_components(self._graph)]
            raise TopologyError(
                f"network is not connected: {len(components)} components {components}"
            )

    def hop_distance(self, a: int, b: int) -> int:
        """Number of hops on a shortest path between two nodes."""
        try:
            return nx.shortest_path_length(self._graph, a, b)
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path between nodes {a} and {b}") from None

    def hop_distances_from(self, source: int) -> Dict[int, int]:
        """Hop distance from ``source`` to every reachable node."""
        return dict(nx.single_source_shortest_path_length(self._graph, source))

    def nodes_within_hops(self, source: int, max_hops: int) -> Set[int]:
        """All nodes (including ``source``) at hop distance <= ``max_hops``."""
        distances = self.hop_distances_from(source)
        return {node for node, hops in distances.items() if hops <= max_hops}

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest path (as a list of node ids) between two nodes."""
        try:
            return nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path between nodes {a} and {b}") from None

    def shortest_path_tree(self, sink: int) -> Dict[int, Optional[int]]:
        """Next-hop table towards ``sink``: ``{node: next_hop_or_None}``.

        The sink maps to ``None``.  Used by the static-routing variant of the
        centralized baseline and as the ground truth AODV should discover.
        """
        table: Dict[int, Optional[int]] = {sink: None}
        paths = nx.single_source_shortest_path(self._graph, sink)
        for node, path in paths.items():
            if node == sink:
                continue
            # path is sink -> ... -> node; the node's next hop towards the
            # sink is the predecessor of node on that path.
            table[node] = path[-2]
        return table

    def diameter(self) -> int:
        """Longest shortest-path hop count in the (connected) network."""
        self.require_connected()
        return nx.diameter(self._graph)

    def graph(self) -> nx.Graph:
        """A copy of the underlying :class:`networkx.Graph`."""
        return self._graph.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(nodes={len(self)}, range={self.transmission_range:g}m, "
            f"edges={self._graph.number_of_edges()})"
        )
