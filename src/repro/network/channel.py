"""Wireless broadcast channel with free-space propagation.

Every transmission is physically a broadcast: all nodes within transmission
range of the sender overhear the packet and spend receive energy on it
(promiscuous listening), regardless of whom the packet is addressed to.  The
MAC layer of each node then decides whether to hand the packet to the
application (it does so for link-layer broadcasts and for packets addressed
to the node).

The channel models:

* transmission delay = packet size / bit-rate (the airtime),
* a small constant per-hop processing latency,
* independent per-receiver packet loss with a configurable probability
  (the paper assumes mostly-reliable delivery; a small loss rate is used for
  the accuracy-under-loss experiments).

Collisions are not modelled explicitly -- the paper relies on carrier-sense
to avoid them and does not report collision statistics; their first-order
effect (occasional missing packets) is covered by the loss probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..core.errors import ConfigurationError, SimulationError
from ..simulator.engine import Simulator
from ..simulator.rng import RandomStreams
from .packet import Packet
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import SimNode

__all__ = ["ChannelStatistics", "WirelessChannel"]


@dataclass
class ChannelStatistics:
    """Aggregate traffic counters for one simulation run."""

    transmissions: int = 0
    deliveries: int = 0
    losses: int = 0
    bytes_transmitted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "losses": self.losses,
            "bytes_transmitted": self.bytes_transmitted,
        }


class WirelessChannel:
    """Connects :class:`~repro.network.node.SimNode` objects according to a
    :class:`~repro.network.topology.Topology`.

    Parameters
    ----------
    simulator:
        The discrete-event engine driving the run.
    topology:
        Placement and connectivity of the nodes.
    loss_probability:
        Probability that any given receiver fails to decode a packet
        (independently per receiver).
    processing_delay:
        Fixed per-hop latency added on top of the airtime, in seconds.
    streams:
        Seeded random streams; the channel uses the ``"channel"`` stream.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        loss_probability: float = 0.0,
        processing_delay: float = 1e-3,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        if processing_delay < 0:
            raise ConfigurationError(
                f"processing_delay must be non-negative, got {processing_delay}"
            )
        self.simulator = simulator
        self.topology = topology
        self.loss_probability = float(loss_probability)
        self.processing_delay = float(processing_delay)
        self._rng = (streams or RandomStreams(0)).stream("channel")
        self._nodes: Dict[int, "SimNode"] = {}
        self.stats = ChannelStatistics()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(self, node: "SimNode") -> None:
        """Register a node with the channel (done by the node constructor)."""
        if node.node_id not in self.topology:
            raise SimulationError(
                f"node {node.node_id} is not part of the topology"
            )
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id} attached twice")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "SimNode":
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"no node attached with id {node_id}") from None

    @property
    def attached_ids(self) -> list:
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender_id: int, packet: Packet) -> None:
        """Put ``packet`` on the air from ``sender_id``.

        The sender is charged transmit energy once; every attached neighbor
        within range is charged receive energy (promiscuous listening) and,
        unless the loss draw discards the packet for that particular
        receiver, gets the packet delivered after the airtime plus the
        processing delay.
        """
        sender = self.node(sender_id)
        airtime = sender.energy.model.airtime(packet.size_bytes)
        sender.energy.charge_tx(packet.size_bytes)
        self.stats.transmissions += 1
        self.stats.bytes_transmitted += packet.size_bytes

        delay = airtime + self.processing_delay
        for neighbor_id in sorted(self.topology.neighbors(sender_id)):
            receiver = self._nodes.get(neighbor_id)
            if receiver is None:
                continue
            # Promiscuous listening: the radio decodes everything in range.
            receiver.energy.charge_rx(packet.size_bytes)
            if self.loss_probability and self._rng.random() < self.loss_probability:
                self.stats.losses += 1
                continue
            self.stats.deliveries += 1
            self.simulator.schedule(
                delay,
                receiver.deliver,
                packet,
                name=f"deliver#{packet.packet_id}->{neighbor_id}",
            )
