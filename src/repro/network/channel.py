"""Wireless broadcast channel with free-space propagation.

Every transmission is physically a broadcast: all nodes within transmission
range of the sender overhear the packet and spend receive energy on it
(promiscuous listening), regardless of whom the packet is addressed to.  The
MAC layer of each node then decides whether to hand the packet to the
application (it does so for link-layer broadcasts and for packets addressed
to the node).

The channel models:

* transmission delay = packet size / bit-rate (the airtime),
* a small constant per-hop processing latency,
* independent per-receiver packet loss with a configurable probability
  (the paper assumes mostly-reliable delivery; a small loss rate is used for
  the accuracy-under-loss experiments),
* optionally, *correlated* burst loss: a two-state Gilbert-Elliott Markov
  chain per directed link (see :class:`GilbertElliottParams`) replaces the
  i.i.d. model, reproducing the multi-packet fades real radios exhibit.

Nodes that are powered down (fault-model crash or duty-cycle sleep) neither
transmit nor receive: a down sender's transmission evaporates without
charging energy, and a down receiver is skipped entirely -- its radio is
off, so it pays no promiscuous receive energy either.

Collisions are not modelled explicitly -- the paper relies on carrier-sense
to avoid them and does not report collision statistics; their first-order
effect (occasional missing packets) is covered by the loss probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..core.errors import ConfigurationError, SimulationError
from ..simulator.engine import Simulator
from ..simulator.rng import RandomStreams
from .packet import Packet
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import SimNode

__all__ = ["ChannelStatistics", "GilbertElliottParams", "WirelessChannel"]


@dataclass(frozen=True)
class GilbertElliottParams:
    """Two-state (good/bad) burst-loss channel model.

    Before each delivery attempt on a directed link the link's state
    advances one Markov step (``p_good_to_bad`` / ``p_bad_to_good``), then
    the packet is lost with the state's loss probability.  The stationary
    loss rate is ``pi_bad * loss_bad + (1 - pi_bad) * loss_good`` with
    ``pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good)``, which lets
    experiments match the *average* rate of an i.i.d. model while varying
    only the burstiness.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 < self.p_bad_to_good <= 1.0:
            raise ConfigurationError(
                f"p_bad_to_good must be in (0, 1], got {self.p_bad_to_good}"
            )

    @property
    def stationary_loss(self) -> float:
        """Long-run average loss probability of the chain."""
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator == 0.0:
            return self.loss_good
        pi_bad = self.p_good_to_bad / denominator
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good


@dataclass
class ChannelStatistics:
    """Aggregate traffic counters for one simulation run."""

    transmissions: int = 0
    deliveries: int = 0
    losses: int = 0
    bytes_transmitted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "losses": self.losses,
            "bytes_transmitted": self.bytes_transmitted,
        }


class WirelessChannel:
    """Connects :class:`~repro.network.node.SimNode` objects according to a
    :class:`~repro.network.topology.Topology`.

    Parameters
    ----------
    simulator:
        The discrete-event engine driving the run.
    topology:
        Placement and connectivity of the nodes.
    loss_probability:
        Probability that any given receiver fails to decode a packet
        (independently per receiver).
    processing_delay:
        Fixed per-hop latency added on top of the airtime, in seconds.
    streams:
        Seeded random streams; the channel uses the ``"channel"`` stream
        (and, when the burst model is active, ``"channel-burst"`` -- a
        separate stream so enabling bursts never perturbs the i.i.d. draws
        of other components).
    burst:
        Optional :class:`GilbertElliottParams`; when given, correlated
        burst loss *replaces* the i.i.d. ``loss_probability`` model.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        loss_probability: float = 0.0,
        processing_delay: float = 1e-3,
        streams: Optional[RandomStreams] = None,
        burst: Optional[GilbertElliottParams] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        if processing_delay < 0:
            raise ConfigurationError(
                f"processing_delay must be non-negative, got {processing_delay}"
            )
        self.simulator = simulator
        self.topology = topology
        self.loss_probability = float(loss_probability)
        self.processing_delay = float(processing_delay)
        self.burst = burst
        streams = streams or RandomStreams(0)
        self._rng = streams.stream("channel")
        self._burst_rng = streams.stream("channel-burst") if burst else None
        self._burst_bad: Dict[Tuple[int, int], bool] = {}
        self._nodes: Dict[int, "SimNode"] = {}
        self.stats = ChannelStatistics()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(self, node: "SimNode") -> None:
        """Register a node with the channel (done by the node constructor)."""
        if node.node_id not in self.topology:
            raise SimulationError(
                f"node {node.node_id} is not part of the topology"
            )
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id} attached twice")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "SimNode":
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"no node attached with id {node_id}") from None

    @property
    def attached_ids(self) -> list:
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender_id: int, packet: Packet) -> None:
        """Put ``packet`` on the air from ``sender_id``.

        The sender is charged transmit energy once; every attached neighbor
        within range is charged receive energy (promiscuous listening) and,
        unless the loss draw discards the packet for that particular
        receiver, gets the packet delivered after the airtime plus the
        processing delay.
        """
        sender = self.node(sender_id)
        if not sender.up:
            # The radio is powered down (crash / duty-cycle sleep): nothing
            # reaches the air and no energy is spent.
            return
        airtime = sender.energy.model.airtime(packet.size_bytes)
        sender.energy.charge_tx(packet.size_bytes)
        self.stats.transmissions += 1
        self.stats.bytes_transmitted += packet.size_bytes

        delay = airtime + self.processing_delay
        # Cached ascending-id tuple: same iteration (and loss-draw) order the
        # historical ``sorted(set)`` produced, without rebuilding it per send.
        for neighbor_id in self.topology.neighbors_sorted(sender_id):
            receiver = self._nodes.get(neighbor_id)
            if receiver is None or not receiver.up:
                # A powered-down receiver's radio is off: no promiscuous
                # receive energy, no delivery, no loss draw.
                continue
            # Promiscuous listening: the radio decodes everything in range.
            receiver.energy.charge_rx(packet.size_bytes)
            if self._lost(sender_id, neighbor_id):
                self.stats.losses += 1
                continue
            self.stats.deliveries += 1
            self.simulator.schedule(
                delay,
                receiver.deliver,
                packet,
                name=f"deliver#{packet.packet_id}->{neighbor_id}",
            )

    def _lost(self, sender_id: int, receiver_id: int) -> bool:
        """One loss decision for this delivery attempt.

        Without a burst model this is the legacy i.i.d. Bernoulli draw (and
        consumes exactly the same ``"channel"`` stream draws as before the
        fault subsystem existed).  With a burst model, the directed link's
        Gilbert-Elliott state advances one step and the state's loss
        probability applies, both drawn from the dedicated
        ``"channel-burst"`` stream.
        """
        if self.burst is None:
            return bool(
                self.loss_probability
                and self._rng.random() < self.loss_probability
            )
        link = (sender_id, receiver_id)
        bad = self._burst_bad.get(link, False)
        if bad:
            if self._burst_rng.random() < self.burst.p_bad_to_good:
                bad = False
        elif self._burst_rng.random() < self.burst.p_good_to_bad:
            bad = True
        self._burst_bad[link] = bad
        loss = self.burst.loss_bad if bad else self.burst.loss_good
        return bool(loss and self._burst_rng.random() < loss)
