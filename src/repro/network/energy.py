"""Radio energy model (Crossbow mote constants from the paper).

The paper configures SENSE with a transmit/receive/idle power of
0.0159 W / 0.021 W / 3e-6 W assuming a 3 V supply, and a free-space channel.
Energy is power multiplied by the time the radio spends in each state; the
time spent transmitting or receiving a packet is its size divided by the
radio bit-rate (we default to the 38.4 kbps of the MICA2 mote generation the
Crossbow numbers come from).

:class:`EnergyMeter` accumulates the three components per node and is the
source of every energy figure reported by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.errors import ConfigurationError

__all__ = ["EnergyModel", "EnergyMeter", "CROSSBOW_MICA2"]


@dataclass(frozen=True)
class EnergyModel:
    """Radio power characteristics.

    Attributes
    ----------
    tx_power_w / rx_power_w / idle_power_w:
        Power drawn while transmitting, receiving and idling, in watts.
    bitrate_bps:
        Radio bit-rate used to convert packet sizes into airtime.
    voltage:
        Supply voltage (informational; the powers already include it).
    """

    tx_power_w: float = 0.0159
    rx_power_w: float = 0.021
    idle_power_w: float = 3e-6
    bitrate_bps: float = 38_400.0
    voltage: float = 3.0

    def __post_init__(self) -> None:
        for name in ("tx_power_w", "rx_power_w", "idle_power_w", "bitrate_bps", "voltage"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def airtime(self, size_bytes: int) -> float:
        """Seconds the radio is busy sending/receiving ``size_bytes``."""
        if size_bytes < 0:
            raise ConfigurationError(f"packet size must be non-negative, got {size_bytes}")
        return (8.0 * size_bytes) / self.bitrate_bps

    def tx_energy(self, size_bytes: int) -> float:
        """Joules spent transmitting a packet of ``size_bytes``."""
        return self.tx_power_w * self.airtime(size_bytes)

    def rx_energy(self, size_bytes: int) -> float:
        """Joules spent receiving a packet of ``size_bytes``."""
        return self.rx_power_w * self.airtime(size_bytes)

    def idle_energy(self, seconds: float) -> float:
        """Joules spent idling for ``seconds``."""
        if seconds < 0:
            raise ConfigurationError(f"idle duration must be non-negative, got {seconds}")
        return self.idle_power_w * seconds


#: The exact configuration used in the paper's evaluation.
CROSSBOW_MICA2 = EnergyModel()


@dataclass
class EnergyMeter:
    """Per-node energy accumulator.

    ``charge`` methods are called by the radio layer; the experiment harness
    reads the totals after the simulation completes.
    """

    model: EnergyModel = field(default_factory=lambda: CROSSBOW_MICA2)
    tx_joules: float = 0.0
    rx_joules: float = 0.0
    idle_joules: float = 0.0
    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge_tx(self, size_bytes: int) -> float:
        energy = self.model.tx_energy(size_bytes)
        self.tx_joules += energy
        self.packets_sent += 1
        self.bytes_sent += size_bytes
        return energy

    def charge_rx(self, size_bytes: int) -> float:
        energy = self.model.rx_energy(size_bytes)
        self.rx_joules += energy
        self.packets_received += 1
        self.bytes_received += size_bytes
        return energy

    def charge_idle(self, seconds: float) -> float:
        energy = self.model.idle_energy(seconds)
        self.idle_joules += energy
        return energy

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_joules(self) -> float:
        return self.tx_joules + self.rx_joules + self.idle_joules

    def as_dict(self) -> Dict[str, float]:
        return {
            "tx_joules": self.tx_joules,
            "rx_joules": self.rx_joules,
            "idle_joules": self.idle_joules,
            "total_joules": self.total_joules,
            "packets_sent": float(self.packets_sent),
            "packets_received": float(self.packets_received),
            "bytes_sent": float(self.bytes_sent),
            "bytes_received": float(self.bytes_received),
        }
