"""Packets exchanged over the simulated wireless channel.

A :class:`Packet` is the unit the MAC/radio layer deals in.  Its ``payload``
is opaque to the network substrate (the outlier-detection application puts an
:class:`~repro.core.messages.OutlierMessage` there, the centralized baseline
puts window dumps and outlier replies there, AODV puts control structures
there); only the declared ``size_bytes`` matters for airtime and energy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Packet", "PacketKind", "BROADCAST_ADDRESS"]

#: Link-layer broadcast address: every node in range accepts the packet.
BROADCAST_ADDRESS = -1

_packet_ids = itertools.count(1)


class PacketKind:
    """Coarse packet classification used for tracing and statistics."""

    APP_BROADCAST = "app-broadcast"  # distributed detector packets
    APP_DATA = "app-data"            # centralized window uploads / replies
    APP_ACK = "app-ack"              # end-to-end acknowledgements
    AODV_RREQ = "aodv-rreq"
    AODV_RREP = "aodv-rrep"
    AODV_RERR = "aodv-rerr"

    CONTROL_KINDS = (AODV_RREQ, AODV_RREP, AODV_RERR)


@dataclass
class Packet:
    """A single link-layer frame.

    Attributes
    ----------
    kind:
        One of the :class:`PacketKind` constants.
    source:
        Node that created the packet (end-to-end source).
    destination:
        End-to-end destination node, or :data:`BROADCAST_ADDRESS`.
    link_source / link_destination:
        Per-hop sender and intended receiver; for single-hop traffic they
        coincide with ``source``/``destination``.
    size_bytes:
        On-the-wire size used for airtime and energy accounting.
    payload:
        Application or routing payload (opaque to the substrate).
    hop_count:
        Number of link transmissions this packet has undergone so far.
    """

    kind: str
    source: int
    destination: int
    size_bytes: int
    payload: Any = None
    link_source: Optional[int] = None
    link_destination: Optional[int] = None
    hop_count: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.link_source is None:
            self.link_source = self.source
        if self.link_destination is None:
            self.link_destination = self.destination

    @property
    def is_broadcast(self) -> bool:
        """True when the current hop is a link-layer broadcast."""
        return self.link_destination == BROADCAST_ADDRESS

    def next_hop_copy(self, link_source: int, link_destination: int) -> "Packet":
        """A copy prepared for relaying over the next link."""
        return Packet(
            kind=self.kind,
            source=self.source,
            destination=self.destination,
            size_bytes=self.size_bytes,
            payload=self.payload,
            link_source=link_source,
            link_destination=link_destination,
            hop_count=self.hop_count + 1,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dest = "BCAST" if self.is_broadcast else str(self.link_destination)
        return (
            f"Packet(#{self.packet_id} {self.kind} {self.link_source}->{dest} "
            f"{self.size_bytes}B hop={self.hop_count})"
        )
