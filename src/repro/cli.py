"""Command-line interface.

``repro-wsn`` exposes the things a user most often wants without writing
code: running a single simulated scenario, regenerating one of the paper's
figures, driving a registered sweep family through the parallel
orchestrator with a persistent result store, and measuring the detector
hot path into machine-readable benchmark artifacts.

Examples
--------
Run one scenario and print its summary (``--json`` for machine-readable
output)::

    repro-wsn run --algorithm global --ranking nn --nodes 16 --rounds 15 -w 10

Run the same scenario under a different metric space, over 4-dimensional
(temperature, humidity, x, y) points::

    repro-wsn run --nodes 16 --rounds 15 -w 10 --extra-channels 1 \\
        --metric weighted-euclidean \\
        --metric-params '{"weights": [1.0, 0.5, 0.02, 0.02]}'

Run it under network dynamics -- node churn, duty-cycle sleep or
correlated burst loss (any subset of the FaultConfig fields)::

    repro-wsn run --nodes 16 --rounds 15 -w 10 \\
        --faults '{"crash_probability": 0.3, "recovery_probability": 1.0}'

Regenerate a figure (text table written to stdout)::

    repro-wsn figure 4

List the registered sweep families (sorted, with per-family scenario counts
at the selected profile), then run one across 4 worker processes with
results persisted (rerunning is free; an interrupted sweep resumes)::

    repro-wsn sweep --list
    repro-wsn sweep figure4 --workers 4 --store results/store --profile paper
    repro-wsn sweep metric-sensitivity --workers 4 --store results/store

Measure the per-event detector hot path and the end-to-end scenario
wall-clock, writing ``BENCH_hotpath.json`` / ``BENCH_e2e.json`` (the CI
perf-smoke job runs the ``--quick --check`` form and fails on a speedup
regression)::

    repro-wsn bench
    repro-wsn bench --quick --check --output-dir bench-artifacts

Run one scenario partitioned across 4 shard processes (byte-identical to
the single-process run), or measure the sharded-execution speedup into
``BENCH_shard.json``::

    repro-wsn run --algorithm semi-global --nodes 256 --rounds 6 --shards 4
    repro-wsn bench --shard --quick --check --shard-floor 1.2

Inject deterministic process faults (kill/hang real worker processes) and
watch the run recover to the byte-identical result -- chaos implies
checkpoint/restart supervision on the sharded path and retry/quarantine on
the sweep pool; ``bench --recovery`` measures what the fault tolerance
costs::

    repro-wsn run --nodes 64 --rounds 6 --shards 2 --chaos 'kill:shard1@epoch3'
    repro-wsn sweep figure4 --workers 4 --chaos 'kill:worker0@task2'
    repro-wsn bench --recovery --quick --check

Render the report site from a populated result store (store-only: nothing
is simulated at report time), and regression-diff the current benchmark
artifacts against the committed perf trajectory::

    repro-wsn report --store results/store --out site --format both
    repro-wsn report --store results/store --out site \\
        --diff results/BENCH_trajectory.json --bench-dir bench-artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from .core.config import Algorithm, DetectionConfig
from .core.errors import ReproError
from .core.metrics import registered_metrics
from .wsn.faults import FaultConfig
from .wsn.runner import run_scenario
from .wsn.scenario import ScenarioConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wsn",
        description="In-network outlier detection for WSNs (Branch et al. reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulated scenario")
    run.add_argument("--algorithm", choices=Algorithm.ALL, default=Algorithm.GLOBAL)
    run.add_argument("--ranking", choices=["nn", "knn"], default="nn")
    run.add_argument("--nodes", type=int, default=16)
    run.add_argument("--rounds", type=int, default=15)
    run.add_argument("-w", "--window", type=int, default=10)
    run.add_argument("-n", "--outliers", type=int, default=4)
    run.add_argument("-k", type=int, default=4)
    run.add_argument("--epsilon", type=int, default=1, help="hop diameter (semi-global)")
    run.add_argument("--loss", type=float, default=0.0, help="packet loss probability")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--metric",
        choices=registered_metrics(),
        default="euclidean",
        help="metric space the ranking scores in",
    )
    run.add_argument(
        "--metric-params",
        metavar="JSON",
        default=None,
        help="metric parameters as a JSON object, e.g. "
        "'{\"weights\": [1.0, 0.5, 0.02, 0.02]}' for weighted-euclidean "
        "or '{\"cov\": [[...], ...]}' for mahalanobis",
    )
    run.add_argument(
        "--extra-channels",
        type=int,
        default=0,
        help="additional correlated sensing channels beyond temperature "
        "(points become (3 + N)-dimensional)",
    )
    run.add_argument(
        "--faults",
        metavar="JSON",
        default=None,
        help="fault model as a JSON object of FaultConfig fields, e.g. "
        "'{\"crash_probability\": 0.3, \"recovery_probability\": 1.0}' "
        "(node churn), '{\"duty_cycle\": 0.75}' (sleep cycles) or "
        "'{\"burst_to_bad\": 0.02, \"burst_loss_bad\": 0.8}' "
        "(Gilbert-Elliott burst loss)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the deployment across this many worker processes "
        "over the deterministic message bus (results are byte-identical "
        "to the single-process run; requires --loss 0)",
    )
    run.add_argument(
        "--shard-mode",
        choices=["hop-interleaved", "band"],
        default="hop-interleaved",
        help="shard placement: hop-interleaved balances every hop level "
        "across shards (default), band cuts contiguous hop bands",
    )
    run.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection against the shard workers, "
        "e.g. 'kill:shard1@epoch3,hang:shard0@epoch2' (requires "
        "--shards; enables checkpoint/restart recovery; the result "
        "stays byte-identical to the fault-free run)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="with --shards, checkpoint every N bus epochs (default: 16 "
        "once recovery is active; recovery activates when this flag, "
        "--checkpoint-dir or --chaos is given)",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="directory for checkpoint snapshots (default: a per-run "
        "temporary directory)",
    )
    run.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --shards and recovery active, declare a shard worker "
        "hung after this long without a barrier message and restart it "
        "(default: 600; hang chaos requires a finite timeout)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="print the scenario and result summary as JSON instead of text",
    )
    run.add_argument(
        "--no-index",
        action="store_true",
        help="disable the incremental neighborhood index and run the "
        "full-recompute reference path (same results, slower; for "
        "cross-checking)",
    )
    run.add_argument(
        "--no-batch",
        action="store_true",
        help="disable batched event application and mutate the index one "
        "point at a time (same results, slower; for cross-checking the "
        "batch path)",
    )

    figure = sub.add_parser("figure", help="regenerate a figure of the paper")
    figure.add_argument(
        "number",
        choices=["4", "5", "6", "7", "8", "9", "accuracy", "example51", "imbalance"],
        help="figure number or named experiment",
    )

    bench = sub.add_parser(
        "bench",
        help="run the performance micro-benchmarks and emit BENCH_*.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI-friendly sweep: windows 64/256 and a scaled-down "
        "end-to-end grid (the window-256 regression floor still applies)",
    )
    bench.add_argument(
        "--windows",
        metavar="CSV",
        default=None,
        help="comma-separated window sizes (default: 64,256,1024; "
        "64,256 with --quick)",
    )
    bench.add_argument(
        "--events",
        type=int,
        default=None,
        help="measured events per window (default: per-window schedule)",
    )
    bench.add_argument(
        "--output-dir",
        metavar="DIR",
        default="results",
        help="directory for BENCH_hotpath.json / BENCH_e2e.json "
        "(default: results)",
    )
    bench.add_argument(
        "--skip-e2e",
        action="store_true",
        help="only measure the hotpath (skip the end-to-end scenarios)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when the indexed/rebuild speedup at "
        "--floor-window is below --floor",
    )
    bench.add_argument(
        "--floor",
        type=float,
        default=5.0,
        help="minimum acceptable speedup for --check (default: 5.0)",
    )
    bench.add_argument(
        "--floor-window",
        type=int,
        default=256,
        help="window size the --check floor is evaluated at (default: 256)",
    )
    bench.add_argument(
        "--batch-sizes",
        metavar="CSV",
        default=None,
        help="comma-separated events-per-tick sweep for the batched path "
        "(default: 1,4,16,64; sizes above a window are skipped there)",
    )
    bench.add_argument(
        "--batch-floor",
        type=float,
        default=None,
        help="with --check, also require the amortized batched speedup "
        "over the per-event indexed path at --floor-window to be at "
        "least this (default: no batch floor)",
    )
    bench.add_argument(
        "--baseline",
        metavar="JSON",
        default=None,
        help="previously committed BENCH_hotpath.json; on a --check "
        "failure a readable old-vs-new per-window report is printed "
        "instead of the bare verdict",
    )
    bench.add_argument(
        "--setup",
        action="store_true",
        help="run the scenario-setup benchmark (layout + grid-vs-brute "
        "topology build, emits BENCH_setup.json) instead of the "
        "hotpath/e2e suites",
    )
    bench.add_argument(
        "--setup-nodes",
        metavar="CSV",
        default=None,
        help="comma-separated node counts for --setup (default: "
        "1024,4096,16384; 512,2048 with --quick)",
    )
    bench.add_argument(
        "--setup-floor",
        type=float,
        default=4.0,
        help="with --setup --check, minimum acceptable grid-vs-brute "
        "build speedup (default: 4.0)",
    )
    bench.add_argument(
        "--setup-floor-nodes",
        type=int,
        default=2048,
        help="node count the --setup-floor is evaluated at "
        "(default: 2048)",
    )
    bench.add_argument(
        "--shard",
        action="store_true",
        help="run the sharded-execution benchmark (one semi-global "
        "scenario at each --shard-counts value, emits BENCH_shard.json) "
        "instead of the hotpath/e2e suites",
    )
    bench.add_argument(
        "--shard-counts",
        metavar="CSV",
        default=None,
        help="comma-separated shard counts for --shard (default: 1,2,4)",
    )
    bench.add_argument(
        "--shard-nodes",
        type=int,
        default=None,
        help="network size for --shard (default: 4096; 256 with --quick)",
    )
    bench.add_argument(
        "--shard-floor",
        type=float,
        default=2.5,
        help="with --shard --check, minimum acceptable speedup over the "
        "single-process run at --shard-floor-count shards "
        "(default: 2.5)",
    )
    bench.add_argument(
        "--shard-floor-count",
        type=int,
        default=4,
        help="shard count the --shard-floor is evaluated at (default: 4)",
    )
    bench.add_argument(
        "--recovery",
        action="store_true",
        help="run the recovery benchmark (checkpoint-write latency, "
        "checkpointing overhead vs. recovery-off, and restart-to-"
        "caught-up time after an injected kill; emits "
        "BENCH_recovery.json) instead of the hotpath/e2e suites",
    )
    bench.add_argument(
        "--recovery-nodes",
        type=int,
        default=None,
        help="network size for --recovery (default: 256; 64 with --quick)",
    )
    bench.add_argument(
        "--recovery-every",
        type=int,
        default=None,
        help="checkpoint interval in bus epochs for --recovery "
        "(default: 64)",
    )
    bench.add_argument(
        "--recovery-ceiling",
        type=float,
        default=1.5,
        help="with --recovery --check, maximum acceptable checkpointing "
        "wall-clock overhead ratio vs. the recovery-off run "
        "(default: 1.5)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a registered sweep family through the parallel orchestrator",
    )
    sweep.add_argument(
        "name",
        nargs="?",
        help="family name (see --list); required unless --list is given",
    )
    sweep.add_argument(
        "--list", action="store_true", help="list the registered sweep families"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for cache misses (1 = in-process; "
        "default: REPRO_WORKERS or 1)",
    )
    sweep.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent result-store directory (reruns become free; an "
        "interrupted sweep resumes from what already landed on disk; "
        "default: REPRO_RESULT_STORE or no store)",
    )
    sweep.add_argument(
        "--profile",
        choices=["tiny", "quick", "paper"],
        default=None,
        help="experiment profile (default: REPRO_BENCH_PROFILE or quick)",
    )
    sweep.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition each computed scenario across this many shard "
        "processes (parallelism *within* a scenario; mutually exclusive "
        "with pool parallelism, so misses run inline)",
    )
    sweep.add_argument(
        "--no-report",
        action="store_true",
        help="only resolve the scenario grid; skip rendering the tables",
    )
    sweep.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection against the sweep pool "
        "workers, e.g. 'kill:worker0@task2,hang:worker1' (hang "
        "detection needs --scenario-timeout); results are retried on a "
        "fresh worker and stay bit-identical",
    )
    sweep.add_argument(
        "--scenario-timeout",
        type=float,
        default=None,
        help="seconds one scenario may run in a pool worker before the "
        "worker is killed and the scenario retried (default: no limit)",
    )

    report = sub.add_parser(
        "report",
        help="render the markdown/HTML report site from a result store "
        "(store-only: nothing is simulated)",
    )
    report.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="result-store directory the pages are rendered from "
        "(default: REPRO_RESULT_STORE)",
    )
    report.add_argument(
        "--out",
        metavar="DIR",
        default="site",
        help="output directory for the site (default: site)",
    )
    report.add_argument(
        "--format",
        choices=["md", "html", "both"],
        default="md",
        help="page format(s) to render (default: md)",
    )
    report.add_argument(
        "--profile",
        choices=["tiny", "quick", "paper"],
        default=None,
        help="experiment profile the store was swept at "
        "(default: REPRO_BENCH_PROFILE or quick)",
    )
    report.add_argument(
        "--families",
        metavar="CSV",
        default=None,
        help="comma-separated sweep-family names "
        "(default: every registered family)",
    )
    report.add_argument(
        "--bench-dir",
        metavar="DIR",
        default="results",
        help="directory holding the BENCH_*.json artifacts the trajectory "
        "page and --diff read (default: results)",
    )
    report.add_argument(
        "--git-sha",
        metavar="SHA",
        default=None,
        help="commit to stamp the pages and trajectory entries with "
        "(default: GITHUB_SHA or `git rev-parse HEAD`)",
    )
    report.add_argument(
        "--diff",
        metavar="BASE",
        default=None,
        help="regression-diff the --bench-dir metrics against BASE (a "
        "BENCH_trajectory.json, whose newest entry is used, or a "
        "directory of committed BENCH_*.json artifacts); exits 1 when a "
        "gated metric regressed beyond its threshold",
    )
    report.add_argument(
        "--update-trajectory",
        metavar="FILE",
        default=None,
        help="append the --bench-dir metrics to FILE as a new trajectory "
        "entry stamped with the resolved commit (an entry with the same "
        "commit is replaced, so reruns are idempotent)",
    )
    return parser


def _command_run(args: argparse.Namespace) -> int:
    metric_params = ()
    if args.metric_params:
        try:
            decoded = json.loads(args.metric_params)
        except json.JSONDecodeError as error:
            print(f"error: --metric-params is not valid JSON: {error}", file=sys.stderr)
            return 2
        if not isinstance(decoded, dict):
            print("error: --metric-params must be a JSON object", file=sys.stderr)
            return 2
        metric_params = tuple(decoded.items())
    faults = FaultConfig()
    if args.faults:
        try:
            decoded = json.loads(args.faults)
        except json.JSONDecodeError as error:
            print(f"error: --faults is not valid JSON: {error}", file=sys.stderr)
            return 2
        if not isinstance(decoded, dict):
            print("error: --faults must be a JSON object", file=sys.stderr)
            return 2
        try:
            faults = FaultConfig(**decoded)
        except TypeError as error:
            print(f"error: --faults: {error}", file=sys.stderr)
            return 2
        except ReproError as error:
            print(f"error: --faults: {error}", file=sys.stderr)
            return 2
    try:
        detection = DetectionConfig(
            algorithm=args.algorithm,
            ranking=args.ranking,
            n_outliers=args.outliers,
            k=args.k,
            window_length=args.window,
            hop_diameter=args.epsilon,
            indexed=not args.no_index,
            batched=not args.no_batch,
            metric=args.metric,
            metric_params=metric_params,
        )
        scenario = ScenarioConfig(
            detection=detection,
            node_count=args.nodes,
            rounds=args.rounds,
            loss_probability=args.loss,
            extra_channels=args.extra_channels,
            faults=faults,
            seed=args.seed,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2

    chaos = None
    recovery = None
    wants_recovery = (
        args.chaos
        or args.checkpoint_every is not None
        or args.checkpoint_dir
        or args.heartbeat_timeout is not None
    )
    if wants_recovery and args.shards is None:
        print(
            "error: --chaos/--checkpoint-*/--heartbeat-timeout apply to "
            "sharded execution; add --shards",
            file=sys.stderr,
        )
        return 2
    if wants_recovery:
        from .recovery import ChaosPlan, RecoveryConfig

        try:
            if args.chaos:
                chaos = ChaosPlan.parse(args.chaos)
            recovery_overrides = {}
            if args.heartbeat_timeout is not None:
                recovery_overrides["heartbeat_timeout"] = args.heartbeat_timeout
            recovery = RecoveryConfig(
                checkpoint_every=(
                    args.checkpoint_every
                    if args.checkpoint_every is not None
                    else 16
                ),
                directory=args.checkpoint_dir,
                **recovery_overrides,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    recovery_stats: dict = {}
    try:
        result = run_scenario(
            scenario,
            shards=args.shards,
            shard_mode=args.shard_mode,
            recovery=recovery,
            chaos=chaos,
            recovery_stats=recovery_stats if wants_recovery else None,
        )
    except ReproError as error:
        # Configuration problems only detectable mid-run (e.g. a metric
        # parameterisation that does not fit a custom dataset's dimension)
        # still exit cleanly instead of dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        payload = {
            "scenario": scenario.to_json_dict(),
            "summary": result.summary(),
        }
        if wants_recovery:
            payload["recovery"] = recovery_stats
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"scenario: {scenario.label()}  nodes={args.nodes} rounds={args.rounds} w={args.window}")
    for key, value in result.summary().items():
        print(f"  {key:24s} {value:.6g}")
    if wants_recovery:
        checkpoints = recovery_stats.get("checkpoints", [])
        restarts = recovery_stats.get("restarts", [])
        print(
            f"recovery: {recovery_stats.get('epochs', 0)} epochs, "
            f"{len(checkpoints)} checkpoint(s), {len(restarts)} restart(s)"
        )
        for fired in recovery_stats.get("chaos", []):
            print(f"  chaos fired: {fired}")
        for restart in restarts:
            print(
                f"  shard {restart['shard']} restarted from epoch "
                f"{restart['resumed_from_epoch']} "
                f"(replayed {restart['replayed_epochs']} epoch(s), "
                f"downtime {restart['downtime_seconds']:.3f}s): "
                f"{restart['reason']}"
            )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    # Imported lazily so `repro-wsn run` stays snappy.
    from . import experiments

    number = args.number
    if number == "4":
        outputs = experiments.run_figure4()
    elif number == "5":
        outputs = experiments.run_figure5()
    elif number == "6":
        outputs = experiments.run_figure6()
    elif number == "7":
        outputs = experiments.run_figure7()
    elif number == "8":
        outputs = experiments.run_figure8()
    elif number == "9":
        outputs = experiments.run_figure9()
    elif number == "accuracy":
        outputs = (experiments.run_accuracy_experiment(),)
    elif number == "example51":
        outputs = (experiments.run_example51(),)
    else:
        outputs = (experiments.run_imbalance_experiment(),)
    for figure in outputs:
        print(figure.report())
        print()
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    # Imported lazily so the other subcommands stay snappy.
    from .bench import (
        DEFAULT_BATCH_SIZES,
        DEFAULT_WINDOWS,
        QUICK_WINDOWS,
        check_batched_floor,
        check_setup_floor,
        check_shard_floor,
        check_speedup_floor,
        render_hotpath_table,
        render_regression_report,
        render_setup_table,
        render_shard_table,
        run_e2e_bench,
        run_hotpath_bench,
        run_setup_bench,
        run_shard_bench,
        write_bench_artifacts,
    )

    if args.recovery:
        from .bench import (
            check_recovery_ceiling,
            render_recovery_table,
            run_recovery_bench,
        )

        if args.recovery_every is not None and args.recovery_every < 1:
            print("error: --recovery-every must be >= 1", file=sys.stderr)
            return 2
        recovery = run_recovery_bench(
            nodes=args.recovery_nodes,
            checkpoint_every=args.recovery_every,
            quick=args.quick,
        )
        print(render_recovery_table(recovery))
        written = write_bench_artifacts(args.output_dir, recovery=recovery)
        for path in written:
            print(f"wrote {path}")
        if args.check:
            ok, message = check_recovery_ceiling(recovery, args.recovery_ceiling)
            print(message)
            if not ok:
                return 1
        return 0

    if args.shard:
        from .bench import DEFAULT_SHARD_COUNTS

        if args.shard_counts:
            try:
                shard_counts = tuple(
                    int(token)
                    for token in args.shard_counts.split(",")
                    if token.strip()
                )
            except ValueError:
                print(f"error: --shard-counts must be a CSV of integers, got "
                      f"{args.shard_counts!r}", file=sys.stderr)
                return 2
            if not shard_counts or any(s < 1 for s in shard_counts):
                print("error: --shard-counts needs at least one count >= 1",
                      file=sys.stderr)
                return 2
        else:
            shard_counts = DEFAULT_SHARD_COUNTS
        shard = run_shard_bench(
            shard_counts=shard_counts, nodes=args.shard_nodes, quick=args.quick
        )
        print(render_shard_table(shard))
        written = write_bench_artifacts(args.output_dir, shard=shard)
        for path in written:
            print(f"wrote {path}")
        if args.check:
            ok, message = check_shard_floor(
                shard, args.shard_floor, args.shard_floor_count
            )
            print(message)
            if not ok:
                return 1
        return 0

    if args.setup:
        if args.setup_nodes:
            try:
                setup_nodes = tuple(
                    int(token)
                    for token in args.setup_nodes.split(",")
                    if token.strip()
                )
            except ValueError:
                print(f"error: --setup-nodes must be a CSV of integers, got "
                      f"{args.setup_nodes!r}", file=sys.stderr)
                return 2
            if not setup_nodes or any(n < 2 for n in setup_nodes):
                print("error: --setup-nodes needs at least one count >= 2",
                      file=sys.stderr)
                return 2
        else:
            setup_nodes = None
        setup = run_setup_bench(node_counts=setup_nodes, quick=args.quick)
        print(render_setup_table(setup))
        written = write_bench_artifacts(args.output_dir, setup=setup)
        for path in written:
            print(f"wrote {path}")
        if args.check:
            ok, message = check_setup_floor(
                setup, args.setup_floor, args.setup_floor_nodes
            )
            print(message)
            if not ok:
                return 1
        return 0

    if args.windows:
        try:
            windows = tuple(
                int(token) for token in args.windows.split(",") if token.strip()
            )
        except ValueError:
            print(f"error: --windows must be a CSV of integers, got "
                  f"{args.windows!r}", file=sys.stderr)
            return 2
        if not windows or any(w < 8 for w in windows):
            print("error: --windows needs at least one size >= 8", file=sys.stderr)
            return 2
    else:
        windows = QUICK_WINDOWS if args.quick else DEFAULT_WINDOWS

    if args.batch_sizes:
        try:
            batch_sizes = tuple(
                int(token) for token in args.batch_sizes.split(",") if token.strip()
            )
        except ValueError:
            print(f"error: --batch-sizes must be a CSV of integers, got "
                  f"{args.batch_sizes!r}", file=sys.stderr)
            return 2
        if not batch_sizes or any(b < 1 for b in batch_sizes):
            print("error: --batch-sizes needs at least one size >= 1",
                  file=sys.stderr)
            return 2
    else:
        batch_sizes = DEFAULT_BATCH_SIZES

    hotpath = run_hotpath_bench(
        windows, events=args.events, quick=args.quick, batch_sizes=batch_sizes
    )
    print(render_hotpath_table(hotpath))
    e2e = None
    if not args.skip_e2e:
        e2e = run_e2e_bench(quick=args.quick)
        print("End-to-end scenario wall-clock")
        print()
        for row in e2e["scenarios"]:
            print(
                f"  {row['label']:40s} {row['wallclock_seconds']:8.2f} s  "
                f"accuracy={row['accuracy_exact']:.3f}"
            )
        print()
    written = write_bench_artifacts(args.output_dir, hotpath=hotpath, e2e=e2e)
    for path in written:
        print(f"wrote {path}")

    if args.check:
        ok, message = check_speedup_floor(hotpath, args.floor, args.floor_window)
        print(message)
        if ok and args.batch_floor is not None:
            ok, message = check_batched_floor(
                hotpath, args.batch_floor, args.floor_window
            )
            print(message)
        if not ok:
            if args.baseline:
                try:
                    baseline = json.loads(Path(args.baseline).read_text())
                except (OSError, ValueError) as error:
                    print(f"(baseline {args.baseline!r} unreadable: {error})")
                else:
                    print()
                    print(render_regression_report(baseline, hotpath))
            return 1
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    # Importing the experiments package registers every sweep family.
    from . import experiments
    from .core.errors import ExperimentError
    from .orchestrator import (
        ResultStore,
        all_families,
        default_store,
        default_workers,
        get_family,
        run_scenarios,
    )

    try:
        profile = (
            experiments.profile_by_name(args.profile)
            if args.profile
            else experiments.active_profile()
        )
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.list:
        # Families print in sorted name order with the size of each family's
        # scenario grid at the selected profile, so a glance shows both what
        # exists and what running it would cost.
        for family in all_families():
            count = len(list(family.build(profile)))
            print(
                f"{family.name:20s} {count:4d} scenario(s)  {family.description}"
            )
        return 0
    if args.name is None:
        print("error: a sweep name is required (or --list)", file=sys.stderr)
        return 2

    try:
        family = get_family(args.name)
        # Flags win; the REPRO_* environment variables (honored by every
        # other entry point) are the fallback.
        workers = args.workers if args.workers is not None else default_workers()
        if workers < 1:
            raise ExperimentError(f"--workers must be >= 1, got {workers}")
        store = ResultStore(args.store) if args.store else default_store()
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2

    chaos = None
    recovery = None
    if args.chaos or args.scenario_timeout is not None:
        from .recovery import ChaosPlan, RecoveryConfig

        try:
            if args.chaos:
                chaos = ChaosPlan.parse(args.chaos)
            recovery = RecoveryConfig(scenario_timeout=args.scenario_timeout)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    scenarios = list(family.build(profile))

    counts = {"memory": 0, "store": 0, "computed": 0}

    def progress(event: str, scenario: ScenarioConfig, done: int, total: int) -> None:
        counts[event] += 1
        print(f"[{done}/{total}] {event:8s} {scenario.label()}  seed={scenario.seed}")

    started = time.perf_counter()
    try:
        run_scenarios(
            scenarios,
            workers=workers,
            store=store,
            progress=progress,
            shards=args.shards,
            recovery=recovery,
            chaos=chaos,
        )
    except KeyboardInterrupt:
        # Workers are torn down by the supervisor / pool context managers;
        # everything finished so far is already written through to the
        # store, so an interrupted sweep is a *paused* sweep, not a lost
        # one -- say so instead of dumping a traceback.
        finished = sum(counts.values())
        print()
        print(
            f"interrupted: {finished}/{len(scenarios)} scenario(s) resolved "
            f"({counts['computed']} computed and flushed to "
            f"{store.root if store is not None else 'the memory tier only'})."
        )
        if store is not None:
            print("rerun the same sweep command to resume from the store.")
        else:
            print("pass --store DIR to make interrupted sweeps resumable.")
        return 130
    except ExperimentError as error:
        # Poison quarantine: completed scenarios are cached, the poisoned
        # ones are recorded in the store -- report and fail cleanly.
        print(f"error: {error}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    unique = sum(counts.values())
    print(
        f"sweep {family.name!r} ({profile.name} profile): "
        f"{len(scenarios)} scenario(s), {unique} unique, "
        f"{counts['computed']} simulated, "
        f"{counts['memory']} from memory, {counts['store']} from store, "
        f"workers={workers}, {elapsed:.2f}s"
    )
    if store is not None:
        print(f"store: {store.root} ({len(store)} entries)")

    if family.report is not None and not args.no_report:
        # The report phase resolves scenarios through the experiments
        # layer, which reads the REPRO_* environment variables -- export
        # the resolved settings for its duration so both phases share the
        # same store and worker pool (also covers any report that touches
        # a scenario outside the prefetched grid).
        saved = {
            name: os.environ.get(name)
            for name in ("REPRO_RESULT_STORE", "REPRO_WORKERS")
        }
        if store is not None:
            os.environ["REPRO_RESULT_STORE"] = str(store.root)
        os.environ["REPRO_WORKERS"] = str(workers)
        try:
            for figure in family.report(profile):
                print()
                print(figure.report())
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
    return 0


def _command_report(args: argparse.Namespace) -> int:
    # Importing the experiments package registers every sweep family.
    from . import experiments
    from .core.errors import ExperimentError
    from .orchestrator import ResultStore, all_families, default_store, get_family
    from .report import (
        append_entry,
        baseline_metrics,
        build_site,
        diff_metrics,
        extract_metrics,
        load_bench_artifacts,
        new_entry,
        resolve_git_sha,
    )

    try:
        profile = (
            experiments.profile_by_name(args.profile)
            if args.profile
            else experiments.active_profile()
        )
        store = ResultStore(args.store) if args.store else default_store()
        # Trajectory operations need only the bench artifacts, so a diff
        # or append may run store-less (CI's perf-smoke job does).
        bench_only = store is None and bool(
            args.diff or args.update_trajectory
        )
        if store is None and not bench_only:
            raise ExperimentError(
                "a result store is required: pass --store DIR or set "
                "REPRO_RESULT_STORE"
            )
        if args.families:
            families = [
                get_family(name.strip())
                for name in args.families.split(",")
                if name.strip()
            ]
            if not families:
                raise ExperimentError("--families named no families")
        else:
            families = list(all_families())
        bench_dir = Path(args.bench_dir)
        bench = load_bench_artifacts(bench_dir) if bench_dir.is_dir() else {}
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # The trajectory artifact lives next to the measurements but is the
    # history, not a measurement -- split it out for the trajectory page.
    trajectory = bench.pop("trajectory", None)
    git_sha = resolve_git_sha(args.git_sha)
    formats = ("md", "html") if args.format == "both" else (args.format,)

    if bench_only:
        print(
            f"report: no result store -- skipping the site build "
            f"(bench-only; commit {git_sha})"
        )
    else:
        try:
            build = build_site(
                store,
                profile,
                families,
                args.out,
                formats=formats,
                git_sha=git_sha,
                bench=bench or None,
                trajectory=trajectory,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        health = build.health
        print(
            f"report: {len(build.pages)} page(s) and "
            f"{len(build.data_files)} data file(s) under {build.out_dir} "
            f"({', '.join(formats)}; commit {git_sha})"
        )
        print(
            f"store: {health.entries} entries, {health.corrupt} corrupt, "
            f"{health.poison} poisoned"
        )
        for status in build.statuses:
            print(
                f"  {status.name:20s} {status.present:4d}/{status.total:<4d} "
                f"{status.status}"
            )
        if build.skipped:
            print(
                f"skipped (incomplete in store): {', '.join(build.skipped)}",
                file=sys.stderr,
            )

    try:
        if args.update_trajectory:
            metrics = extract_metrics(bench)
            payload = append_entry(
                args.update_trajectory, new_entry(metrics, git_sha)
            )
            print(
                f"trajectory: {args.update_trajectory} now holds "
                f"{len(payload['entries'])} entr(ies); newest {git_sha} "
                f"with {len(metrics)} metric(s)"
            )
        if args.diff:
            label, base = baseline_metrics(args.diff)
            diff = diff_metrics(base, extract_metrics(bench), base_label=label)
            print()
            print(diff.render())
            if not diff.ok:
                return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-wsn`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "report":
        return _command_report(args)
    return _command_figure(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
