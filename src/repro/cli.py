"""Command-line interface.

``repro-wsn`` exposes the two things a user most often wants without writing
code: running a single simulated scenario and regenerating one of the paper's
figures.

Examples
--------
Run one scenario and print its summary::

    repro-wsn run --algorithm global --ranking nn --nodes 16 --rounds 15 -w 10

Regenerate a figure (text table written to stdout)::

    repro-wsn figure 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.config import Algorithm, DetectionConfig
from .wsn.runner import run_scenario
from .wsn.scenario import ScenarioConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wsn",
        description="In-network outlier detection for WSNs (Branch et al. reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulated scenario")
    run.add_argument("--algorithm", choices=Algorithm.ALL, default=Algorithm.GLOBAL)
    run.add_argument("--ranking", choices=["nn", "knn"], default="nn")
    run.add_argument("--nodes", type=int, default=16)
    run.add_argument("--rounds", type=int, default=15)
    run.add_argument("-w", "--window", type=int, default=10)
    run.add_argument("-n", "--outliers", type=int, default=4)
    run.add_argument("-k", type=int, default=4)
    run.add_argument("--epsilon", type=int, default=1, help="hop diameter (semi-global)")
    run.add_argument("--loss", type=float, default=0.0, help="packet loss probability")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--no-index",
        action="store_true",
        help="disable the incremental neighborhood index and run the "
        "full-recompute reference path (same results, slower; for "
        "cross-checking)",
    )

    figure = sub.add_parser("figure", help="regenerate a figure of the paper")
    figure.add_argument(
        "number",
        choices=["4", "5", "6", "7", "8", "9", "accuracy", "example51", "imbalance"],
        help="figure number or named experiment",
    )
    return parser


def _command_run(args: argparse.Namespace) -> int:
    detection = DetectionConfig(
        algorithm=args.algorithm,
        ranking=args.ranking,
        n_outliers=args.outliers,
        k=args.k,
        window_length=args.window,
        hop_diameter=args.epsilon,
        indexed=not args.no_index,
    )
    scenario = ScenarioConfig(
        detection=detection,
        node_count=args.nodes,
        rounds=args.rounds,
        loss_probability=args.loss,
        seed=args.seed,
    )
    result = run_scenario(scenario)
    print(f"scenario: {scenario.label()}  nodes={args.nodes} rounds={args.rounds} w={args.window}")
    for key, value in result.summary().items():
        print(f"  {key:24s} {value:.6g}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    # Imported lazily so `repro-wsn run` stays snappy.
    from . import experiments

    number = args.number
    if number == "4":
        outputs = experiments.run_figure4()
    elif number == "5":
        outputs = experiments.run_figure5()
    elif number == "6":
        outputs = experiments.run_figure6()
    elif number == "7":
        outputs = experiments.run_figure7()
    elif number == "8":
        outputs = experiments.run_figure8()
    elif number == "9":
        outputs = experiments.run_figure9()
    elif number == "accuracy":
        outputs = (experiments.run_accuracy_experiment(),)
    elif number == "example51":
        outputs = (experiments.run_example51(),)
    else:
        outputs = (experiments.run_imbalance_experiment(),)
    for figure in outputs:
        print(figure.report())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-wsn`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    return _command_figure(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
