"""Fault-and-churn scenario subsystem.

The paper's headline robustness claim is that in-network outlier detection
stays correct under *network dynamics*: nodes joining and dying, links
degrading, sensors going bad.  This module turns those dynamics into a
pluggable, deterministic scenario axis:

* :class:`FaultConfig` -- the user-facing knob set, a frozen dataclass that
  lives on :class:`~repro.wsn.scenario.ScenarioConfig` (so it is part of the
  JSON round-trip and of the result store's cache key);
* :class:`FaultPlan` -- the *concrete* per-node schedule (crash/recovery
  intervals, duty-cycle sleep intervals, per-node sensor faults) derived
  deterministically from the scenario seed via named
  :class:`~repro.simulator.rng.RandomStreams`;
* :class:`FaultRuntime` -- the simulation-time driver that turns the plan
  into :class:`~repro.simulator.events.Event` objects (fired at
  :attr:`~repro.simulator.events.EventPriority.FAULT` priority so state
  flips precede same-instant traffic) and collects per-node availability
  counters for the result's ``fault_stats``.

Determinism contract
--------------------
Every schedule is a pure function of ``(FaultConfig, ScenarioConfig)``:
each node draws from its own named stream (``fault-crash-<id>``,
``fault-duty-<id>``), so adding a fault type or a node never perturbs the
draws of another, and the *default* configuration is the identity -- no
streams are consumed, no events are scheduled, and the simulation transcript
is byte-identical to a pre-fault-subsystem run.

The four fault families:

* **crash/recovery** -- a node dies at a random time and (optionally)
  reboots after a downtime drawn in rounds; a reboot loses RAM, so the
  node's window and detector holdings are cleared (neighbors still hold its
  stale points until window expiry -- exactly the churn the paper argues the
  protocol absorbs);
* **duty-cycle sleep** -- each node periodically turns its radio off for
  ``1 - duty_cycle`` of every ``duty_period_rounds`` window, phase-shifted
  per node (state is retained across sleep);
* **Gilbert-Elliott burst loss** -- a two-state good/bad Markov chain per
  directed link replaces the i.i.d. Bernoulli loss model (see
  :class:`~repro.network.channel.GilbertElliottParams`), modelling the
  correlated fades real radios exhibit;
* **sensor stuck-at / drift** -- a whole sensor goes bad from a random
  epoch onward; injected at the *dataset* layer (see
  :func:`~repro.datasets.outlier_injection.apply_node_faults`) so every
  algorithm and the offline references see the same corrupted stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..network.channel import GilbertElliottParams
from ..simulator.engine import Simulator
from ..simulator.events import EventPriority
from ..simulator.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.node import SimNode
    from ..network.topology import Topology
    from .scenario import ScenarioConfig

__all__ = ["FaultConfig", "FaultPlan", "FaultRuntime", "NodeFaultSchedule"]

#: Interval kinds of a :class:`NodeFaultSchedule` entry.
CRASH = "crash"
SLEEP = "sleep"

#: Crash instants are drawn uniformly inside this fraction of the run, so a
#: crash neither pre-empts the first windows nor lands after the last sample.
_CRASH_WINDOW = (0.1, 0.85)


@dataclass(frozen=True)
class FaultConfig:
    """Fault-model knobs of one scenario.  All defaults mean "no faults".

    Attributes
    ----------
    crash_probability:
        Per-node probability (sink exempt) of crashing once during the run.
    recovery_probability:
        Probability that a crashed node reboots; a reboot clears the node's
        window and detector state (RAM loss).
    min_downtime_rounds / max_downtime_rounds:
        Downtime of a recovering node, drawn uniformly in rounds.
    duty_cycle:
        Awake fraction of every duty period (``1.0`` disables sleeping).
    duty_period_rounds:
        Length of one sleep/wake cycle in sampling rounds.
    burst_to_bad / burst_to_good:
        Gilbert-Elliott state-transition probabilities per delivery attempt;
        ``burst_to_bad > 0`` switches the channel from i.i.d. Bernoulli loss
        to the two-state burst model.
    burst_loss_good / burst_loss_bad:
        Loss probability in the good / bad channel state.
    sensor_stuck_probability / sensor_drift_probability:
        Per-node probability of the *sensor* (not the radio) going bad from
        a random epoch onward: stuck-at a constant, or drifting away from
        the truth.  Applied at the dataset layer, so the offline reference
        answers see the same corrupted points the network does.
    """

    crash_probability: float = 0.0
    recovery_probability: float = 0.0
    min_downtime_rounds: int = 1
    max_downtime_rounds: int = 4
    duty_cycle: float = 1.0
    duty_period_rounds: int = 4
    burst_to_bad: float = 0.0
    burst_to_good: float = 0.25
    burst_loss_good: float = 0.0
    burst_loss_bad: float = 0.8
    sensor_stuck_probability: float = 0.0
    sensor_drift_probability: float = 0.0

    def __post_init__(self) -> None:
        probabilities = (
            "crash_probability",
            "recovery_probability",
            "burst_to_bad",
            "burst_loss_good",
            "sensor_stuck_probability",
            "sensor_drift_probability",
        )
        for name in probabilities:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 < self.burst_to_good <= 1.0:
            # A bad state that can never recover would make every link
            # eventually permanently dead -- almost certainly a typo.
            raise ConfigurationError(
                f"burst_to_good must be in (0, 1], got {self.burst_to_good}"
            )
        if not 0.0 <= self.burst_loss_bad <= 1.0:
            raise ConfigurationError(
                f"burst_loss_bad must be in [0, 1], got {self.burst_loss_bad}"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty_cycle must be in (0, 1], got {self.duty_cycle}"
            )
        if self.duty_period_rounds < 1:
            raise ConfigurationError(
                f"duty_period_rounds must be >= 1, got {self.duty_period_rounds}"
            )
        if self.min_downtime_rounds < 1:
            raise ConfigurationError(
                f"min_downtime_rounds must be >= 1, got {self.min_downtime_rounds}"
            )
        if self.max_downtime_rounds < self.min_downtime_rounds:
            raise ConfigurationError(
                "max_downtime_rounds must be >= min_downtime_rounds, got "
                f"{self.max_downtime_rounds} < {self.min_downtime_rounds}"
            )
        if self.sensor_stuck_probability + self.sensor_drift_probability > 1.0:
            raise ConfigurationError(
                "sensor_stuck_probability + sensor_drift_probability must "
                "not exceed 1"
            )

    # ------------------------------------------------------------------
    # Which subsystems does this configuration engage?
    # ------------------------------------------------------------------
    @property
    def churn_enabled(self) -> bool:
        """Does any node ever turn its radio off (crash or sleep)?"""
        return self.crash_probability > 0.0 or self.duty_cycle < 1.0

    @property
    def burst_enabled(self) -> bool:
        """Does the channel run the Gilbert-Elliott burst model?"""
        return self.burst_to_bad > 0.0

    @property
    def sensor_enabled(self) -> bool:
        """Does any sensor go permanently bad at the dataset layer?"""
        return (
            self.sensor_stuck_probability > 0.0
            or self.sensor_drift_probability > 0.0
        )

    @property
    def enabled(self) -> bool:
        return self.churn_enabled or self.burst_enabled or self.sensor_enabled

    def burst_params(self) -> Optional[GilbertElliottParams]:
        """The channel-layer burst model, or ``None`` when disabled."""
        if not self.burst_enabled:
            return None
        return GilbertElliottParams(
            p_good_to_bad=self.burst_to_bad,
            p_bad_to_good=self.burst_to_good,
            loss_good=self.burst_loss_good,
            loss_bad=self.burst_loss_bad,
        )


@dataclass(frozen=True)
class NodeFaultSchedule:
    """Concrete radio-off intervals of one node.

    ``intervals`` holds ``(start, end, kind)`` triples in simulated seconds;
    ``end`` may be ``inf`` for a crash without recovery.  Intervals of
    different kinds may overlap (a crash during a sleep phase); the runtime
    counts reasons, so a node is up exactly when no interval covers ``now``.
    """

    node_id: int
    intervals: Tuple[Tuple[float, float, str], ...] = ()

    def downtime_within(self, horizon: float) -> float:
        """Total seconds of the union of intervals clipped to ``[0, horizon]``."""
        clipped = sorted(
            (max(0.0, start), min(horizon, end))
            for start, end, _kind in self.intervals
            if start < horizon and end > start
        )
        total = 0.0
        current_start: Optional[float] = None
        current_end = 0.0
        for start, end in clipped:
            if current_start is None or start > current_end:
                if current_start is not None:
                    total += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_start is not None:
            total += current_end - current_start
        return total


class FaultPlan:
    """Deterministic fault schedules for every node of one scenario."""

    def __init__(
        self,
        schedules: Dict[int, NodeFaultSchedule],
        duration: float,
    ) -> None:
        self.schedules = schedules
        self.duration = duration

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(cls, scenario: "ScenarioConfig") -> "FaultPlan":
        """Build the plan implied by ``scenario`` (pure function of it).

        The sink is exempt from crash and sleep so the centralized baseline
        never loses its collection point and the topology keeps its anchor;
        every other node draws from its own named streams, so the plan of
        one node never depends on how many faults another drew.
        """
        faults = scenario.faults
        duration = scenario.duration
        period = scenario.sampling_period
        family = RandomStreams(scenario.seed)
        schedules: Dict[int, NodeFaultSchedule] = {}
        for node_id in range(scenario.node_count):
            if node_id == scenario.sink_id:
                continue
            intervals: List[Tuple[float, float, str]] = []
            intervals.extend(
                cls._crash_intervals(faults, family, node_id, duration, period)
            )
            intervals.extend(
                cls._sleep_intervals(faults, family, node_id, duration, period)
            )
            if intervals:
                schedules[node_id] = NodeFaultSchedule(
                    node_id=node_id, intervals=tuple(sorted(intervals))
                )
        return cls(schedules, duration)

    @staticmethod
    def _crash_intervals(
        faults: FaultConfig,
        family: RandomStreams,
        node_id: int,
        duration: float,
        period: float,
    ) -> List[Tuple[float, float, str]]:
        if faults.crash_probability <= 0.0:
            return []
        stream = family.stream(f"fault-crash-{node_id}")
        if stream.random() >= faults.crash_probability:
            return []
        low, high = _CRASH_WINDOW
        down = stream.uniform(low * duration, high * duration)
        up = math.inf
        if (
            faults.recovery_probability > 0.0
            and stream.random() < faults.recovery_probability
        ):
            rounds_down = stream.randint(
                faults.min_downtime_rounds, faults.max_downtime_rounds
            )
            up = down + rounds_down * period
        return [(down, up, CRASH)]

    @staticmethod
    def _sleep_intervals(
        faults: FaultConfig,
        family: RandomStreams,
        node_id: int,
        duration: float,
        period: float,
    ) -> List[Tuple[float, float, str]]:
        if faults.duty_cycle >= 1.0:
            return []
        cycle = faults.duty_period_rounds * period
        awake = faults.duty_cycle * cycle
        stream = family.stream(f"fault-duty-{node_id}")
        phase = stream.uniform(0.0, cycle)
        intervals: List[Tuple[float, float, str]] = []
        # Start one cycle early so a sleep window wrapping t=0 is covered.
        start = phase - cycle + awake
        while start < duration:
            end = start + (cycle - awake)
            if end > 0.0:
                intervals.append((max(0.0, start), min(end, duration), SLEEP))
            start += cycle
        return intervals

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def availability(self, node_id: int) -> float:
        """Planned up-time fraction of ``node_id`` over the run."""
        schedule = self.schedules.get(node_id)
        if schedule is None or self.duration <= 0.0:
            return 1.0
        return 1.0 - schedule.downtime_within(self.duration) / self.duration

    @property
    def any_downtime(self) -> bool:
        return any(s.intervals for s in self.schedules.values())


class FaultRuntime:
    """Drives a :class:`FaultPlan` on a live deployment.

    Power transitions are ordinary simulator events at
    :attr:`~repro.simulator.events.EventPriority.FAULT` priority, so at any
    shared instant the availability flip happens before samples and packet
    deliveries.  A node can be down for several reasons at once (crash
    during a sleep window); a per-node depth counter keeps the radio off
    until the last reason clears, and only a *crash* recovery clears
    application state.

    Every transition is also announced to the affected live neighborhoods
    as the protocol's event (iv) -- idealised link-layer failure detection:
    when node ``i`` goes down, every up neighbor ``j`` processes
    ``neighborhood_changed(Γ_j minus the down nodes)``; when ``i`` comes
    back, both ``i`` and its up neighbors re-learn the live links.  This is
    the repair mechanism the paper prescribes for churn -- dropping a link
    resets the shared-knowledge bookkeeping on both sides, so re-adding it
    re-negotiates exactly the points the other side needs.
    """

    def __init__(
        self,
        plan: FaultPlan,
        nodes: Dict[int, "SimNode"],
        apps: Dict[int, object],
        adjacency: Optional[Dict[int, set]] = None,
        topology: Optional["Topology"] = None,
    ) -> None:
        self.plan = plan
        self._nodes = nodes
        self._apps = apps
        # Preferred: query neighborhoods lazily through the topology's
        # spatial index / CSR adjacency, so a crash or recovery touches only
        # the affected node's own neighborhood (O(degree)), never a
        # whole-network adjacency materialisation.  The ``adjacency`` dict
        # remains accepted for callers that assemble runtimes by hand.
        self._topology = topology
        self._adjacency = adjacency or {}
        self._down_depth: Dict[int, int] = {node_id: 0 for node_id in nodes}
        self.samples_taken: Dict[int, int] = {node_id: 0 for node_id in nodes}
        self.samples_skipped: Dict[int, int] = {node_id: 0 for node_id in nodes}
        #: ``(origin, epoch)`` of every sample a down node missed.  These
        #: points never entered the network, so the reference answer is
        #: computed over the dataset *minus* this set.
        self.skipped_keys: set = set()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, simulator: Simulator) -> None:
        """Queue every power transition of the plan on ``simulator``.

        Transitions at or beyond the sampling horizon are not scheduled:
        they could not influence any sample or delivery, but a recovery
        event *after* the horizon would advance the simulated clock and
        skew the idle-energy accounting shared with fault-free runs.
        """
        horizon = self.plan.duration
        for node_id, schedule in sorted(self.plan.schedules.items()):
            for start, end, kind in schedule.intervals:
                if start >= horizon:
                    continue
                simulator.schedule_at(
                    max(0.0, start),
                    self.power_down,
                    node_id,
                    priority=EventPriority.FAULT,
                    name=f"fault-down-{kind}-n{node_id}",
                )
                if end < horizon:
                    simulator.schedule_at(
                        end,
                        self.power_up,
                        node_id,
                        kind,
                        priority=EventPriority.FAULT,
                        name=f"fault-up-{kind}-n{node_id}",
                    )

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def power_down(self, node_id: int) -> None:
        self._down_depth[node_id] += 1
        if self._down_depth[node_id] == 1:
            self._nodes[node_id].power_down()
            self._notify_neighbors(node_id)

    def power_up(self, node_id: int, kind: str) -> None:
        self._down_depth[node_id] -= 1
        if kind == CRASH:
            # A reboot loses RAM: clear the window, the detector holdings
            # and the per-link shared-knowledge bookkeeping.  This happens
            # when the *crash* interval ends, even if a sleep interval
            # still keeps the radio down -- the mote rebooted either way.
            reset: Optional[Callable[[], None]] = getattr(
                self._apps.get(node_id), "crash_reset", None
            )
            if reset is not None:
                reset()
        if self._down_depth[node_id] == 0:
            self._nodes[node_id].power_up()
            # The woken/rebooted node re-learns its live neighborhood (it
            # missed any transitions while down), then its neighbors
            # re-learn theirs -- the link-restored halves of event (iv).
            self._deliver_neighborhood(node_id)
            self._notify_neighbors(node_id)

    def _neighbors(self, node_id: int) -> Tuple[int, ...]:
        """``node_id``'s neighbors in ascending id order.

        With a topology attached this is one cached-tuple lookup
        (O(degree)); the legacy adjacency dict is sorted on demand.
        """
        if self._topology is not None:
            return self._topology.neighbors_sorted(node_id)
        return tuple(sorted(self._adjacency.get(node_id, ())))

    def _is_up(self, node_id: int) -> bool:
        """Is ``node_id``'s radio on right now?

        The single hook the sharded runtime overrides: there, a node may be
        remote, in which case its availability is read from the mirrored
        up/down map instead of a live :class:`SimNode`.
        """
        return self._nodes[node_id].up

    def _notify_neighbors(self, node_id: int) -> None:
        for neighbor_id in self._neighbors(node_id):
            if self._is_up(neighbor_id):
                self._deliver_neighborhood(neighbor_id)

    def _deliver_neighborhood(self, node_id: int) -> None:
        handler = getattr(self._apps.get(node_id), "neighborhood_changed", None)
        if handler is None:
            return
        live = {
            neighbor_id
            for neighbor_id in self._neighbors(node_id)
            if self._is_up(neighbor_id)
        }
        handler(live)

    # ------------------------------------------------------------------
    # Guarded sampling (replaces the direct ``app.sample`` schedule)
    # ------------------------------------------------------------------
    def sample_or_skip(self, node_id: int, point) -> None:
        """Sample through ``node_id``'s app unless its node is down."""
        if self._nodes[node_id].up:
            self.samples_taken[node_id] += 1
            self._apps[node_id].sample(point)
        else:
            self.samples_skipped[node_id] += 1
            self.skipped_keys.add((point.origin, point.epoch))

    # ------------------------------------------------------------------
    # Result material
    # ------------------------------------------------------------------
    def stats(self) -> Dict[int, Dict[str, float]]:
        """Per-node availability counters for ``SimulationResult.fault_stats``."""
        return {
            node_id: {
                "samples_taken": self.samples_taken[node_id],
                "samples_skipped": self.samples_skipped[node_id],
                "downtime_seconds": (
                    self.plan.schedules[node_id].downtime_within(self.plan.duration)
                    if node_id in self.plan.schedules
                    else 0.0
                ),
                "availability": self.plan.availability(node_id),
            }
            for node_id in sorted(self._nodes)
        }
