"""Application layer binding a distributed detector to a simulated node.

The :class:`DistributedDetectorApp` is what runs "on the mote" for the
Global-NN / Global-KNN / Semi-global configurations: it maintains the local
sliding window, feeds sampling and eviction events to the sans-IO detector,
wraps the detector's outgoing :class:`~repro.core.messages.OutlierMessage`
into broadcast packets (with a small random jitter so neighbors do not key up
simultaneously), and feeds received packets back into the detector.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.interfaces import OutlierDetector
from ..core.messages import OutlierMessage
from ..core.points import DataPoint
from ..core.sliding_window import SlidingWindow
from ..network.node import SimNode
from ..network.packet import BROADCAST_ADDRESS, Packet, PacketKind
from ..simulator.rng import RandomStreams

__all__ = ["DistributedDetectorApp"]


class DistributedDetectorApp:
    """Per-node application running the in-network detection protocol."""

    def __init__(
        self,
        node: SimNode,
        detector: OutlierDetector,
        window_length: float,
        broadcast_jitter: float = 0.05,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.node = node
        self.detector = detector
        self.window = SlidingWindow(window_length)
        self.broadcast_jitter = float(broadcast_jitter)
        self._rng = (streams or RandomStreams(node.node_id)).stream(
            f"app-{node.node_id}"
        )
        self.rounds_processed = 0
        self.packets_broadcast = 0
        node.add_handler(self.handle_packet)

    # ------------------------------------------------------------------
    # Sampling (driven by the runner's periodic schedule)
    # ------------------------------------------------------------------
    def sample(self, point: DataPoint) -> None:
        """Process one sampling round: expire old points, add the new one."""
        now = point.timestamp
        cutoff = self.window.cutoff(now)
        added, _local_expired = self.window.slide(now, [point])
        # The paper's window rule deletes *every* held point that fell out of
        # the window, regardless of where it originated.
        expired = self.detector.expired_holdings(cutoff)
        message = self.detector.update_local_data(added, expired)
        self.rounds_processed += 1
        self._broadcast(message)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def handle_packet(self, node: SimNode, packet: Packet) -> bool:
        if packet.kind != PacketKind.APP_BROADCAST:
            return False
        message: OutlierMessage = packet.payload
        reply = self.detector.receive(message)
        self._broadcast(reply)
        return True

    def _broadcast(self, message: Optional[OutlierMessage]) -> None:
        if message is None or message.is_empty():
            return
        packet = Packet(
            kind=PacketKind.APP_BROADCAST,
            source=self.node.node_id,
            destination=BROADCAST_ADDRESS,
            size_bytes=message.wire_size_bytes(),
            payload=message,
        )
        self.packets_broadcast += 1
        delay = self._rng.uniform(0.0, self.broadcast_jitter)
        self.node.simulator.schedule(
            delay, self.node.broadcast, packet, name=f"app-bcast-{self.node.node_id}"
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def estimate(self) -> List[DataPoint]:
        """The node's current outlier estimate."""
        return self.detector.estimate()

    @property
    def node_id(self) -> int:
        return self.node.node_id
