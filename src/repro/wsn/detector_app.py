"""Application layer binding a distributed detector to a simulated node.

The :class:`DistributedDetectorApp` is what runs "on the mote" for the
Global-NN / Global-KNN / Semi-global configurations: it maintains the local
sliding window, feeds sampling and eviction events to the sans-IO detector,
wraps the detector's outgoing :class:`~repro.core.messages.OutlierMessage`
into broadcast packets (with a small random jitter so neighbors do not key up
simultaneously), and feeds received packets back into the detector.

Each sampling tick is delivered to the detector as *one* data-change event
(``update_local_data(added, expired)`` -- all of the tick's expirations plus
the fresh reading together), which is exactly the grouping the detectors
turn into a per-event :class:`~repro.core.batch.EventBatch` on the batched
index path: a steady-state tick is a tiny batch, while crash resets (whole
window evicted at once) and received messages (many points per packet) form
the large batches the block path amortizes.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.interfaces import OutlierDetector
from ..core.messages import OutlierMessage
from ..core.points import DataPoint
from ..core.sliding_window import SlidingWindow
from ..network.node import SimNode
from ..network.packet import BROADCAST_ADDRESS, Packet, PacketKind
from ..simulator.rng import RandomStreams

__all__ = ["DistributedDetectorApp"]


class DistributedDetectorApp:
    """Per-node application running the in-network detection protocol."""

    def __init__(
        self,
        node: SimNode,
        detector: OutlierDetector,
        window_length: float,
        broadcast_jitter: float = 0.05,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.node = node
        self.detector = detector
        self.window = SlidingWindow(window_length)
        self.broadcast_jitter = float(broadcast_jitter)
        self._rng = (streams or RandomStreams(node.node_id)).stream(
            f"app-{node.node_id}"
        )
        self.rounds_processed = 0
        self.packets_broadcast = 0
        node.add_handler(self.handle_packet)

    # ------------------------------------------------------------------
    # Sampling (driven by the runner's periodic schedule)
    # ------------------------------------------------------------------
    def sample(self, point: DataPoint) -> None:
        """Process one sampling round: expire old points, add the new one."""
        now = point.timestamp
        cutoff = self.window.cutoff(now)
        added, _local_expired = self.window.slide(now, [point])
        # The paper's window rule deletes *every* held point that fell out of
        # the window, regardless of where it originated.
        expired = self.detector.expired_holdings(cutoff)
        message = self.detector.update_local_data(added, expired)
        self.rounds_processed += 1
        self._broadcast(message)

    # ------------------------------------------------------------------
    # Fault model
    # ------------------------------------------------------------------
    def crash_reset(self) -> None:
        """Reboot after a crash: RAM is gone, so the sliding window, the
        detector's holdings and the per-link shared-knowledge bookkeeping
        are all cleared.

        The eviction goes through the detector's regular data-change event
        (so indexes and score caches stay consistent) and the neighborhood
        is emptied, but no message is broadcast -- a rebooting mote has
        nothing to say.  Repair happens through the protocol's own
        neighborhood-change event (iv): the fault runtime re-announces the
        links, which resets shared knowledge on both sides and triggers the
        re-negotiation the paper prescribes for churn.
        """
        self.window = SlidingWindow(self.window.length)
        expired = self.detector.expired_holdings(float("inf"))
        if expired:
            self.detector.update_local_data([], expired)
        self.detector.neighborhood_changed(())

    def neighborhood_changed(self, neighbors) -> None:
        """Protocol event (iv): the live immediate neighborhood changed.

        Delivered by the fault runtime when a neighbor crashes, sleeps or
        comes back (idealised link-layer failure detection).  The detector's
        repair message, if any, is broadcast like any other reply.
        """
        self._broadcast(self.detector.neighborhood_changed(neighbors))

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def handle_packet(self, node: SimNode, packet: Packet) -> bool:
        if packet.kind != PacketKind.APP_BROADCAST:
            return False
        message: OutlierMessage = packet.payload
        if not self.detector.is_neighbor(message.sender):
            # Under churn a packet can be in flight when its sender's link
            # is declared down; the detector would (rightly) treat points
            # from a non-neighbor as a protocol violation, so the stale
            # packet is dropped at the application boundary instead.
            return True
        reply = self.detector.receive(message)
        self._broadcast(reply)
        return True

    def _broadcast(self, message: Optional[OutlierMessage]) -> None:
        if message is None or message.is_empty():
            return
        packet = Packet(
            kind=PacketKind.APP_BROADCAST,
            source=self.node.node_id,
            destination=BROADCAST_ADDRESS,
            size_bytes=message.wire_size_bytes(),
            payload=message,
        )
        self.packets_broadcast += 1
        delay = self._rng.uniform(0.0, self.broadcast_jitter)
        self.node.simulator.schedule(
            delay, self.node.broadcast, packet, name=f"app-bcast-{self.node.node_id}"
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def estimate(self) -> List[DataPoint]:
        """The node's current outlier estimate."""
        return self.detector.estimate()

    @property
    def node_id(self) -> int:
        return self.node.node_id
