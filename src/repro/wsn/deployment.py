"""Building a simulated deployment from a scenario configuration.

:func:`build_deployment` assembles the full stack for one run -- topology,
event engine, channel, nodes, routing agents and applications -- according to
the algorithm selected in the scenario:

* ``global`` / ``semi-global``: every node runs a
  :class:`~repro.wsn.detector_app.DistributedDetectorApp` wrapping the
  corresponding sans-IO detector; all communication is single-hop broadcast.
* ``centralized``: every node runs a
  :class:`~repro.wsn.centralized_app.CentralizedClientApp` (the sink runs the
  :class:`~repro.wsn.centralized_app.CentralizedSinkApp`) on top of AODV (or
  static shortest-path routing for the ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Union

from ..core.config import Algorithm
from ..core.errors import ConfigurationError
from ..core.global_detector import GlobalOutlierDetector
from ..core.interfaces import OutlierDetector
from ..core.semiglobal_detector import SemiGlobalOutlierDetector
from ..datasets.streams import SensorDataset
from ..network.channel import WirelessChannel
from ..network.node import SimNode
from ..network.topology import Topology
from ..routing.aodv import AodvAgent
from ..routing.static import StaticRoutingAgent, install_shortest_path_routes
from ..simulator.engine import Simulator
from ..simulator.rng import RandomStreams
from .centralized_app import CentralizedClientApp, CentralizedSinkApp
from .detector_app import DistributedDetectorApp
from .faults import FaultPlan, FaultRuntime
from .scenario import ScenarioConfig

__all__ = ["Deployment", "build_deployment"]

AppType = Union[DistributedDetectorApp, CentralizedClientApp, CentralizedSinkApp]


@dataclass
class Deployment:
    """The assembled simulation stack for one run."""

    scenario: ScenarioConfig
    dataset: SensorDataset
    topology: Topology
    simulator: Simulator
    channel: WirelessChannel
    nodes: Dict[int, SimNode] = field(default_factory=dict)
    apps: Dict[int, AppType] = field(default_factory=dict)
    detectors: Dict[int, OutlierDetector] = field(default_factory=dict)
    routing: Dict[int, Union[AodvAgent, StaticRoutingAgent]] = field(default_factory=dict)
    fault_runtime: Optional[FaultRuntime] = None

    @property
    def sink_app(self) -> Optional[CentralizedSinkApp]:
        app = self.apps.get(self.scenario.sink_id)
        return app if isinstance(app, CentralizedSinkApp) else None


def build_deployment(
    scenario: ScenarioConfig,
    dataset: SensorDataset,
    *,
    topology: Optional[Topology] = None,
    simulator: Optional[Simulator] = None,
    channel: Optional[WirelessChannel] = None,
    node_ids: Optional[Sequence[int]] = None,
    fault_runtime_factory: Optional[Callable[..., FaultRuntime]] = None,
) -> Deployment:
    """Assemble simulator, network and applications for ``scenario``.

    The keyword parameters exist for the sharded execution engine
    (:mod:`repro.shard`), which assembles a *slice* of the deployment: a
    pre-built full topology, a shard-local simulator and channel, the subset
    of node ids the shard owns (per-node constructions -- detectors, apps,
    routing agents, random streams -- are identical regardless of which
    shard builds them), and a factory producing the mirror-aware fault
    runtime.  With all of them omitted the function builds the full
    single-process deployment exactly as before.
    """
    if topology is None:
        topology = Topology.from_positions(
            dataset.positions, transmission_range=scenario.transmission_range
        )
        topology.require_connected()

    streams = RandomStreams(scenario.seed)
    if simulator is None:
        simulator = Simulator()
    if channel is None:
        channel = WirelessChannel(
            simulator,
            topology,
            loss_probability=scenario.loss_probability,
            streams=streams,
            burst=scenario.faults.burst_params(),
        )

    deployment = Deployment(
        scenario=scenario,
        dataset=dataset,
        topology=topology,
        simulator=simulator,
        channel=channel,
    )

    query = scenario.detection.make_query()
    for node_id in (topology.node_ids if node_ids is None else node_ids):
        node = SimNode(node_id, channel)
        deployment.nodes[node_id] = node

        if scenario.algorithm == Algorithm.GLOBAL:
            detector: OutlierDetector = GlobalOutlierDetector(
                node_id,
                query,
                neighbors=topology.neighbors(node_id),
                indexed=scenario.detection.indexed,
                batched=scenario.detection.batched,
            )
            deployment.detectors[node_id] = detector
            deployment.apps[node_id] = DistributedDetectorApp(
                node,
                detector,
                window_length=scenario.detection.window_length,
                broadcast_jitter=scenario.broadcast_jitter,
                streams=streams,
            )
        elif scenario.algorithm == Algorithm.SEMI_GLOBAL:
            detector = SemiGlobalOutlierDetector(
                node_id,
                query,
                hop_diameter=scenario.detection.hop_diameter,
                neighbors=topology.neighbors(node_id),
                variant=scenario.detection.semiglobal_variant,
                indexed=scenario.detection.indexed,
                batched=scenario.detection.batched,
            )
            deployment.detectors[node_id] = detector
            deployment.apps[node_id] = DistributedDetectorApp(
                node,
                detector,
                window_length=scenario.detection.window_length,
                broadcast_jitter=scenario.broadcast_jitter,
                streams=streams,
            )
        elif scenario.algorithm == Algorithm.CENTRALIZED:
            if scenario.use_static_routing:
                routing: Union[AodvAgent, StaticRoutingAgent] = StaticRoutingAgent(node)
            else:
                routing = AodvAgent(node, streams=streams)
            deployment.routing[node_id] = routing
            if node_id == scenario.sink_id:
                deployment.apps[node_id] = CentralizedSinkApp(
                    node,
                    routing,
                    query,
                    window_length=scenario.detection.window_length,
                    indexed=scenario.detection.indexed,
                    batched=scenario.detection.batched,
                )
            else:
                deployment.apps[node_id] = CentralizedClientApp(
                    node,
                    routing,
                    sink_id=scenario.sink_id,
                    window_length=scenario.detection.window_length,
                )
        else:  # pragma: no cover - ScenarioConfig already validates this
            raise ConfigurationError(f"unknown algorithm {scenario.algorithm!r}")

    if scenario.algorithm == Algorithm.CENTRALIZED and scenario.use_static_routing:
        install_shortest_path_routes(
            {nid: agent for nid, agent in deployment.routing.items()
             if isinstance(agent, StaticRoutingAgent)},
            topology,
            sink=scenario.sink_id,
        )

    if scenario.faults.churn_enabled:
        plan = FaultPlan.from_scenario(scenario)
        factory = fault_runtime_factory or FaultRuntime
        deployment.fault_runtime = factory(
            plan, deployment.nodes, deployment.apps, topology=topology
        )

    return deployment
