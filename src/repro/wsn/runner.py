"""Scenario execution: schedule the workload, run the simulation, collect
energy, traffic and accuracy results.

:func:`run_scenario` is the single entry point the examples and the
experiment harness use; :func:`run_repetitions` repeats a scenario with
different seeds and returns all results (the paper averages four seeds per
configuration).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from ..analysis.accuracy import compare_estimates, normalise
from ..core.config import Algorithm
from ..core.errors import ConfigurationError
from ..core.points import DataPoint
from ..core.reference import semi_global_reference_all
from ..datasets.loader import build_intel_lab_dataset
from ..datasets.streams import SensorDataset
from ..network.stats import EnergyReport
from ..network.topology import Topology
from .deployment import Deployment, build_deployment
from .results import SimulationResult
from .scenario import ScenarioConfig

__all__ = [
    "run_scenario",
    "run_scenario_worker",
    "run_repetitions",
    "schedule_workload",
    "collect_result",
    "final_references",
]


def schedule_workload(
    deployment: Deployment, local_nodes: Optional[Set[int]] = None
) -> None:
    """Schedule every sampling event (and, for the centralized baseline, the
    sink's per-round outlier publication) on the deployment's simulator.

    With a fault model engaged, samples are routed through the fault
    runtime's availability guard (a down node misses its round) and the
    plan's power transitions are queued as
    :attr:`~repro.simulator.events.EventPriority.FAULT`-priority events;
    without one, the schedule is exactly the pre-fault-subsystem schedule.

    ``local_nodes`` restricts the schedule to a shard's own nodes.  The
    per-node time offset still uses the *global* enumeration index over the
    sorted sample keys, so every node samples at the exact instant it would
    in the single-process run regardless of which shard schedules it.
    """
    scenario = deployment.scenario
    dataset = deployment.dataset
    simulator = deployment.simulator
    period = scenario.sampling_period
    fault_runtime = deployment.fault_runtime

    for round_index in range(scenario.rounds):
        base_time = round_index * period
        samples = dataset.points_at(round_index)
        for offset, node_id in enumerate(sorted(samples)):
            if local_nodes is not None and node_id not in local_nodes:
                continue
            app = deployment.apps[node_id]
            # A tiny deterministic per-node offset keeps simultaneous events
            # ordered consistently without materially shifting the schedule.
            when = base_time + offset * 1e-4
            name = f"sample-r{round_index}-n{node_id}"
            if fault_runtime is not None:
                simulator.schedule_at(
                    when, fault_runtime.sample_or_skip, node_id,
                    samples[node_id], name=name,
                )
            else:
                simulator.schedule_at(
                    when, app.sample, samples[node_id], name=name,
                )
        sink_app = deployment.sink_app
        if sink_app is not None:
            simulator.schedule_at(
                base_time + 0.6 * period,
                sink_app.publish_outliers,
                name=f"publish-r{round_index}",
            )

    if fault_runtime is not None:
        fault_runtime.schedule(simulator)


def final_references(
    scenario: ScenarioConfig,
    topology: Topology,
    final_windows: Dict[int, List[DataPoint]],
) -> Dict[int, List[DataPoint]]:
    """The correct answer each node should have converged to at the end."""
    query = scenario.detection.make_query()
    if scenario.algorithm == Algorithm.SEMI_GLOBAL:
        adjacency = topology.adjacency()
        return semi_global_reference_all(
            query, final_windows, adjacency, scenario.detection.hop_diameter
        )
    union: Set[DataPoint] = set()
    for points in final_windows.values():
        union |= set(points)
    answer = query.outliers(union)
    return {node_id: answer for node_id in final_windows}


def run_scenario(
    scenario: ScenarioConfig,
    dataset: Optional[SensorDataset] = None,
    shards: Optional[int] = None,
    shard_mode: str = "hop-interleaved",
    *,
    recovery=None,
    chaos=None,
    recovery_stats: Optional[dict] = None,
) -> SimulationResult:
    """Run one complete simulation and return its results.

    Parameters
    ----------
    scenario:
        The run configuration.
    dataset:
        Pre-built dataset to use; when omitted one is generated from the
        scenario (deterministically, from the scenario seed).
    shards:
        When given, partition the deployment across this many worker
        processes and run them in lockstep over the deterministic message
        bus (:mod:`repro.shard`).  The result -- including ``shards=1`` --
        is byte-identical to the single-process run; ``None`` (the default)
        keeps the classic in-process execution.  Sharding is an *execution*
        knob, not a scenario field: it never changes the transcript, so it
        is deliberately not part of the orchestrator's cache key.
    shard_mode:
        Partition placement (``"hop-interleaved"`` or ``"band"``); see
        :func:`repro.shard.partition.partition_topology`.
    recovery / chaos / recovery_stats:
        Fault-tolerance knobs of the sharded path (see
        :mod:`repro.recovery`): a
        :class:`~repro.recovery.supervisor.RecoveryConfig` enables
        checkpoint/restart supervision, a
        :class:`~repro.recovery.chaos.ChaosPlan` injects deterministic
        process faults, and ``recovery_stats`` (a dict, filled in place)
        receives the supervisor's out-of-band report.  Like ``shards``
        these are execution knobs -- they never change the result bytes.
    """
    if shards is not None:
        # Imported lazily: repro.shard imports this module's helpers.
        from ..shard.bus import run_sharded_scenario

        return run_sharded_scenario(
            scenario,
            dataset,
            shards=shards,
            mode=shard_mode,
            recovery=recovery,
            chaos=chaos,
            recovery_stats=recovery_stats,
        )
    if recovery is not None or chaos is not None:
        raise ConfigurationError(
            "recovery and chaos apply to sharded execution; pass shards=k"
        )
    started = time.perf_counter()
    data = dataset or build_intel_lab_dataset(scenario.dataset_config())
    deployment = build_deployment(scenario, data)
    schedule_workload(deployment)
    deployment.simulator.run()
    return collect_result(deployment, started=started)


def collect_result(
    deployment: Deployment, started: Optional[float] = None
) -> SimulationResult:
    """Finalise a fully-run deployment into a :class:`SimulationResult`.

    Factored out of :func:`run_scenario` so that a deployment *restored
    from a checkpoint* and run to completion can be finalised through the
    identical code path -- the recovery round-trip property tests pin that
    ``collect_result(restore(capture(d)))`` serialises byte-identically to
    the uninterrupted run.  ``started`` is a ``time.perf_counter`` origin
    for the (non-canonical) wallclock field.
    """
    scenario = deployment.scenario
    data = deployment.dataset

    # Idle-energy accounting over the full observation interval.  Every
    # algorithm is charged over the same duration so idle energy never skews
    # the comparison.
    duration = max(deployment.simulator.now, scenario.duration)
    for node in deployment.nodes.values():
        node.energy.charge_idle(duration)

    final_index = scenario.rounds - 1
    final_windows = data.windows(final_index, scenario.detection.window_length)
    if deployment.fault_runtime is not None:
        # A sample a down node never took does not exist anywhere in the
        # network; the reference answer ("what should the nodes have
        # converged to?") is therefore stated over the data that actually
        # entered the network, not over the dataset's counterfactual.
        skipped = deployment.fault_runtime.skipped_keys
        final_windows = {
            node_id: [p for p in points if (p.origin, p.epoch) not in skipped]
            for node_id, points in final_windows.items()
        }
    references = final_references(scenario, deployment.topology, final_windows)
    estimates = {
        node_id: app.estimate() for node_id, app in deployment.apps.items()
    }
    accuracy = compare_estimates(estimates, references)

    energy = EnergyReport.from_meters(
        {node_id: node.energy for node_id, node in deployment.nodes.items()},
        rounds=scenario.rounds,
    )
    protocol_stats = {
        node_id: detector.stats.as_dict()
        for node_id, detector in deployment.detectors.items()
    }

    fault_stats = (
        deployment.fault_runtime.stats()
        if deployment.fault_runtime is not None
        else {}
    )

    return SimulationResult(
        scenario=scenario,
        energy=energy,
        channel=deployment.channel.stats,
        accuracy=accuracy,
        estimates={n: normalise(e) for n, e in estimates.items()},
        references={n: normalise(r) for n, r in references.items()},
        protocol_stats=protocol_stats,
        fault_stats=fault_stats,
        events_executed=deployment.simulator.events_executed,
        wallclock_seconds=(
            time.perf_counter() - started if started is not None else 0.0
        ),
    )


def run_scenario_worker(
    scenario: ScenarioConfig,
    shards: Optional[int] = None,
    recovery=None,
    chaos=None,
) -> SimulationResult:
    """Pool entry point used by the sweep executor.

    A module-level function so it pickles cleanly into ``multiprocessing``
    workers (the executor binds ``shards`` with ``functools.partial``,
    which pickles fine too).  A scenario is a pure function of its
    configuration (the seed drives every random stream), so running it in a
    worker process -- or partitioned across shard processes -- yields the
    same result as running it inline.  ``recovery``/``chaos`` are forwarded
    into sharded execution (the executor's inline ``shards`` path); chaos
    ``worker`` actions are not this function's business and are ignored
    here by the sharded bus, which only consumes ``shard`` actions.
    """
    return run_scenario(
        scenario,
        shards=shards,
        recovery=recovery if shards is not None else None,
        chaos=chaos if shards is not None else None,
    )


def run_repetitions(
    scenario: ScenarioConfig, repetitions: int = 4, first_seed: int = 0
) -> List[SimulationResult]:
    """Run ``repetitions`` copies of ``scenario`` with distinct seeds."""
    results = []
    for repetition in range(repetitions):
        seeded = scenario.with_seed(first_seed + repetition)
        results.append(run_scenario(seeded))
    return results
