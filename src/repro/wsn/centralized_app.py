"""Application layer of the centralized baseline.

Every sensor (client) periodically sends its complete sliding-window contents
to a designated *sink* over multi-hop unicast routes (AODV by default, or the
static shortest-path tables for the ablation).  The sink maintains a
:class:`~repro.baselines.centralized.CentralizedAggregator`, recomputes the
global outliers once per round, and unicasts the result back to every sensor.
End-to-end acknowledgements flow in both directions, as in the paper's setup
("a simple end-to-end acknowledgment mechanism was also used to reinforce
reliable communication").

The sink node is itself a sensor: its own window enters the aggregator
directly without consuming any radio energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..baselines.centralized import CentralizedAggregator
from ..core.messages import HEADER_WIRE_BYTES, POINT_WIRE_BYTES
from ..core.outliers import OutlierQuery
from ..core.points import DataPoint
from ..core.sliding_window import SlidingWindow
from ..network.node import SimNode
from ..network.packet import Packet, PacketKind
from ..routing.aodv import AodvAgent
from ..routing.static import StaticRoutingAgent

__all__ = [
    "WindowUpload",
    "OutlierReply",
    "Acknowledgement",
    "ACK_SIZE_BYTES",
    "CentralizedClientApp",
    "CentralizedSinkApp",
]

#: Size of an end-to-end acknowledgement packet.
ACK_SIZE_BYTES = 14

RoutingAgent = Union[AodvAgent, StaticRoutingAgent]


@dataclass(frozen=True)
class WindowUpload:
    """A sensor's window shipped to the sink."""

    origin: int
    round_index: int
    points: Tuple[DataPoint, ...]

    def wire_size(self) -> int:
        return HEADER_WIRE_BYTES + POINT_WIRE_BYTES * len(self.points)


@dataclass(frozen=True)
class OutlierReply:
    """The sink's answer pushed back to a sensor."""

    round_index: int
    outliers: Tuple[DataPoint, ...]

    def wire_size(self) -> int:
        return HEADER_WIRE_BYTES + POINT_WIRE_BYTES * len(self.outliers)


@dataclass(frozen=True)
class Acknowledgement:
    """End-to-end acknowledgement of an upload or a reply."""

    origin: int
    round_index: int
    acknowledges: str  # "upload" or "reply"


class CentralizedClientApp:
    """Sensor-side application of the centralized baseline."""

    def __init__(
        self,
        node: SimNode,
        routing: RoutingAgent,
        sink_id: int,
        window_length: float,
    ) -> None:
        self.node = node
        self.routing = routing
        self.sink_id = int(sink_id)
        self.window = SlidingWindow(window_length)
        self.round_index = -1
        self.last_reply: Optional[OutlierReply] = None
        self.uploads_sent = 0
        self.replies_received = 0
        self.acks_received = 0
        node.add_handler(self.handle_packet)

    @property
    def node_id(self) -> int:
        return self.node.node_id

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, point: DataPoint) -> None:
        """One sampling round: refresh the window and ship it to the sink."""
        self.round_index += 1
        self.window.slide(point.timestamp, [point])
        upload = WindowUpload(
            origin=self.node_id,
            round_index=self.round_index,
            points=tuple(sorted(self.window.points)),
        )
        packet = Packet(
            kind=PacketKind.APP_DATA,
            source=self.node_id,
            destination=self.sink_id,
            size_bytes=upload.wire_size(),
            payload=upload,
        )
        self.uploads_sent += 1
        self.routing.send_data(packet)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def handle_packet(self, node: SimNode, packet: Packet) -> bool:
        if packet.destination != self.node_id:
            return False
        payload = packet.payload
        if isinstance(payload, OutlierReply):
            self.last_reply = payload
            self.replies_received += 1
            ack = Acknowledgement(
                origin=self.node_id,
                round_index=payload.round_index,
                acknowledges="reply",
            )
            self.routing.send_data(
                Packet(
                    kind=PacketKind.APP_ACK,
                    source=self.node_id,
                    destination=self.sink_id,
                    size_bytes=ACK_SIZE_BYTES,
                    payload=ack,
                )
            )
            return True
        if isinstance(payload, Acknowledgement):
            self.acks_received += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def estimate(self) -> List[DataPoint]:
        """The sensor's view of the outliers: whatever the sink last told it."""
        if self.last_reply is None:
            return []
        return list(self.last_reply.outliers)


class CentralizedSinkApp:
    """Sink-side application of the centralized baseline."""

    def __init__(
        self,
        node: SimNode,
        routing: RoutingAgent,
        query: OutlierQuery,
        window_length: float,
        indexed: bool = True,
        batched: bool = True,
    ) -> None:
        self.node = node
        self.routing = routing
        self.query = query
        self.aggregator = CentralizedAggregator(
            query, indexed=indexed, batched=batched
        )
        self.window = SlidingWindow(window_length)
        self.round_index = -1
        self.last_outliers: List[DataPoint] = []
        self.replies_sent = 0
        self.uploads_received = 0
        node.add_handler(self.handle_packet)

    @property
    def node_id(self) -> int:
        return self.node.node_id

    # ------------------------------------------------------------------
    # Sampling (the sink is a sensor too; no radio involved for itself)
    # ------------------------------------------------------------------
    def sample(self, point: DataPoint) -> None:
        self.round_index += 1
        self.window.slide(point.timestamp, [point])
        self.aggregator.update_window(self.node_id, self.window.points)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def handle_packet(self, node: SimNode, packet: Packet) -> bool:
        if packet.destination != self.node_id:
            return False
        payload = packet.payload
        if isinstance(payload, WindowUpload):
            self.uploads_received += 1
            self.aggregator.update_window(payload.origin, payload.points)
            ack = Acknowledgement(
                origin=self.node_id,
                round_index=payload.round_index,
                acknowledges="upload",
            )
            self.routing.send_data(
                Packet(
                    kind=PacketKind.APP_ACK,
                    source=self.node_id,
                    destination=payload.origin,
                    size_bytes=ACK_SIZE_BYTES,
                    payload=ack,
                )
            )
            return True
        if isinstance(payload, Acknowledgement):
            return True
        return False

    # ------------------------------------------------------------------
    # Periodic outlier publication (scheduled by the runner once per round)
    # ------------------------------------------------------------------
    def publish_outliers(self) -> None:
        """Compute the global outliers and unicast them to every sensor."""
        self.last_outliers = self.aggregator.compute_outliers()
        reply = OutlierReply(
            round_index=self.round_index,
            outliers=tuple(self.last_outliers),
        )
        for destination in self.aggregator.reporting_nodes:
            if destination == self.node_id:
                continue
            packet = Packet(
                kind=PacketKind.APP_DATA,
                source=self.node_id,
                destination=destination,
                size_bytes=reply.wire_size(),
                payload=reply,
            )
            self.replies_sent += 1
            self.routing.send_data(packet)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def estimate(self) -> List[DataPoint]:
        return list(self.last_outliers)
