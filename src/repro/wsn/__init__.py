"""Application layer and scenario runner for simulated WSN deployments."""

from .centralized_app import (
    Acknowledgement,
    CentralizedClientApp,
    CentralizedSinkApp,
    OutlierReply,
    WindowUpload,
)
from .deployment import Deployment, build_deployment
from .detector_app import DistributedDetectorApp
from .faults import FaultConfig, FaultPlan, FaultRuntime
from .results import SimulationResult
from .runner import (
    run_repetitions,
    run_scenario,
    run_scenario_worker,
    schedule_workload,
)
from .scenario import ScenarioConfig

__all__ = [
    "ScenarioConfig",
    "FaultConfig",
    "FaultPlan",
    "FaultRuntime",
    "Deployment",
    "build_deployment",
    "DistributedDetectorApp",
    "CentralizedClientApp",
    "CentralizedSinkApp",
    "WindowUpload",
    "OutlierReply",
    "Acknowledgement",
    "SimulationResult",
    "run_scenario",
    "run_scenario_worker",
    "run_repetitions",
    "schedule_workload",
]
