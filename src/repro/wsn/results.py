"""Result container produced by one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..analysis.accuracy import AccuracyReport
from ..core.points import RestKey
from ..network.channel import ChannelStatistics
from ..network.stats import EnergyReport
from .scenario import ScenarioConfig

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Everything one run of :func:`repro.wsn.runner.run_scenario` produces.

    Attributes
    ----------
    scenario:
        The configuration that was run.
    energy:
        Per-node energy snapshot (the raw material of Figures 4-9).
    channel:
        Aggregate traffic counters of the wireless channel.
    accuracy:
        Per-node comparison of the final estimates against the reference
        answer over the final sliding windows.
    estimates / references:
        The normalised (rest-key) estimate and reference per node, kept for
        deeper post-hoc analysis.
    protocol_stats:
        Per-node protocol counters (events, points sent/received, ...).
    events_executed:
        Number of discrete events the simulator processed.
    wallclock_seconds:
        Real time the run took (useful for reporting simulation cost).
    """

    scenario: ScenarioConfig
    energy: EnergyReport
    channel: ChannelStatistics
    accuracy: AccuracyReport
    estimates: Dict[int, Set[RestKey]] = field(default_factory=dict)
    references: Dict[int, Set[RestKey]] = field(default_factory=dict)
    protocol_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    events_executed: int = 0
    wallclock_seconds: float = 0.0

    @property
    def label(self) -> str:
        return self.scenario.label()

    def summary(self) -> Dict[str, float]:
        """Headline numbers for quick inspection and report tables."""
        return {
            "avg_tx_per_round": self.energy.average_per_node_per_round("tx_joules"),
            "avg_rx_per_round": self.energy.average_per_node_per_round("rx_joules"),
            "avg_total_per_round": self.energy.average_per_node_per_round("total_joules"),
            "min_node_total": self.energy.minimum_node_total(),
            "max_node_total": self.energy.maximum_node_total(),
            "accuracy_exact": self.accuracy.exact_fraction,
            "accuracy_similarity": self.accuracy.mean_similarity,
            "transmissions": float(self.channel.transmissions),
            "events": float(self.events_executed),
        }
