"""Result container produced by one simulation run.

Besides holding the in-memory reports, a :class:`SimulationResult` can be
serialised to (and rebuilt from) a JSON-safe dict, which is what the
persistent result store (:mod:`repro.orchestrator.store`) writes to disk
and what lets sweep results survive across processes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Set

from ..analysis.accuracy import AccuracyReport
from ..core.points import RestKey
from ..network.channel import ChannelStatistics
from ..network.stats import EnergyReport, NodeEnergy
from .scenario import ScenarioConfig

__all__ = ["SimulationResult"]


def _encode_rest_keys(keys: Set[RestKey]) -> List[List[Any]]:
    """Deterministic (sorted) JSON encoding of a set of rest keys."""
    return [[list(values), origin, epoch] for values, origin, epoch in sorted(keys)]


def _decode_rest_keys(encoded: List[List[Any]]) -> Set[RestKey]:
    return {
        (tuple(float(v) for v in values), int(origin), int(epoch))
        for values, origin, epoch in encoded
    }


@dataclass
class SimulationResult:
    """Everything one run of :func:`repro.wsn.runner.run_scenario` produces.

    Attributes
    ----------
    scenario:
        The configuration that was run.
    energy:
        Per-node energy snapshot (the raw material of Figures 4-9).
    channel:
        Aggregate traffic counters of the wireless channel.
    accuracy:
        Per-node comparison of the final estimates against the reference
        answer over the final sliding windows.
    estimates / references:
        The normalised (rest-key) estimate and reference per node, kept for
        deeper post-hoc analysis.
    protocol_stats:
        Per-node protocol counters (events, points sent/received, ...).
    fault_stats:
        Per-node availability counters when the scenario ran a fault model
        with churn (samples taken/skipped, downtime, planned availability);
        empty -- and absent from the JSON encoding -- for fault-free runs,
        so their encodings are byte-identical to pre-fault-subsystem ones.
    events_executed:
        Number of discrete events the simulator processed.
    wallclock_seconds:
        Real time the run took (useful for reporting simulation cost).
    """

    scenario: ScenarioConfig
    energy: EnergyReport
    channel: ChannelStatistics
    accuracy: AccuracyReport
    estimates: Dict[int, Set[RestKey]] = field(default_factory=dict)
    references: Dict[int, Set[RestKey]] = field(default_factory=dict)
    protocol_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    fault_stats: Dict[int, Dict[str, float]] = field(default_factory=dict)
    events_executed: int = 0
    wallclock_seconds: float = 0.0

    @property
    def label(self) -> str:
        return self.scenario.label()

    @property
    def mean_availability(self) -> float:
        """Average planned per-node availability (1.0 without a fault model)."""
        if not self.fault_stats:
            return 1.0
        return sum(s["availability"] for s in self.fault_stats.values()) / len(
            self.fault_stats
        )

    def summary(self) -> Dict[str, float]:
        """Headline numbers for quick inspection and report tables."""
        summary = {
            "avg_tx_per_round": self.energy.average_per_node_per_round("tx_joules"),
            "avg_rx_per_round": self.energy.average_per_node_per_round("rx_joules"),
            "avg_total_per_round": self.energy.average_per_node_per_round("total_joules"),
            "min_node_total": self.energy.minimum_node_total(),
            "max_node_total": self.energy.maximum_node_total(),
            "accuracy_exact": self.accuracy.exact_fraction,
            "accuracy_similarity": self.accuracy.mean_similarity,
            "transmissions": float(self.channel.transmissions),
            "events": float(self.events_executed),
        }
        if self.fault_stats:
            summary["mean_availability"] = self.mean_availability
            summary["samples_skipped"] = float(
                sum(s["samples_skipped"] for s in self.fault_stats.values())
            )
        return summary

    # ------------------------------------------------------------------
    # JSON serialisation
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding of the complete result (sets become sorted
        lists, integer keys become strings, so the encoding is canonical)."""
        payload: Dict[str, Any] = {
            "scenario": self.scenario.to_json_dict(),
            "energy": {
                "rounds": self.energy.rounds,
                "nodes": [asdict(node) for node in self.energy.nodes],
            },
            "channel": asdict(self.channel),
            "accuracy": {
                "exact": {str(n): bool(ok) for n, ok in sorted(self.accuracy.exact.items())},
                "similarity": {
                    str(n): sim for n, sim in sorted(self.accuracy.similarity.items())
                },
            },
            "estimates": {
                str(n): _encode_rest_keys(keys) for n, keys in sorted(self.estimates.items())
            },
            "references": {
                str(n): _encode_rest_keys(keys)
                for n, keys in sorted(self.references.items())
            },
            "protocol_stats": {
                str(n): dict(sorted(stats.items()))
                for n, stats in sorted(self.protocol_stats.items())
            },
            "events_executed": self.events_executed,
            "wallclock_seconds": self.wallclock_seconds,
        }
        if self.fault_stats:
            # Key present only for fault-model runs: fault-free encodings
            # stay byte-identical to those written before the subsystem
            # existed (and to the determinism goldens stated over them).
            payload["fault_stats"] = {
                str(n): dict(sorted(stats.items()))
                for n, stats in sorted(self.fault_stats.items())
            }
        return payload

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        energy = EnergyReport(
            (NodeEnergy(**node) for node in data["energy"]["nodes"]),
            rounds=data["energy"]["rounds"],
        )
        accuracy = AccuracyReport(
            exact={int(n): bool(ok) for n, ok in data["accuracy"]["exact"].items()},
            similarity={
                int(n): float(sim) for n, sim in data["accuracy"]["similarity"].items()
            },
        )
        return cls(
            scenario=ScenarioConfig.from_json_dict(data["scenario"]),
            energy=energy,
            channel=ChannelStatistics(**data["channel"]),
            accuracy=accuracy,
            estimates={
                int(n): _decode_rest_keys(keys) for n, keys in data["estimates"].items()
            },
            references={
                int(n): _decode_rest_keys(keys) for n, keys in data["references"].items()
            },
            protocol_stats={
                int(n): {k: int(v) for k, v in stats.items()}
                for n, stats in data["protocol_stats"].items()
            },
            # Values are kept exactly as decoded (ints stay ints, floats
            # floats) so a store round-trip re-encodes byte-identically.
            fault_stats={
                int(n): dict(stats)
                for n, stats in data.get("fault_stats", {}).items()
            },
            events_executed=int(data["events_executed"]),
            wallclock_seconds=float(data["wallclock_seconds"]),
        )

    def canonical_json(self) -> str:
        """Deterministic JSON string of everything the simulation *computed*.

        ``wallclock_seconds`` is excluded: it is the one field that varies
        between two executions of the same scenario, and this string is what
        the determinism guarantees (parallel == serial, rerun == first run)
        are stated over.
        """
        payload = self.to_json_dict()
        payload.pop("wallclock_seconds")
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
