"""Scenario configuration for simulated experiments.

A :class:`ScenarioConfig` fully describes one simulation run: the detection
algorithm and its parameters (a :class:`~repro.core.config.DetectionConfig`),
the deployment (node count, terrain, radio range), the workload (number of
sampling rounds, sampling period, anomaly injection, missing data), the
channel conditions (packet-loss probability) and the fault model (node
churn, duty-cycle sleep, burst loss, permanent sensor faults -- a
:class:`~repro.wsn.faults.FaultConfig`), plus the random seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from ..core.config import Algorithm, DetectionConfig
from ..core.errors import ConfigurationError, RankingError
from ..datasets.layout import (
    DEFAULT_NODE_COUNT,
    DEFAULT_TERRAIN_SIZE,
    DEFAULT_TRANSMISSION_RANGE,
)
from ..datasets.loader import DatasetConfig
from ..datasets.outlier_injection import InjectionConfig
from .faults import FaultConfig

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to reproduce one simulation run.

    Attributes
    ----------
    detection:
        Algorithm, ranking function, ``n``, ``k``, window length, epsilon.
    node_count:
        Number of sensors (the paper uses 53; 32 for the scaling study).
    rounds:
        Number of sampling rounds simulated.
    sampling_period:
        Seconds of simulated time between successive samples of a sensor.
    terrain_size / transmission_range:
        Deployment geometry in metres.
    loss_probability:
        Independent per-receiver packet-loss probability.
    sink_id:
        Collection point used by the centralized baseline.
    use_static_routing:
        When true the centralized baseline uses precomputed shortest-path
        routes instead of AODV (ablation isolating route-discovery overhead).
    missing_probability / injection:
        Dataset preparation knobs (see :mod:`repro.datasets`).
    extra_channels:
        Number of additional correlated sensing channels beyond temperature
        (humidity, light, voltage, ...); each point then carries
        ``3 + extra_channels`` attributes, giving non-Euclidean and
        weighted metrics a genuinely multi-dimensional workload.  ``0``
        (default) reproduces the paper's ``(temperature, x, y)`` points
        bit-for-bit.
    faults:
        Fault-and-churn model (node crash/recovery, duty-cycle sleep,
        Gilbert-Elliott burst loss, permanent sensor faults).  The default
        configuration disables every fault and keeps the run byte-identical
        to a pre-fault-subsystem scenario.
    seed:
        Master random seed for the run.
    """

    detection: DetectionConfig = field(default_factory=DetectionConfig)
    node_count: int = DEFAULT_NODE_COUNT
    rounds: int = 30
    sampling_period: float = 30.0
    terrain_size: float = DEFAULT_TERRAIN_SIZE
    transmission_range: float = DEFAULT_TRANSMISSION_RANGE
    loss_probability: float = 0.0
    sink_id: int = 0
    use_static_routing: bool = False
    missing_probability: float = 0.03
    injection: InjectionConfig = field(default_factory=InjectionConfig)
    extra_channels: int = 0
    faults: FaultConfig = field(default_factory=FaultConfig)
    broadcast_jitter: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.node_count < 2:
            raise ConfigurationError("a scenario needs at least two sensors")
        if self.rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        if self.sampling_period <= 0:
            raise ConfigurationError("sampling_period must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError("loss_probability must be in [0, 1)")
        if not 0 <= self.sink_id < self.node_count:
            raise ConfigurationError(
                f"sink_id {self.sink_id} outside the node id range [0, {self.node_count})"
            )
        if self.broadcast_jitter < 0:
            raise ConfigurationError("broadcast_jitter must be non-negative")
        if self.extra_channels < 0:
            raise ConfigurationError("extra_channels must be non-negative")
        # The synthetic workload's points are (3 + extra_channels)-dimensional
        # (reading channels plus the two coordinates); a parameterised metric
        # sized for a different dimension would otherwise only blow up deep
        # inside the run, when the first distance is measured.
        try:
            self.detection.make_metric().validate_dimension(3 + self.extra_channels)
        except RankingError as error:
            raise ConfigurationError(
                f"metric does not fit this scenario's "
                f"{3 + self.extra_channels}-dimensional points: {error}"
            ) from None

    # ------------------------------------------------------------------
    # Derived values and copies
    # ------------------------------------------------------------------
    @property
    def algorithm(self) -> str:
        return self.detection.algorithm

    @property
    def duration(self) -> float:
        """Simulated seconds covered by the sampling schedule."""
        return self.rounds * self.sampling_period

    def dataset_config(self) -> DatasetConfig:
        """The dataset-generation parameters implied by this scenario."""
        return DatasetConfig(
            node_count=self.node_count,
            epochs=self.rounds,
            terrain_size=self.terrain_size,
            missing_probability=self.missing_probability,
            imputation_window=self.detection.window_length,
            injection=self.injection,
            extra_channels=self.extra_channels,
            node_stuck_probability=self.faults.sensor_stuck_probability,
            node_drift_probability=self.faults.sensor_drift_probability,
            field_seed=self.seed,
            missing_seed=self.seed + 1,
            node_fault_seed=self.seed + 2,
        )

    # ------------------------------------------------------------------
    # JSON serialisation (the persistent result store keys and payloads)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict covering *every* field of this configuration.

        The encoding is produced by :func:`dataclasses.asdict`, so a field
        added to this class (or to the nested :class:`DetectionConfig` /
        :class:`InjectionConfig`) is automatically part of the encoding --
        new scenario knobs can never be silently ignored by the result
        store's cache key.
        """
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ScenarioConfig":
        """Rebuild a scenario from :meth:`to_json_dict` output.

        Unknown fields raise ``TypeError`` (the constructors reject them),
        so a stale or corrupted encoding fails loudly instead of decoding
        to a subtly different scenario.
        """
        payload = dict(data)
        detection = DetectionConfig(**payload.pop("detection"))
        injection = InjectionConfig(**payload.pop("injection"))
        faults = FaultConfig(**payload.pop("faults"))
        return cls(detection=detection, injection=injection, faults=faults, **payload)

    def with_detection(self, detection: DetectionConfig) -> "ScenarioConfig":
        return replace(self, detection=detection)

    def with_seed(self, seed: int) -> "ScenarioConfig":
        return replace(self, seed=seed)

    def with_faults(self, faults: FaultConfig) -> "ScenarioConfig":
        return replace(self, faults=faults)

    def label(self) -> str:
        """Plot label (delegates to the detection configuration)."""
        return self.detection.label()
