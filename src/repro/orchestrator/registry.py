"""Named sweep families.

A **sweep family** declares, for a given experiment profile, the grid of
:class:`~repro.wsn.scenario.ScenarioConfig` objects behind one named
workload -- a paper figure, an accuracy study, a stress grid -- plus an
optional report builder that renders the family's tables once the grid has
been resolved.  Families are registered by name (the experiment modules in
:mod:`repro.experiments.sweeps` register the paper's nine, and new
workloads can register theirs from anywhere), and are what the
``repro-wsn sweep`` CLI runs through the parallel executor.

This module is intentionally ignorant of the experiments layer: a family's
``build``/``report`` callables receive the profile object opaquely, so the
registry can sit below every layer that wants to declare work.

Contract between ``build`` and ``report``: ``build(profile)`` must
enumerate *every* scenario the family's ``report(profile)`` will request
(duplicates are fine -- the executor deduplicates), so that the sweep CLI
can resolve the whole grid in parallel first and the report phase renders
entirely from warm cache.  A report that quietly requests a scenario
outside its build grid still works, but serially -- it forfeits the
parallel fan-out, which at paper scale is the difference between minutes
and hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.errors import ExperimentError
from ..wsn.scenario import ScenarioConfig

__all__ = [
    "SweepFamily",
    "register",
    "unregister",
    "get_family",
    "family_names",
    "all_families",
]


@dataclass(frozen=True)
class SweepFamily:
    """One named sweep.

    Attributes
    ----------
    name:
        Registry key (what ``repro-wsn sweep <name>`` takes).
    description:
        One line shown by ``repro-wsn sweep --list``.
    build:
        ``build(profile) -> [ScenarioConfig, ...]``: the full scenario grid
        of the family at that profile (duplicates allowed; the executor
        deduplicates).
    report:
        Optional ``report(profile) -> [FigureResult, ...]``: renders the
        family's tables.  Called after the grid is resolved, so every run it
        needs is a cache hit.
    """

    name: str
    description: str
    build: Callable[[Any], Sequence[ScenarioConfig]]
    report: Optional[Callable[[Any], Sequence[Any]]] = None


_FAMILIES: Dict[str, SweepFamily] = {}


def register(family: SweepFamily, replace: bool = False) -> SweepFamily:
    """Add ``family`` to the registry (``replace=True`` to re-register)."""
    if not replace and family.name in _FAMILIES:
        raise ExperimentError(f"sweep family {family.name!r} already registered")
    _FAMILIES[family.name] = family
    return family


def unregister(name: str) -> Optional[SweepFamily]:
    """Remove ``name`` from the registry (and return it), if registered.

    Exists for callers that register scratch families -- fixture stores in
    tests, ad-hoc one-off grids -- and must not leave them behind for later
    registry walks (``sweep --list``, whole-registry reports).
    """
    return _FAMILIES.pop(name, None)


def get_family(name: str) -> SweepFamily:
    try:
        return _FAMILIES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown sweep family {name!r}; registered: {family_names()}"
        ) from None


def family_names() -> List[str]:
    return sorted(_FAMILIES)


def all_families() -> List[SweepFamily]:
    return [_FAMILIES[name] for name in family_names()]
