"""Parallel scenario execution over a two-tier (memory + disk) cache.

The executor is the single path through which the experiment layer runs
simulations.  Given a batch of :class:`~repro.wsn.scenario.ScenarioConfig`
objects it:

1. deduplicates the batch (several figures request overlapping grids),
2. resolves what it can from the in-process **memory tier** and then from an
   optional persistent :class:`~repro.orchestrator.store.ResultStore`
   (**disk tier**),
3. fans the remaining misses out over a ``multiprocessing`` pool
   (``workers > 1``) or runs them inline (``workers <= 1``), and
4. writes freshly computed results back into both tiers.

Scenarios are pure functions of their configuration -- every random stream
is derived from the scenario seed -- so the parallel path is *bit-identical*
to the serial one: the pool only changes where the work happens, never what
is computed (see ``tests/test_orchestrator.py::TestDeterminism``).

Invariants the executor maintains:

* **purity** -- nothing outside the ``ScenarioConfig`` influences a result;
  workers receive only the scenario (via ``run_scenario_worker``) and every
  stochastic component inside a run draws from streams named off the
  scenario seed, which is what makes memory hits, store hits and fresh
  computations interchangeable;
* **write-through ordering** -- freshly computed results land in the memory
  tier and the store one by one *as they complete*, so an interrupted sweep
  keeps every finished result and a concurrent sweep on the same store
  starts warm;
* **alignment** -- the returned list matches the requested order, with
  duplicate requests sharing one result object (the build/report split in
  the sweep families relies on this: a report re-requesting a scenario is
  always a memory hit, never a second simulation).
"""

from __future__ import annotations

import os
from functools import partial
from typing import Callable, Dict, Iterable, List, Optional

from ..core.errors import ExperimentError
from ..recovery.chaos import ChaosPlan
from ..recovery.supervisor import RecoveryConfig, SweepSupervisor
from ..wsn.results import SimulationResult
from ..wsn.runner import run_scenario_worker
from ..wsn.scenario import ScenarioConfig
from .store import ResultStore, scenario_key

__all__ = [
    "run_scenarios",
    "run_one",
    "clear_memory",
    "memory_cache",
    "default_workers",
    "default_store",
    "store_only_active",
    "STORE_ONLY_ENV",
]

#: Events delivered to the ``progress`` callback of :func:`run_scenarios`.
#: ``"memory"``/``"store"`` -- resolved from a cache tier; ``"computed"`` --
#: an actual simulation was executed.
ProgressCallback = Callable[[str, ScenarioConfig, int, int], None]

# ----------------------------------------------------------------------
# Memory tier (shared by every sweep in the process; the experiments
# layer's ``run_cached`` is a view over this dict).
# ----------------------------------------------------------------------
_MEMORY: Dict[ScenarioConfig, SimulationResult] = {}


def memory_cache() -> Dict[ScenarioConfig, SimulationResult]:
    """The process-wide memory tier (exposed for tests and diagnostics)."""
    return _MEMORY


def clear_memory() -> None:
    """Drop every memoised result (used by tests)."""
    _MEMORY.clear()


# ----------------------------------------------------------------------
# Environment-driven defaults
# ----------------------------------------------------------------------
def default_workers() -> int:
    """Worker count from the environment (default 1 = in-process).

    ``REPRO_WSN_WORKERS`` takes precedence over the generic
    ``REPRO_WORKERS`` so a wsn-specific deployment (a CI lane, a shared
    batch host) can pin this stack without disturbing other tooling that
    reads the generic name.  Values below 1 are clamped to 1 rather than
    rejected: the override exists to *limit* parallelism, and "as little as
    possible" is a valid request from an environment that cannot fork.
    """
    override = os.environ.get("REPRO_WSN_WORKERS", "").strip()
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            raise ExperimentError(
                f"REPRO_WSN_WORKERS must be an integer, got {override!r}"
            ) from None
    raw = os.environ.get("REPRO_WORKERS", "1").strip()
    try:
        workers = int(raw)
    except ValueError:
        raise ExperimentError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ExperimentError(f"REPRO_WORKERS must be >= 1, got {workers}")
    return workers


def default_store() -> Optional[ResultStore]:
    """Store from ``REPRO_RESULT_STORE`` (default: no disk tier)."""
    root = os.environ.get("REPRO_RESULT_STORE", "").strip()
    return ResultStore(root) if root else None


#: When this environment variable is set (to anything but ``""``/``"0"``),
#: the executor refuses to *simulate*: every requested scenario must resolve
#: from the memory or disk tier, and a miss raises instead of computing.
#: This is what lets the report pipeline prove that a rendered table was
#: regenerated "from the store alone" -- under this flag, a page that would
#: have needed a simulation fails loudly rather than quietly rerunning one.
STORE_ONLY_ENV = "REPRO_STORE_ONLY"


def store_only_active() -> bool:
    """Whether the executor is currently forbidden from simulating."""
    return os.environ.get(STORE_ONLY_ENV, "").strip() not in ("", "0")


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenarios(
    scenarios: Iterable[ScenarioConfig],
    workers: int = 1,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressCallback] = None,
    shards: Optional[int] = None,
    recovery: Optional[RecoveryConfig] = None,
    chaos: Optional[ChaosPlan] = None,
) -> List[SimulationResult]:
    """Resolve every scenario, in order, through cache tiers + execution.

    Parameters
    ----------
    scenarios:
        The batch to resolve; duplicates are computed once.
    workers:
        Size of the supervised worker pool; ``1`` (the default) runs every
        miss inline in this process, which is also the graceful fallback
        when an environment cannot fork.
    store:
        Optional persistent tier; freshly computed results are written back
        to it, making later sweeps (and other processes) start warm.
    progress:
        Optional ``callback(event, scenario, done, total)`` invoked once per
        unique scenario with event ``"memory"``, ``"store"`` or
        ``"computed"``.
    shards:
        When given, each computed miss is itself partitioned across this
        many shard processes (:mod:`repro.shard`) instead of running as one
        simulator.  Sharding parallelises *within* a scenario where the
        pool parallelises *across* scenarios, so the two are mutually
        exclusive: ``shards`` forces the misses inline (pool workers are
        daemonic and may not spawn the shard processes).  Results are
        byte-identical either way, so cache keys and store entries do not
        change.
    recovery:
        Fault-tolerance knobs for the worker pool (per-scenario timeout,
        retry budget, restart backoff); defaults apply when omitted.  Like
        ``workers`` this is an execution knob: it never changes what a
        scenario computes.
    chaos:
        A :class:`~repro.recovery.chaos.ChaosPlan` whose ``worker`` actions
        are inflicted on the pool workers (``shard`` actions are forwarded
        into sharded misses when ``shards`` is set).  Chaos against pool
        workers forces the supervised-pool path even for ``workers == 1``.

    Returns
    -------
    One :class:`SimulationResult` per requested scenario, aligned with the
    input order (duplicates share the same object).

    Raises
    ------
    ExperimentError
        When scenarios exhausted their retry budget (*poison*).  Every
        other result is already written through to the store, and each
        poisoned scenario is recorded there via
        :meth:`~repro.orchestrator.store.ResultStore.record_poison`, so a
        rerun resumes warm and the quarantine is inspectable.
    """
    requested = list(scenarios)
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    unique: List[ScenarioConfig] = []
    seen = set()
    for scenario in requested:
        if scenario not in seen:
            seen.add(scenario)
            unique.append(scenario)

    total = len(unique)
    done = 0
    missing: List[ScenarioConfig] = []
    for scenario in unique:
        if scenario in _MEMORY:
            done += 1
            if progress is not None:
                progress("memory", scenario, done, total)
            continue
        if store is not None:
            stored = store.get(scenario)
            if stored is not None:
                _MEMORY[scenario] = stored
                done += 1
                if progress is not None:
                    progress("store", scenario, done, total)
                continue
        missing.append(scenario)

    def consume_one(scenario: ScenarioConfig, result: SimulationResult) -> None:
        # Results are persisted and reported one by one as they complete --
        # keyed by scenario, not by submission order, because the supervised
        # pool yields in *completion* order and a retried scenario can
        # overtake the batch -- so an interrupted sweep keeps everything
        # finished so far and progress lines appear incrementally.
        nonlocal done
        _MEMORY[scenario] = result
        if store is not None:
            store.put(result)
        done += 1
        if progress is not None:
            progress("computed", scenario, done, total)

    if missing and store_only_active():
        labels = ", ".join(
            f"{scenario.label()} seed={scenario.seed}" for scenario in missing[:3]
        )
        suffix = ", ..." if len(missing) > 3 else ""
        raise ExperimentError(
            f"store-only mode ({STORE_ONLY_ENV}): {len(missing)} scenario(s) "
            f"missing from the cache tiers would need simulating: "
            f"{labels}{suffix}"
        )

    pool_chaos = chaos is not None and chaos.has("worker")
    timed = recovery is not None and recovery.scenario_timeout is not None
    if missing:
        if shards is not None:
            compute = partial(
                run_scenario_worker,
                shards=shards,
                recovery=recovery,
                chaos=chaos,
            )
            for scenario in missing:
                consume_one(scenario, compute(scenario))
        elif workers == 1 and not pool_chaos and not timed:
            for scenario in missing:
                consume_one(scenario, run_scenario_worker(scenario))
        else:
            # Module global resolved at call time so tests can monkeypatch
            # the worker; the (fork-started) supervised pool inherits it.
            supervisor = SweepSupervisor(
                run_scenario_worker,
                min(workers, len(missing)),
                recovery=recovery,
                chaos=chaos,
            )
            try:
                for scenario, result in supervisor.run(missing):
                    consume_one(scenario, result)
            finally:
                supervisor.close()
            if supervisor.poisoned:
                labels = []
                for entry in supervisor.poisoned:
                    if store is not None:
                        store.record_poison(
                            entry["scenario"], entry["reason"], entry["attempts"]
                        )
                    labels.append(
                        f"{scenario_key(entry['scenario'])[:12]} after "
                        f"{entry['attempts']} attempts "
                        f"({entry['reason'].splitlines()[0]})"
                    )
                raise ExperimentError(
                    f"{len(labels)} scenario(s) quarantined as poison: "
                    + "; ".join(labels)
                    + ". Completed results are cached; rerun to resume, or "
                    "inspect the store's .poison markers."
                )

    return [_MEMORY[scenario] for scenario in requested]


def run_one(
    scenario: ScenarioConfig, store: Optional[ResultStore] = None
) -> SimulationResult:
    """Resolve a single scenario through the cache tiers (never forks)."""
    return run_scenarios([scenario], workers=1, store=store)[0]
