"""Persistent, content-addressed result store.

Every :class:`~repro.wsn.scenario.ScenarioConfig` has a *canonical encoding*
(deterministic JSON over every field, nested configs included) whose SHA-256
digest is the scenario's **store key**.  A :class:`ResultStore` is a
directory of ``<key>.json`` files, each holding the full serialised
:class:`~repro.wsn.results.SimulationResult` of one run.  Because scenarios
are pure functions of their configuration, a stored result is valid forever:
reruns are free across processes, and an interrupted sweep resumes from
whatever subset of its grid already landed on disk.

Robustness rules:

* writes are atomic and durable (temp file + flush + ``fsync`` +
  ``os.replace``), so neither a killed process nor a power cut can leave a
  half-written entry under a final key;
* reads treat an *undecodable* file -- truncated, corrupted, produced by an
  incompatible schema -- as a cache miss and recompute, never crash; the
  bad file is quarantined aside to ``<key>.corrupt`` (with a log line) so
  disk faults stay observable instead of being silently overwritten;
* a decoded entry whose embedded scenario does not match the requested one
  (hash collision, or an encoding that silently dropped a field) is also a
  miss -- but *not* quarantined: the file is a perfectly healthy entry for
  some other schema epoch, just not an answer to this request;
* a scenario that repeatedly crashes its worker is recorded as a *poison
  marker* (``<key>.poison``, see :meth:`ResultStore.record_poison`) by the
  supervised sweep executor, so a resumed sweep can see -- and a human can
  inspect -- what was quarantined rather than wondering what went missing.

Cache-key hygiene invariants (what keeps a warm store trustworthy):

* the canonical encoding is produced by ``dataclasses.asdict`` over
  *every* ``ScenarioConfig`` field, nested configs included -- a new
  scenario knob is part of the key the moment it exists, so two scenarios
  that differ in any field can never share an entry
  (``tests/test_orchestrator.py::test_every_field_is_part_of_the_encoding``);
* :data:`STORE_SCHEMA_VERSION` is hashed into every key and must be bumped
  whenever a *code* change alters what a scenario computes -- results are
  pure functions of ``(scenario, code)``, and the version is the code's
  stand-in;
* served entries are verified: the embedded scenario must decode equal to
  the requested one, so even a key collision degrades to a recompute.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..wsn.results import SimulationResult
from ..wsn.scenario import ScenarioConfig

__all__ = [
    "STORE_SCHEMA_VERSION",
    "canonical_scenario_json",
    "scenario_key",
    "StoreHealth",
    "ResultStore",
]

logger = logging.getLogger("repro.orchestrator")

#: Stamped into every store key.  A stored result is a pure function of the
#: scenario *and of the simulation code*: bump this whenever a change to the
#: simulator, detectors or serialisation alters what a scenario computes, so
#: warm stores from older code are invalidated instead of silently served.
#:
#: History: 2 -- the metric-space subsystem added ``metric``/``metric_params``
#: to :class:`~repro.core.config.DetectionConfig` and ``extra_channels`` to
#: :class:`~repro.wsn.scenario.ScenarioConfig`; entries written by schema-1
#: code would otherwise decode to a scenario that no longer matches the
#: requested one field-for-field, so they are recomputed rather than mis-hit.
#:
#: History: 3 -- the fault-and-churn subsystem added ``faults`` (a nested
#: :class:`~repro.wsn.faults.FaultConfig`) to ``ScenarioConfig`` and the
#: optional ``fault_stats`` section to serialised results.  Fault-free runs
#: still *compute* byte-identical transcripts, but schema-2 encodings lack
#: the ``faults`` field and would fail the decoded-scenario equality check
#: anyway -- the bump makes the invalidation explicit instead of incidental.
#:
#: History: 4 -- batched event application added ``batched`` to
#: :class:`~repro.core.config.DetectionConfig`.  The flag never changes a
#: transcript, but it changes the canonical scenario encoding (and hence
#: the cache key), so schema-3 entries are recomputed rather than mis-hit
#: against a scenario that no longer decodes field-for-field.
STORE_SCHEMA_VERSION = 4


def canonical_scenario_json(scenario: ScenarioConfig) -> str:
    """The canonical encoding: deterministic JSON over every scenario field."""
    return json.dumps(
        scenario.to_json_dict(), sort_keys=True, separators=(",", ":")
    )


def scenario_key(scenario: ScenarioConfig) -> str:
    """Content hash of the canonical encoding plus the schema version (the
    store filename stem)."""
    keyed = f'{{"schema":{STORE_SCHEMA_VERSION},"scenario":{canonical_scenario_json(scenario)}}}'
    return hashlib.sha256(keyed.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreHealth:
    """Counts of everything a store directory holds besides healthy entries.

    Quarantine is useless if nothing reads it: ``get`` moves undecodable
    entries aside to ``<key>.corrupt`` and the supervised sweep executor
    records ``<key>.poison`` markers, but until a reader surfaces those
    counts they are invisible except to someone listing the directory by
    hand.  ``ResultStore.health()`` returns this snapshot so reports (and
    tests) can assert that nothing was silently lost.
    """

    entries: int
    corrupt: int
    poison: int

    @property
    def quarantined(self) -> int:
        """Everything set aside rather than served (corrupt + poison)."""
        return self.corrupt + self.poison


class ResultStore:
    """A directory of serialised simulation results, keyed by scenario."""

    def __init__(self, root: Union[str, Path]) -> None:
        # Construction is cheap on purpose (``default_store`` builds one per
        # lookup from the environment); the directory is created lazily on
        # the first write.
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, scenario: ScenarioConfig) -> Path:
        return self.root / f"{scenario_key(scenario)}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, scenario: ScenarioConfig) -> Optional[SimulationResult]:
        """The stored result for ``scenario``, or ``None`` on a miss.

        A file that cannot be read, parsed or decoded -- or that decodes to
        a *different* scenario -- is treated as a miss (the executor will
        recompute and overwrite it).
        """
        path = self.path_for(scenario)
        try:
            payload = json.loads(path.read_text())
            result = SimulationResult.from_json_dict(payload)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, corrupted bytes, incompatible schema: a miss,
            # but quarantine the file aside so the disk fault stays
            # observable (and the recompute's overwrite cannot hide it).
            quarantined = path.with_suffix(".corrupt")
            try:
                os.replace(path, quarantined)
            except OSError:  # pragma: no cover - raced or unwritable dir
                return None
            logger.warning(
                "quarantined undecodable result entry %s -> %s",
                path,
                quarantined,
            )
            return None
        if result.scenario != scenario:
            # Healthy file, wrong scenario (key collision / schema drift):
            # a silent miss, not a quarantine.
            return None
        return result

    def put(self, result: SimulationResult) -> Path:
        """Durably and atomically persist ``result`` under its scenario's key.

        The payload is flushed and fsynced before the atomic rename: a
        sweep's write-through cache is its crash-recovery story, so once
        ``put`` returns the entry must survive the process dying at any
        later instant.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.scenario)
        payload = json.dumps(result.to_json_dict(), sort_keys=True, indent=1)
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        with open(tmp, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Poison markers
    # ------------------------------------------------------------------
    def poison_path_for(self, scenario: ScenarioConfig) -> Path:
        # ``.poison``, not ``.poison.json``: markers must never match the
        # ``*.json`` glob that enumerates result entries.
        return self.root / f"{scenario_key(scenario)}.poison"

    def record_poison(
        self, scenario: ScenarioConfig, reason: str, attempts: int
    ) -> Path:
        """Record that ``scenario`` was quarantined after ``attempts``
        failed executions (see
        :class:`~repro.recovery.supervisor.SweepSupervisor`)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.poison_path_for(scenario)
        payload = json.dumps(
            {
                "scenario": scenario.to_json_dict(),
                "reason": reason,
                "attempts": attempts,
            },
            sort_keys=True,
            indent=1,
        )
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        with open(tmp, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        logger.warning("recorded poison scenario marker %s", path)
        return path

    def poison_entries(self) -> List[Path]:
        """Paths of every recorded poison marker."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.poison"))

    def corrupt_entries(self) -> List[Path]:
        """Paths of every entry :meth:`get` quarantined as undecodable."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.corrupt"))

    def health(self) -> StoreHealth:
        """Snapshot of entry / quarantine counts (see :class:`StoreHealth`)."""
        return StoreHealth(
            entries=len(self.entries()),
            corrupt=len(self.corrupt_entries()),
            poison=len(self.poison_entries()),
        )

    def __contains__(self, scenario: ScenarioConfig) -> bool:  # type: ignore[override]
        return self.get(scenario) is not None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[Path]:
        """Paths of every (possibly invalid) entry currently on disk."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def __iter__(self) -> Iterator[SimulationResult]:
        """Decode every valid entry (invalid files are skipped)."""
        for path in self.entries():
            try:
                yield SimulationResult.from_json_dict(json.loads(path.read_text()))
            except Exception:
                continue

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"
