"""Persistent, content-addressed result store.

Every :class:`~repro.wsn.scenario.ScenarioConfig` has a *canonical encoding*
(deterministic JSON over every field, nested configs included) whose SHA-256
digest is the scenario's **store key**.  A :class:`ResultStore` is a
directory of ``<key>.json`` files, each holding the full serialised
:class:`~repro.wsn.results.SimulationResult` of one run.  Because scenarios
are pure functions of their configuration, a stored result is valid forever:
reruns are free across processes, and an interrupted sweep resumes from
whatever subset of its grid already landed on disk.

Robustness rules:

* writes are atomic (temp file + ``os.replace``), so a killed process never
  leaves a half-written entry under a final key;
* reads treat *any* undecodable file -- truncated, corrupted, produced by an
  incompatible schema -- as a cache miss and recompute, never crash;
* a decoded entry whose embedded scenario does not match the requested one
  (hash collision, or an encoding that silently dropped a field) is also a
  miss.

Cache-key hygiene invariants (what keeps a warm store trustworthy):

* the canonical encoding is produced by ``dataclasses.asdict`` over
  *every* ``ScenarioConfig`` field, nested configs included -- a new
  scenario knob is part of the key the moment it exists, so two scenarios
  that differ in any field can never share an entry
  (``tests/test_orchestrator.py::test_every_field_is_part_of_the_encoding``);
* :data:`STORE_SCHEMA_VERSION` is hashed into every key and must be bumped
  whenever a *code* change alters what a scenario computes -- results are
  pure functions of ``(scenario, code)``, and the version is the code's
  stand-in;
* served entries are verified: the embedded scenario must decode equal to
  the requested one, so even a key collision degrades to a recompute.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..wsn.results import SimulationResult
from ..wsn.scenario import ScenarioConfig

__all__ = [
    "STORE_SCHEMA_VERSION",
    "canonical_scenario_json",
    "scenario_key",
    "ResultStore",
]

#: Stamped into every store key.  A stored result is a pure function of the
#: scenario *and of the simulation code*: bump this whenever a change to the
#: simulator, detectors or serialisation alters what a scenario computes, so
#: warm stores from older code are invalidated instead of silently served.
#:
#: History: 2 -- the metric-space subsystem added ``metric``/``metric_params``
#: to :class:`~repro.core.config.DetectionConfig` and ``extra_channels`` to
#: :class:`~repro.wsn.scenario.ScenarioConfig`; entries written by schema-1
#: code would otherwise decode to a scenario that no longer matches the
#: requested one field-for-field, so they are recomputed rather than mis-hit.
#:
#: History: 3 -- the fault-and-churn subsystem added ``faults`` (a nested
#: :class:`~repro.wsn.faults.FaultConfig`) to ``ScenarioConfig`` and the
#: optional ``fault_stats`` section to serialised results.  Fault-free runs
#: still *compute* byte-identical transcripts, but schema-2 encodings lack
#: the ``faults`` field and would fail the decoded-scenario equality check
#: anyway -- the bump makes the invalidation explicit instead of incidental.
#:
#: History: 4 -- batched event application added ``batched`` to
#: :class:`~repro.core.config.DetectionConfig`.  The flag never changes a
#: transcript, but it changes the canonical scenario encoding (and hence
#: the cache key), so schema-3 entries are recomputed rather than mis-hit
#: against a scenario that no longer decodes field-for-field.
STORE_SCHEMA_VERSION = 4


def canonical_scenario_json(scenario: ScenarioConfig) -> str:
    """The canonical encoding: deterministic JSON over every scenario field."""
    return json.dumps(
        scenario.to_json_dict(), sort_keys=True, separators=(",", ":")
    )


def scenario_key(scenario: ScenarioConfig) -> str:
    """Content hash of the canonical encoding plus the schema version (the
    store filename stem)."""
    keyed = f'{{"schema":{STORE_SCHEMA_VERSION},"scenario":{canonical_scenario_json(scenario)}}}'
    return hashlib.sha256(keyed.encode("utf-8")).hexdigest()


class ResultStore:
    """A directory of serialised simulation results, keyed by scenario."""

    def __init__(self, root: Union[str, Path]) -> None:
        # Construction is cheap on purpose (``default_store`` builds one per
        # lookup from the environment); the directory is created lazily on
        # the first write.
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, scenario: ScenarioConfig) -> Path:
        return self.root / f"{scenario_key(scenario)}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, scenario: ScenarioConfig) -> Optional[SimulationResult]:
        """The stored result for ``scenario``, or ``None`` on a miss.

        A file that cannot be read, parsed or decoded -- or that decodes to
        a *different* scenario -- is treated as a miss (the executor will
        recompute and overwrite it).
        """
        path = self.path_for(scenario)
        try:
            payload = json.loads(path.read_text())
            result = SimulationResult.from_json_dict(payload)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, corrupted bytes, incompatible schema: miss.
            return None
        if result.scenario != scenario:
            return None
        return result

    def put(self, result: SimulationResult) -> Path:
        """Atomically persist ``result`` under its scenario's key."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.scenario)
        payload = json.dumps(result.to_json_dict(), sort_keys=True, indent=1)
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        tmp.write_text(payload)
        os.replace(tmp, path)
        return path

    def __contains__(self, scenario: ScenarioConfig) -> bool:  # type: ignore[override]
        return self.get(scenario) is not None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[Path]:
        """Paths of every (possibly invalid) entry currently on disk."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def __iter__(self) -> Iterator[SimulationResult]:
        """Decode every valid entry (invalid files are skipped)."""
        for path in self.entries():
            try:
                yield SimulationResult.from_json_dict(json.loads(path.read_text()))
            except Exception:
                continue

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"
