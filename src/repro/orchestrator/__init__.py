"""Sweep orchestration: parallel execution, persistent results, registries.

The paper's evaluation is a grid of independent, seed-deterministic
simulation runs.  This package turns that structure into infrastructure:

* :mod:`~repro.orchestrator.executor` -- resolve batches of scenarios
  through a two-tier cache (process memory + disk) and a
  ``multiprocessing`` pool, with bit-identical parallel/serial results;
* :mod:`~repro.orchestrator.store` -- the persistent, content-addressed
  result store (canonical scenario JSON, SHA-256 keys, atomic writes,
  corruption-tolerant reads);
* :mod:`~repro.orchestrator.registry` -- named sweep families driven by the
  ``repro-wsn sweep`` CLI.
"""

from .executor import (
    STORE_ONLY_ENV,
    clear_memory,
    default_store,
    default_workers,
    memory_cache,
    run_one,
    run_scenarios,
    store_only_active,
)
from .registry import (
    SweepFamily,
    all_families,
    family_names,
    get_family,
    register,
    unregister,
)
from .store import (
    ResultStore,
    StoreHealth,
    canonical_scenario_json,
    scenario_key,
)

__all__ = [
    "run_scenarios",
    "run_one",
    "clear_memory",
    "memory_cache",
    "default_workers",
    "default_store",
    "store_only_active",
    "STORE_ONLY_ENV",
    "ResultStore",
    "StoreHealth",
    "canonical_scenario_json",
    "scenario_key",
    "SweepFamily",
    "register",
    "unregister",
    "get_family",
    "family_names",
    "all_families",
]
