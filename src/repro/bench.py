"""Machine-readable performance benchmarks (``repro-wsn bench``).

Performance is a first-class, regression-guarded output of this
reproduction: the per-event detector latency decides how large a
window/network the experiments can simulate, so it is measured the same way
figures are -- reproducibly, from a CLI entry point, with artifacts a CI
job can diff and threshold.

Four benchmarks ship:

* **hotpath** -- per-event latency of the steady-state detector loop (one
  arrival plus one eviction at a fixed window size), measured for the
  incremental flat-array engine (``indexed=True``) and the full-recompute
  oracle (``indexed=False``), at several window sizes.  Emitted as
  ``BENCH_hotpath.json``.
* **e2e** -- end-to-end wall-clock of complete simulated scenarios through
  :func:`repro.wsn.runner.run_scenario` (the global and semi-global
  detectors and the centralized baseline on the synthetic workload).
  Emitted as ``BENCH_e2e.json``.
* **setup** -- scenario *construction* cost at scale: layout generation
  plus :class:`~repro.network.topology.Topology` building via the grid
  spatial index versus the brute-force all-pairs oracle, on the same
  density-preserving terrains the ``scaling-nodes`` sweep uses.  The brute
  build is skipped above a node cap (it is O(n^2); the cap keeps the bench
  bounded), so its speedup is ``null`` there.  Emitted as
  ``BENCH_setup.json``.
* **shard** -- sharded scenario execution (:mod:`repro.shard`): one
  semi-global scenario run single-process and at several shard counts,
  with every sharded transcript compared byte-for-byte against the
  baseline before its speedup is reported.  Records the machine's core
  count, since the ratio is only a parallel speedup when there are cores
  to spread the shards over.  Emitted as ``BENCH_shard.json``.

Both artifacts carry a stable ``schema`` number and enough configuration to
interpret a trajectory of them across commits.  The CLI's ``--check`` mode
turns the hotpath result into a regression guard: it fails when the
indexed-vs-rebuild speedup at ``--floor-window`` drops below ``--floor``.

Methodology invariants (what makes two artifacts comparable):

* **chunked-min timing** -- each measurement is the *fastest* fixed-size
  chunk of events, not the mean: the minimum of repeated identical work is
  the run least disturbed by the scheduler/GC, so it estimates the code's
  cost rather than the machine's mood.  Consequence: numbers are comparable
  across commits *on one machine*; absolute values from different machines
  (or from pre-chunked-min artifacts) are not.
* **identical work** -- the indexed and rebuild variants replay the *same*
  deterministic event stream (same seed, same points), so the reported
  speedup isolates the engine, not the workload.
* **floors are on ratios** -- ``--check`` thresholds the indexed/rebuild
  *speedup*, never an absolute latency, precisely so CI machines of
  different speeds share one floor.

The module is import-light so ``repro-wsn bench`` stays snappy; the wsn
stack is imported lazily inside :func:`run_e2e_bench`.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_WINDOWS",
    "QUICK_WINDOWS",
    "DEFAULT_BATCH_SIZES",
    "steady_state_detector",
    "measure_event_latency",
    "measure_batched_latency",
    "run_hotpath_bench",
    "render_hotpath_table",
    "render_regression_report",
    "run_e2e_bench",
    "BENCH_SETUP_SCHEMA",
    "DEFAULT_SETUP_NODES",
    "QUICK_SETUP_NODES",
    "measure_setup",
    "run_setup_bench",
    "render_setup_table",
    "check_setup_floor",
    "BENCH_SHARD_SCHEMA",
    "DEFAULT_SHARD_COUNTS",
    "run_shard_bench",
    "render_shard_table",
    "check_shard_floor",
    "BENCH_RECOVERY_SCHEMA",
    "run_recovery_bench",
    "render_recovery_table",
    "check_recovery_ceiling",
    "write_bench_artifacts",
    "check_speedup_floor",
    "check_batched_floor",
]

#: Bump when the artifact layout changes incompatibly.
#: History: 2 -- batched event application added ``batched_ms`` /
#: ``batched_speedup`` / ``batch_size`` / ``batch_sweep`` /
#: ``events_batched`` to every hotpath row.
BENCH_SCHEMA = 2

#: Window sizes of the full hotpath sweep (matches ``results/hotpath.txt``).
DEFAULT_WINDOWS: Tuple[int, ...] = (64, 256, 1024)

#: Window sizes of the CI-friendly ``--quick`` sweep.  256 is included
#: because the perf-smoke regression floor is evaluated there.
QUICK_WINDOWS: Tuple[int, ...] = (64, 256)

#: Events-per-tick sweep of the batched path (1 mirrors the steady-state
#: tick; 64 is the headline amortization, roughly a received message or a
#: coarse sampling tick).  Sizes larger than the window are skipped per
#: window so the sliding-window workload stays well formed.
DEFAULT_BATCH_SIZES: Tuple[int, ...] = (1, 4, 16, 64)

#: Schema of ``BENCH_setup.json`` (independent of the hotpath/e2e schema:
#: the artifacts evolve separately).  History: 1 -- initial layout.
BENCH_SETUP_SCHEMA = 1

#: Schema of ``BENCH_shard.json``.  History: 1 -- initial layout.
BENCH_SHARD_SCHEMA = 1

#: Shard counts of the sharded-execution benchmark.  1 is included on
#: purpose: it runs the full bus machinery (worker process, epochs,
#: crossings merge) with zero partition benefit, so the gap between the
#: baseline and ``shards=1`` is the pure coordination overhead.
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4)

#: Schema of ``BENCH_recovery.json``.  History: 1 -- initial layout.
BENCH_RECOVERY_SCHEMA = 1

#: Node counts of the full setup sweep (matches the ``scaling-nodes``
#: paper-profile counts).
DEFAULT_SETUP_NODES: Tuple[int, ...] = (1024, 4096, 16384)

#: Node counts of the CI-friendly ``--setup --quick`` sweep.  2048 is
#: included because the perf-smoke setup floor is evaluated there.
QUICK_SETUP_NODES: Tuple[int, ...] = (512, 2048)

#: Largest node count the brute-force O(n^2) topology build is measured
#: at.  Beyond it only the grid build runs and ``speedup`` is ``null`` --
#: the brute build at 16k nodes takes tens of seconds, which would dominate
#: the whole bench for a number nobody thresholds.
_SETUP_BRUTE_CAP = 4096

#: Measured events per (indexed, window).  The brute path at n=1024 runs
#: ~100 ms per event, so the counts are asymmetric to bound runtime.
_EVENTS = {
    True: {64: 60, 256: 30, 1024: 15},
    False: {64: 20, 256: 10, 1024: 4},
}


def _events_for(window: int, indexed: bool, events: Optional[int]) -> int:
    if events is not None:
        return max(1, events)
    table = _EVENTS[indexed]
    if window in table:
        return table[window]
    # Unlisted window sizes (tests use tiny ones): scale inversely, keeping
    # at least a handful of events.
    return max(4, min(60, 4096 // max(window, 1)))


def steady_state_detector(window: int, indexed: bool, events: int, batched: bool = False):
    """A detector holding ``window`` points plus the stream that keeps it
    there: the shared harness of the hotpath benchmark and the pytest
    micro-benchmark (``benchmarks/test_bench_hotpath.py``).

    ``batched`` defaults to ``False`` so the per-event measurements keep
    pinning the established per-point index path; the batched measurements
    opt in explicitly.
    """
    from .core import (
        AverageKNNDistance,
        GlobalOutlierDetector,
        OutlierQuery,
        make_point,
    )

    rng = random.Random(1234)
    query = OutlierQuery(AverageKNNDistance(k=4), n=4)
    detector = GlobalOutlierDetector(
        0, query, neighbors=[1, 2], indexed=indexed, batched=batched
    )
    stream = [
        make_point(
            [rng.gauss(20.0, 1.0), rng.uniform(0, 50), rng.uniform(0, 50)],
            origin=0,
            epoch=epoch,
        )
        for epoch in range(window + events)
    ]
    detector.add_local_points(stream[:window])
    detector.initialize()
    return detector, stream


def measure_event_latency(
    window: int, indexed: bool, events: Optional[int] = None
) -> Tuple[float, int]:
    """Per-event latency in seconds of the steady-state loop, plus the
    number of measured events.

    The events are timed in a few equal chunks and the *fastest* chunk is
    reported (the ``timeit`` convention): every steady-state event performs
    the same protocol work, so slower chunks measure scheduler and
    frequency-scaling interference, not the code under test.
    """
    count = _events_for(window, indexed, events)
    detector, stream = steady_state_detector(window, indexed, count)
    chunk = max(1, count // 4)
    best = float("inf")
    processed = 0
    while processed < count:
        size = min(chunk, count - processed)
        started = time.perf_counter()
        for i in range(processed, processed + size):
            detector.update_local_data([stream[window + i]], [stream[i]])
        best = min(best, (time.perf_counter() - started) / size)
        processed += size
    return best, count


def measure_batched_latency(
    window: int, batch_size: int, events: Optional[int] = None
) -> Tuple[float, int]:
    """Amortized per-event latency in seconds of the *batched* steady-state
    loop, plus the number of measured events.

    Same workload and chunked-min convention as
    :func:`measure_event_latency`, but the stream is applied ``batch_size``
    events per ``update_local_data`` call (one tick expiring ``batch_size``
    points while adding ``batch_size`` fresh ones), so one
    :class:`~repro.core.batch.EventBatch` and one rescoring pass cover the
    whole group.  The reported latency is per *event*, so it is directly
    comparable to the per-event numbers.
    """
    batch_size = max(1, min(int(batch_size), window))
    count = _events_for(window, True, events)
    # Enough events for several whole batches, whatever the tick size.
    count = max(count, batch_size * 4)
    count -= count % batch_size
    detector, stream = steady_state_detector(window, True, count, batched=True)
    batches = count // batch_size
    chunk = max(1, batches // 4)
    best = float("inf")
    done = 0
    while done < batches:
        size = min(chunk, batches - done)
        started = time.perf_counter()
        for b in range(done, done + size):
            start = b * batch_size
            stop = start + batch_size
            detector.update_local_data(
                stream[window + start : window + stop], stream[start:stop]
            )
        best = min(best, (time.perf_counter() - started) / (size * batch_size))
        done += size
    return best, count


def run_hotpath_bench(
    windows: Sequence[int] = DEFAULT_WINDOWS,
    events: Optional[int] = None,
    quick: bool = False,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
) -> Dict:
    """Measure the hotpath sweep and return the ``BENCH_hotpath`` payload.

    Each window row carries the per-event indexed/rebuild pair plus a
    ``batch_sweep`` over ``batch_sizes`` (sizes larger than the window are
    skipped); the headline ``batched_ms`` is the largest swept batch size,
    and ``batched_speedup`` compares it against the per-event indexed path
    (the PR it replaced), not against the brute-force rebuild.
    """
    rows: List[Dict] = []
    for window in windows:
        indexed_s, indexed_events = measure_event_latency(window, True, events)
        rebuild_s, rebuild_events = measure_event_latency(window, False, events)
        sweep: List[Dict] = []
        events_batched = 0
        for batch_size in batch_sizes:
            if batch_size > window:
                continue
            batched_s, batched_events = measure_batched_latency(
                window, batch_size, events
            )
            events_batched = max(events_batched, batched_events)
            sweep.append(
                {
                    "batch_size": int(batch_size),
                    "batched_ms": batched_s * 1e3,
                    "speedup": indexed_s / batched_s,
                }
            )
        headline = sweep[-1] if sweep else None
        rows.append(
            {
                "window": int(window),
                "indexed_ms": indexed_s * 1e3,
                "rebuild_ms": rebuild_s * 1e3,
                "speedup": rebuild_s / indexed_s,
                "batched_ms": headline["batched_ms"] if headline else None,
                "batch_size": headline["batch_size"] if headline else None,
                "batched_speedup": headline["speedup"] if headline else None,
                "batch_sweep": sweep,
                "events_indexed": indexed_events,
                "events_rebuild": rebuild_events,
                "events_batched": events_batched,
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "hotpath",
        "quick": bool(quick),
        "python": platform.python_version(),
        "windows": rows,
    }


def render_hotpath_table(payload: Dict) -> str:
    """The human-readable table mirrored to ``results/hotpath.txt``."""
    lines = [
        "Per-event detector latency (steady window, 1 add + 1 evict; "
        "batched = adds/evicts grouped per tick, amortized per event)",
        "",
        f"{'window':>8} {'indexed ms':>12} {'rebuild ms':>12} {'speedup':>9} "
        f"{'batched ms':>12} {'batch x':>9}",
    ]
    for row in payload["windows"]:
        batched_ms = row.get("batched_ms")
        batched_speedup = row.get("batched_speedup")
        if batched_ms is None:
            batched_cell = f"{'-':>12} {'-':>9}"
        else:
            batched_cell = f"{batched_ms:>12.3f} {batched_speedup:>8.1f}x"
        lines.append(
            f"{row['window']:>8} {row['indexed_ms']:>12.3f} "
            f"{row['rebuild_ms']:>12.3f} {row['speedup']:>8.1f}x "
            + batched_cell
        )
    sizes = sorted(
        {
            entry["batch_size"]
            for row in payload["windows"]
            for entry in row.get("batch_sweep", ())
        }
    )
    if sizes:
        lines += [
            "",
            f"batch sweep (events per tick): {', '.join(str(s) for s in sizes)}; "
            "the batched column reports the largest size swept per window,",
            "its speedup is relative to the per-event indexed path.",
        ]
    return "\n".join(lines) + "\n"


def render_regression_report(baseline: Dict, current: Dict) -> str:
    """Readable old-vs-new per-window comparison for a failed perf guard.

    ``baseline`` is a previously committed ``BENCH_hotpath.json`` (any
    schema -- missing batched fields render as ``-``); ``current`` is the
    payload that violated the floor.  CI prints this instead of a bare
    assert so a regression shows *which* window and *which* path moved.
    """

    def by_window(payload: Dict) -> Dict[int, Dict]:
        return {row["window"]: row for row in payload.get("windows", ())}

    old_rows = by_window(baseline)
    new_rows = by_window(current)

    def cell(row: Optional[Dict], key: str, suffix: str = "") -> str:
        value = row.get(key) if row else None
        return f"{value:.3f}{suffix}" if value is not None else "-"

    lines = [
        "perf regression report (baseline -> current, per-event ms)",
        "",
        f"{'window':>8} {'indexed ms':>20} {'batched ms':>20} {'speedup':>18}",
    ]
    for window in sorted(set(old_rows) | set(new_rows)):
        old = old_rows.get(window)
        new = new_rows.get(window)
        lines.append(
            f"{window:>8} "
            f"{cell(old, 'indexed_ms') + ' -> ' + cell(new, 'indexed_ms'):>20} "
            f"{cell(old, 'batched_ms') + ' -> ' + cell(new, 'batched_ms'):>20} "
            f"{cell(old, 'speedup', 'x') + ' -> ' + cell(new, 'speedup', 'x'):>18}"
        )
    return "\n".join(lines) + "\n"


def _e2e_scenarios(quick: bool):
    """The end-to-end scenario grid: one representative of each algorithm."""
    from .core.config import Algorithm, DetectionConfig
    from .wsn.scenario import ScenarioConfig

    nodes = 9 if quick else 16
    rounds = 6 if quick else 15
    window = 8 if quick else 10
    grid = []
    for algorithm, ranking, hop in (
        (Algorithm.GLOBAL, "nn", 1),
        (Algorithm.SEMI_GLOBAL, "knn", 2),
        (Algorithm.CENTRALIZED, "nn", 1),
    ):
        detection = DetectionConfig(
            algorithm=algorithm,
            ranking=ranking,
            n_outliers=4,
            k=4,
            window_length=window,
            hop_diameter=hop,
        )
        grid.append(
            ScenarioConfig(
                detection=detection,
                node_count=nodes,
                rounds=rounds,
                seed=0,
            )
        )
    return grid


def run_e2e_bench(quick: bool = False) -> Dict:
    """Run the end-to-end scenarios and return the ``BENCH_e2e`` payload."""
    from .wsn.runner import run_scenario

    rows: List[Dict] = []
    for scenario in _e2e_scenarios(quick):
        started = time.perf_counter()
        result = run_scenario(scenario)
        wallclock = time.perf_counter() - started
        rows.append(
            {
                "label": scenario.label(),
                "algorithm": scenario.detection.algorithm,
                "nodes": scenario.node_count,
                "rounds": scenario.rounds,
                "window": scenario.detection.window_length,
                "wallclock_seconds": wallclock,
                "accuracy_exact": result.summary().get("accuracy_exact", 0.0),
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "e2e",
        "quick": bool(quick),
        "python": platform.python_version(),
        "scenarios": rows,
    }


def _best_of(repeats: int, build) -> float:
    """Fastest wall-clock of ``repeats`` identical ``build()`` calls, in
    seconds (the chunked-min convention applied to whole-build units: a
    build is one indivisible chunk)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        build()
        best = min(best, time.perf_counter() - started)
    return best


def measure_setup(
    nodes: int,
    repeats: int = 3,
    brute_cap: int = _SETUP_BRUTE_CAP,
) -> Dict:
    """One setup-bench row: layout + topology-build timings at ``nodes``.

    The workload is exactly the ``scaling-nodes`` scenario setup: a
    serpentine lab layout on the density-preserving terrain
    (:func:`repro.experiments.sweeps.scaling_terrain`) and a
    :class:`~repro.network.topology.Topology` at the paper's transmission
    range.  Both builders replay the identical placement, so the reported
    speedup isolates the neighbor-index algorithm, not the workload.  The
    brute oracle is skipped (``brute_ms``/``speedup`` are ``None``) above
    ``brute_cap``.
    """
    from .datasets.layout import DEFAULT_TRANSMISSION_RANGE, intel_lab_layout
    from .experiments.sweeps import scaling_terrain
    from .network.topology import Topology

    terrain = scaling_terrain(nodes)
    layout_s = _best_of(
        repeats, lambda: intel_lab_layout(node_count=nodes, terrain_size=terrain)
    )
    positions = intel_lab_layout(node_count=nodes, terrain_size=terrain)

    grid_s = _best_of(
        repeats,
        lambda: Topology.from_positions(
            positions,
            transmission_range=DEFAULT_TRANSMISSION_RANGE,
            builder="grid",
        ),
    )
    topology = Topology.from_positions(
        positions, transmission_range=DEFAULT_TRANSMISSION_RANGE, builder="grid"
    )

    brute_s: Optional[float] = None
    if nodes <= brute_cap:
        brute_s = _best_of(
            repeats,
            lambda: Topology.from_positions(
                positions,
                transmission_range=DEFAULT_TRANSMISSION_RANGE,
                builder="brute",
            ),
        )

    _, mean_degree, _ = topology.degree_statistics()
    return {
        "nodes": int(nodes),
        "terrain": terrain,
        "transmission_range": DEFAULT_TRANSMISSION_RANGE,
        "layout_ms": layout_s * 1e3,
        "grid_ms": grid_s * 1e3,
        "brute_ms": brute_s * 1e3 if brute_s is not None else None,
        "speedup": brute_s / grid_s if brute_s is not None else None,
        "edges": int(topology.edge_count),
        "mean_degree": float(mean_degree),
        "repeats": int(max(1, repeats)),
    }


def run_setup_bench(
    node_counts: Optional[Sequence[int]] = None,
    quick: bool = False,
    repeats: int = 3,
) -> Dict:
    """Measure the setup sweep and return the ``BENCH_setup`` payload."""
    if node_counts is None:
        node_counts = QUICK_SETUP_NODES if quick else DEFAULT_SETUP_NODES
    rows = [measure_setup(int(nodes), repeats=repeats) for nodes in node_counts]
    return {
        "schema": BENCH_SETUP_SCHEMA,
        "benchmark": "setup",
        "quick": bool(quick),
        "python": platform.python_version(),
        "brute_cap": _SETUP_BRUTE_CAP,
        "sizes": rows,
    }


def render_setup_table(payload: Dict) -> str:
    """The human-readable table mirrored to ``results/setup.txt``."""
    lines = [
        "Scenario setup cost (serpentine layout on density-preserving "
        "terrain, paper transmission range; best of repeated builds)",
        "",
        f"{'nodes':>8} {'terrain m':>10} {'layout ms':>11} {'grid ms':>10} "
        f"{'brute ms':>11} {'speedup':>9} {'edges':>8} {'degree':>7}",
    ]
    for row in payload["sizes"]:
        if row["brute_ms"] is None:
            brute_cell = f"{'-':>11} {'-':>9}"
        else:
            brute_cell = f"{row['brute_ms']:>11.1f} {row['speedup']:>8.1f}x"
        lines.append(
            f"{row['nodes']:>8} {row['terrain']:>10.1f} "
            f"{row['layout_ms']:>11.2f} {row['grid_ms']:>10.2f} "
            + brute_cell
            + f" {row['edges']:>8} {row['mean_degree']:>7.2f}"
        )
    lines += [
        "",
        f"brute oracle measured up to {payload['brute_cap']} nodes "
        "(O(n^2); larger sizes report the grid build only).",
    ]
    return "\n".join(lines) + "\n"


def check_setup_floor(
    setup: Dict, floor: float, floor_nodes: int
) -> Tuple[bool, str]:
    """Regression guard for scenario setup: the grid-vs-brute build speedup
    at ``floor_nodes`` must be at least ``floor``.  Same never-vacuous
    contract as :func:`check_speedup_floor` -- a missing size *or* a size
    where the brute oracle was not measured fails.
    """
    for row in setup["sizes"]:
        if row["nodes"] == floor_nodes:
            speedup = row.get("speedup")
            if speedup is None:
                return False, (
                    f"setup guard error: brute oracle not measured at "
                    f"{floor_nodes} nodes (above the brute cap "
                    f"{setup.get('brute_cap')}?)"
                )
            ok = speedup >= floor
            verdict = "ok" if ok else "REGRESSION"
            return ok, (
                f"setup guard {verdict}: grid build speedup {speedup:.1f}x "
                f"at {floor_nodes} nodes (floor {floor:.1f}x)"
            )
    return False, (
        f"setup guard error: {floor_nodes} nodes not in the measured sweep "
        f"{[row['nodes'] for row in setup['sizes']]}"
    )


def run_shard_bench(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    nodes: Optional[int] = None,
    quick: bool = False,
    mode: str = "hop-interleaved",
) -> Dict:
    """Measure sharded execution and return the ``BENCH_shard`` payload.

    One semi-global scenario (the algorithm the partitioner's hop-level
    decomposition is built around) on the density-preserving scaling
    terrain, run once single-process and once per shard count, all over the
    *same* pre-built dataset.  Every sharded transcript is compared
    byte-for-byte (``canonical_json``) against the single-process run and
    the verdict lands in the row's ``identical`` field -- a speedup over a
    divergent transcript would be meaningless.

    Speedup is wall-clock of the single-process run over the sharded run.
    It is only a *parallel* speedup when the machine has cores to spread
    the shards over; the payload records ``cores`` so a trajectory of
    artifacts is interpretable -- on a single-core machine the sub-1.0
    "speedups" measure pure coordination overhead.
    """
    import os

    from .core.config import Algorithm, DetectionConfig
    from .datasets.loader import build_intel_lab_dataset
    from .experiments.sweeps import scaling_terrain
    from .wsn.runner import run_scenario
    from .wsn.scenario import ScenarioConfig

    node_count = nodes if nodes is not None else (256 if quick else 4096)
    rounds = 3
    window = min(10, rounds)
    scenario = ScenarioConfig(
        detection=DetectionConfig(
            algorithm=Algorithm.SEMI_GLOBAL,
            ranking="nn",
            n_outliers=4,
            k=4,
            window_length=window,
            hop_diameter=2,
        ),
        node_count=node_count,
        rounds=rounds,
        terrain_size=scaling_terrain(node_count),
        seed=0,
    )
    dataset = build_intel_lab_dataset(scenario.dataset_config())

    started = time.perf_counter()
    baseline = run_scenario(scenario, dataset)
    baseline_s = time.perf_counter() - started
    baseline_bytes = baseline.canonical_json()

    rows: List[Dict] = []
    for shards in shard_counts:
        started = time.perf_counter()
        result = run_scenario(scenario, dataset, shards=int(shards), shard_mode=mode)
        sharded_s = time.perf_counter() - started
        rows.append(
            {
                "shards": int(shards),
                "wallclock_seconds": sharded_s,
                "speedup": baseline_s / sharded_s,
                "identical": result.canonical_json() == baseline_bytes,
            }
        )
    return {
        "schema": BENCH_SHARD_SCHEMA,
        "benchmark": "shard",
        "quick": bool(quick),
        "python": platform.python_version(),
        "cores": os.cpu_count(),
        "nodes": node_count,
        "rounds": rounds,
        "window": window,
        "mode": mode,
        "label": scenario.label(),
        "baseline_seconds": baseline_s,
        "shards": rows,
    }


def render_shard_table(payload: Dict) -> str:
    """The human-readable table mirrored to ``results/shard.txt``."""
    lines = [
        f"Sharded scenario execution ({payload['label']}, "
        f"{payload['nodes']} nodes, {payload['rounds']} rounds, "
        f"{payload['mode']} placement, {payload['cores']} core(s))",
        "",
        f"single-process baseline: {payload['baseline_seconds']:.2f} s",
        "",
        f"{'shards':>8} {'wallclock s':>12} {'speedup':>9} {'identical':>10}",
    ]
    for row in payload["shards"]:
        lines.append(
            f"{row['shards']:>8} {row['wallclock_seconds']:>12.2f} "
            f"{row['speedup']:>8.2f}x {str(bool(row['identical'])):>10}"
        )
    lines += [
        "",
        "speedup = single-process wall-clock / sharded wall-clock; it is a",
        "parallel speedup only when the machine has cores to spread the",
        "shards over (the cores field above) -- on fewer cores the ratio",
        "measures the bus coordination overhead instead.  identical = the",
        "sharded transcript matched the single-process run byte for byte.",
    ]
    return "\n".join(lines) + "\n"


def check_shard_floor(
    shard: Dict, floor: float, floor_count: int
) -> Tuple[bool, str]:
    """Regression guard for sharded execution: the speedup at
    ``floor_count`` shards must be at least ``floor`` *and* the transcript
    must be byte-identical.  Same never-vacuous contract as
    :func:`check_speedup_floor` -- a missing shard count fails.
    """
    for row in shard["shards"]:
        if row["shards"] == floor_count:
            if not row.get("identical", False):
                return False, (
                    f"shard guard REGRESSION: transcript at {floor_count} "
                    f"shards diverged from the single-process run"
                )
            speedup = row["speedup"]
            ok = speedup >= floor
            verdict = "ok" if ok else "REGRESSION"
            return ok, (
                f"shard guard {verdict}: speedup {speedup:.2f}x at "
                f"{floor_count} shards on {shard.get('cores')} core(s) "
                f"(floor {floor:.2f}x)"
            )
    return False, (
        f"shard guard error: {floor_count} shards not in the measured sweep "
        f"{[row['shards'] for row in shard['shards']]}"
    )


def run_recovery_bench(
    nodes: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    quick: bool = False,
    shards: int = 2,
) -> Dict:
    """Measure what fault tolerance costs and return the ``BENCH_recovery``
    payload.

    Three runs of one semi-global scenario over the same pre-built dataset,
    all sharded across ``shards`` workers:

    1. **baseline** -- recovery disabled: the plain PR-8 bus.
    2. **checkpointed** -- workers snapshot every ``checkpoint_every`` bus
       epochs; the ratio of its wall-clock to the baseline's is the
       steady-state *overhead* of durability, and the per-snapshot write
       latency/size lands in the payload.
    3. **killed** -- same checkpoint cadence plus an injected SIGKILL of
       shard 1 right after the first checkpoint epoch; the supervisor's
       restart report gives the *restart-to-caught-up* time (respawn +
       snapshot restore + epoch replay).

    All three transcripts are byte-compared (``canonical_json``); a
    recovery that changed a single result byte would make the timings
    meaningless, so ``identical`` gates the ceiling check.
    """
    import os

    from .core.config import Algorithm, DetectionConfig
    from .datasets.loader import build_intel_lab_dataset
    from .experiments.sweeps import scaling_terrain
    from .recovery import ChaosPlan, RecoveryConfig
    from .wsn.runner import run_scenario
    from .wsn.scenario import ScenarioConfig

    node_count = nodes if nodes is not None else (64 if quick else 256)
    every = checkpoint_every if checkpoint_every is not None else 64
    rounds = 3
    window = min(10, rounds)
    scenario = ScenarioConfig(
        detection=DetectionConfig(
            algorithm=Algorithm.SEMI_GLOBAL,
            ranking="nn",
            n_outliers=4,
            k=4,
            window_length=window,
            hop_diameter=2,
        ),
        node_count=node_count,
        rounds=rounds,
        terrain_size=scaling_terrain(node_count),
        seed=0,
    )
    dataset = build_intel_lab_dataset(scenario.dataset_config())

    started = time.perf_counter()
    baseline = run_scenario(scenario, dataset, shards=shards)
    baseline_s = time.perf_counter() - started
    baseline_bytes = baseline.canonical_json()

    config = RecoveryConfig(checkpoint_every=every)
    ckpt_stats: Dict = {}
    started = time.perf_counter()
    checkpointed = run_scenario(
        scenario, dataset, shards=shards, recovery=config,
        recovery_stats=ckpt_stats,
    )
    checkpointed_s = time.perf_counter() - started
    checkpoints = ckpt_stats.get("checkpoints", [])
    write_seconds = [c["write_seconds"] for c in checkpoints]
    sizes = [c["bytes"] for c in checkpoints]

    # Kill shard 1 right after the epoch grant that follows its first
    # checkpoint barrier, so the restart restores a snapshot and replays a
    # minimal tail (grant counts are 1-based: grant number every+1 is the
    # one sent after barrier ``every`` was consumed).
    kill_grant = every + 1
    kill_stats: Dict = {}
    started = time.perf_counter()
    killed = run_scenario(
        scenario, dataset, shards=shards, recovery=config,
        chaos=ChaosPlan.parse(f"kill:shard1@epoch{kill_grant}"),
        recovery_stats=kill_stats,
    )
    killed_s = time.perf_counter() - started
    restarts = kill_stats.get("restarts", [])

    return {
        "schema": BENCH_RECOVERY_SCHEMA,
        "benchmark": "recovery",
        "quick": bool(quick),
        "python": platform.python_version(),
        "cores": os.cpu_count(),
        "nodes": node_count,
        "rounds": rounds,
        "window": window,
        "shards": shards,
        "checkpoint_every": every,
        "label": scenario.label(),
        "baseline_seconds": baseline_s,
        "checkpointed": {
            "wallclock_seconds": checkpointed_s,
            "overhead_ratio": checkpointed_s / baseline_s,
            "epochs": ckpt_stats.get("epochs", 0),
            "checkpoints": len(checkpoints),
            "mean_write_seconds": (
                sum(write_seconds) / len(write_seconds) if write_seconds else None
            ),
            "max_write_seconds": max(write_seconds) if write_seconds else None,
            "mean_bytes": (
                int(sum(sizes) / len(sizes)) if sizes else None
            ),
            "identical": checkpointed.canonical_json() == baseline_bytes,
        },
        "killed": {
            "wallclock_seconds": killed_s,
            "kill_at_grant": kill_grant,
            "chaos_fired": kill_stats.get("chaos", []),
            "restarts": len(restarts),
            "downtime_seconds": (
                sum(r["downtime_seconds"] for r in restarts) if restarts else None
            ),
            "replayed_epochs": (
                sum(r["replayed_epochs"] for r in restarts) if restarts else None
            ),
            "resumed_from_epoch": (
                restarts[0]["resumed_from_epoch"] if restarts else None
            ),
            "identical": killed.canonical_json() == baseline_bytes,
        },
    }


def render_recovery_table(payload: Dict) -> str:
    """The human-readable report mirrored to ``results/recovery.txt``."""
    ckpt = payload["checkpointed"]
    killed = payload["killed"]
    mean_ms = (
        f"{ckpt['mean_write_seconds'] * 1e3:.1f}"
        if ckpt["mean_write_seconds"] is not None
        else "n/a"
    )
    max_ms = (
        f"{ckpt['max_write_seconds'] * 1e3:.1f}"
        if ckpt["max_write_seconds"] is not None
        else "n/a"
    )
    mean_kb = (
        f"{ckpt['mean_bytes'] / 1024:.0f}"
        if ckpt["mean_bytes"] is not None
        else "n/a"
    )
    downtime = (
        f"{killed['downtime_seconds']:.3f} s"
        if killed["downtime_seconds"] is not None
        else "n/a (no restart happened!)"
    )
    lines = [
        f"Checkpoint/replay recovery ({payload['label']}, "
        f"{payload['nodes']} nodes, {payload['rounds']} rounds, "
        f"{payload['shards']} shards, checkpoint every "
        f"{payload['checkpoint_every']} epochs, {payload['cores']} core(s))",
        "",
        f"recovery off (baseline):   {payload['baseline_seconds']:8.2f} s",
        f"checkpointing on:          {ckpt['wallclock_seconds']:8.2f} s  "
        f"(overhead {ckpt['overhead_ratio']:.2f}x, "
        f"{ckpt['checkpoints']} snapshot(s) over {ckpt['epochs']} epochs, "
        f"write mean/max {mean_ms}/{max_ms} ms, mean {mean_kb} KiB)",
        f"with injected kill:        {killed['wallclock_seconds']:8.2f} s  "
        f"({killed['restarts']} restart(s), restart-to-caught-up "
        f"{downtime}, replayed {killed['replayed_epochs']} epoch(s) "
        f"from epoch {killed['resumed_from_epoch']})",
        "",
        f"identical transcripts: checkpointed={ckpt['identical']} "
        f"killed={killed['identical']}",
        "",
        "overhead = checkpointing wall-clock / recovery-off wall-clock on",
        "the same pre-built dataset.  restart-to-caught-up covers respawn,",
        "snapshot restore and epoch replay back to barrier parity.",
        "identical = the transcript matched the recovery-off run byte for",
        "byte (canonical_json); a non-identical recovery is a bug, not a",
        "slower run.",
    ]
    return "\n".join(lines) + "\n"


def check_recovery_ceiling(recovery: Dict, ceiling: float) -> Tuple[bool, str]:
    """Regression guard for fault tolerance: both recovered transcripts
    must be byte-identical, the injected kill must actually have fired and
    restarted a worker, and the checkpointing overhead ratio must not
    exceed ``ceiling``.  Same never-vacuous contract as the other guards --
    missing measurements fail.
    """
    ckpt = recovery.get("checkpointed", {})
    killed = recovery.get("killed", {})
    if not ckpt.get("identical", False) or not killed.get("identical", False):
        return False, (
            "recovery guard REGRESSION: recovered transcript diverged from "
            f"the recovery-off run (checkpointed identical="
            f"{ckpt.get('identical')}, killed identical="
            f"{killed.get('identical')})"
        )
    if not ckpt.get("checkpoints"):
        return False, (
            "recovery guard error: no checkpoint was written (interval "
            f"{recovery.get('checkpoint_every')} epochs longer than the "
            f"run's {ckpt.get('epochs')} epochs?)"
        )
    if not killed.get("restarts"):
        return False, (
            "recovery guard error: the injected kill produced no restart "
            f"(chaos fired: {killed.get('chaos_fired')})"
        )
    ratio = ckpt.get("overhead_ratio")
    if ratio is None:
        return False, "recovery guard error: overhead ratio not measured"
    ok = ratio <= ceiling
    verdict = "ok" if ok else "REGRESSION"
    return ok, (
        f"recovery guard {verdict}: checkpointing overhead {ratio:.2f}x "
        f"(ceiling {ceiling:.2f}x), restart-to-caught-up "
        f"{killed.get('downtime_seconds'):.3f}s after "
        f"{killed.get('replayed_epochs')} replayed epoch(s)"
    )


def write_bench_artifacts(
    output_dir,
    hotpath: Optional[Dict] = None,
    e2e: Optional[Dict] = None,
    setup: Optional[Dict] = None,
    shard: Optional[Dict] = None,
    recovery: Optional[Dict] = None,
) -> List[Path]:
    """Write ``BENCH_hotpath.json`` / ``BENCH_e2e.json`` /
    ``BENCH_setup.json`` / ``BENCH_shard.json`` / ``BENCH_recovery.json``
    under ``output_dir`` and return the written paths."""
    root = Path(output_dir)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for name, payload in (
        ("BENCH_hotpath.json", hotpath),
        ("BENCH_e2e.json", e2e),
        ("BENCH_setup.json", setup),
        ("BENCH_shard.json", shard),
        ("BENCH_recovery.json", recovery),
    ):
        if payload is None:
            continue
        path = root / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def check_speedup_floor(
    hotpath: Dict, floor: float, floor_window: int
) -> Tuple[bool, str]:
    """Evaluate the regression guard: indexed/rebuild speedup at
    ``floor_window`` must be at least ``floor``.

    Returns ``(ok, message)``; a missing window is a failure (the guard must
    never pass vacuously).
    """
    for row in hotpath["windows"]:
        if row["window"] == floor_window:
            speedup = row["speedup"]
            ok = speedup >= floor
            verdict = "ok" if ok else "REGRESSION"
            return ok, (
                f"perf guard {verdict}: speedup {speedup:.1f}x at window "
                f"{floor_window} (floor {floor:.1f}x)"
            )
    return False, (
        f"perf guard error: window {floor_window} not in the measured sweep "
        f"{[row['window'] for row in hotpath['windows']]}"
    )


def check_batched_floor(
    hotpath: Dict, floor: float, floor_window: int
) -> Tuple[bool, str]:
    """Regression guard for the batch path: the amortized batched speedup
    over the per-event indexed path at ``floor_window`` must be at least
    ``floor``.  Same never-vacuous contract as :func:`check_speedup_floor`
    (a missing window *or* a row without batched measurements fails).
    """
    for row in hotpath["windows"]:
        if row["window"] == floor_window:
            speedup = row.get("batched_speedup")
            if speedup is None:
                return False, (
                    f"batch guard error: window {floor_window} carries no "
                    f"batched measurement (batch sweep empty?)"
                )
            ok = speedup >= floor
            verdict = "ok" if ok else "REGRESSION"
            return ok, (
                f"batch guard {verdict}: batched speedup {speedup:.1f}x at "
                f"window {floor_window} (floor {floor:.1f}x, batch size "
                f"{row.get('batch_size')})"
            )
    return False, (
        f"batch guard error: window {floor_window} not in the measured sweep "
        f"{[row['window'] for row in hotpath['windows']]}"
    )
