"""Shared infrastructure for the figure-reproduction experiments.

Every experiment module builds parameter sweeps out of
:class:`ScenarioConfig` objects and runs them through
:func:`repro.wsn.runner.run_scenario`.  Because several figures are different
views of the same runs (Figures 4, 5 and 6 all come from the global-detection
window sweep), results are memoised in a process-wide cache keyed by the
scenario, so the benchmark suite never repeats a simulation.

Two execution profiles are provided:

* ``quick`` (default) -- 32 sensors (the paper's smaller network), fewer
  rounds and a thinned parameter sweep, so the whole benchmark suite runs in
  minutes on a laptop;
* ``paper`` -- 53 sensors, the full parameter grids and four repetitions per
  configuration, matching the paper's setup (hours of simulation).

Select the profile with the ``REPRO_BENCH_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.energy_stats import EnergySummary, aggregate_energy
from ..core.config import Algorithm, DetectionConfig
from ..core.errors import ExperimentError
from ..wsn.results import SimulationResult
from ..wsn.runner import run_scenario
from ..wsn.scenario import ScenarioConfig

__all__ = [
    "ExperimentProfile",
    "QUICK_PROFILE",
    "PAPER_PROFILE",
    "active_profile",
    "run_cached",
    "summarise",
    "clear_cache",
    "FigureResult",
]


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale parameters of an experiment sweep."""

    name: str
    node_count: int
    rounds: int
    repetitions: int
    window_sizes: Tuple[int, ...]
    outlier_counts: Tuple[int, ...]
    hop_diameters: Tuple[int, ...]
    sampling_period: float = 30.0

    def base_scenario(self, detection: DetectionConfig, seed: int = 0) -> ScenarioConfig:
        return ScenarioConfig(
            detection=detection,
            node_count=self.node_count,
            rounds=self.rounds,
            sampling_period=self.sampling_period,
            seed=seed,
        )


#: Laptop-scale profile: the default for the benchmark suite.  The parameter
#: grid is scaled down uniformly (fewer sensors, shorter windows, fewer
#: rounds) so that every figure regenerates in a few minutes while keeping
#: the window length well below the number of rounds (the windows must
#: actually fill for the w-dependence to be visible).
QUICK_PROFILE = ExperimentProfile(
    name="quick",
    node_count=16,
    rounds=15,
    repetitions=1,
    window_sizes=(5, 10, 15),
    outlier_counts=(2, 4, 6),
    hop_diameters=(1, 2, 3),
)

#: Paper-scale profile (53 sensors, full grids, four seeds).  Expect hours of
#: simulation time; select it with ``REPRO_BENCH_PROFILE=paper``.
PAPER_PROFILE = ExperimentProfile(
    name="paper",
    node_count=53,
    rounds=45,
    repetitions=4,
    window_sizes=(10, 15, 20, 25, 30, 35, 40),
    outlier_counts=(1, 2, 3, 4, 5, 6, 7, 8),
    hop_diameters=(1, 2, 3),
)

_PROFILES = {"quick": QUICK_PROFILE, "paper": PAPER_PROFILE}


def active_profile() -> ExperimentProfile:
    """The profile selected by ``REPRO_BENCH_PROFILE`` (default ``quick``)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick").strip().lower()
    try:
        return _PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown benchmark profile {name!r}; expected one of {sorted(_PROFILES)}"
        ) from None


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
_CACHE: Dict[ScenarioConfig, SimulationResult] = {}


def run_cached(scenario: ScenarioConfig) -> SimulationResult:
    """Run a scenario, memoising the result for the lifetime of the process."""
    if scenario not in _CACHE:
        _CACHE[scenario] = run_scenario(scenario)
    return _CACHE[scenario]


def clear_cache() -> None:
    """Drop all memoised results (used by tests)."""
    _CACHE.clear()


@dataclass
class FigureResult:
    """Data behind one figure: an x axis plus one series per curve."""

    figure: str
    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]]
    notes: str = ""

    def report(self, precision: int = 5) -> str:
        """Text table mirroring the figure (printed by the benchmarks)."""
        from ..analysis.tables import format_series_table

        title = f"{self.figure}" + (f" — {self.notes}" if self.notes else "")
        return format_series_table(
            self.x_label, self.x_values, self.series, precision=precision, title=title
        )

    def series_for(self, name: str) -> List[float]:
        try:
            return self.series[name]
        except KeyError:
            raise ExperimentError(
                f"{self.figure} has no series {name!r}; available: {sorted(self.series)}"
            ) from None


def summarise(
    detection: DetectionConfig,
    profile: Optional[ExperimentProfile] = None,
    first_seed: int = 0,
) -> Tuple[EnergySummary, List[SimulationResult]]:
    """Run (or reuse) the repetitions of one configuration and average them."""
    profile = profile or active_profile()
    results = []
    for repetition in range(profile.repetitions):
        scenario = profile.base_scenario(detection, seed=first_seed + repetition)
        results.append(run_cached(scenario))
    summary = aggregate_energy([result.energy for result in results])
    return summary, results
