"""Shared infrastructure for the figure-reproduction experiments.

Every experiment module builds parameter sweeps out of
:class:`ScenarioConfig` objects and resolves them through the sweep
orchestrator (:mod:`repro.orchestrator`): a two-tier cache (process memory
plus an optional persistent store selected with ``REPRO_RESULT_STORE``)
backed by a ``multiprocessing`` pool (``REPRO_WORKERS``).  Because several
figures are different views of the same runs (Figures 4, 5 and 6 all come
from the global-detection window sweep), the suite never repeats a
simulation -- and with a store configured, never repeats one across
processes either.

Three execution profiles are provided:

* ``tiny`` -- a 6-sensor smoke-test grid (CI and unit tests);
* ``quick`` (default) -- a scaled-down network, fewer rounds and a thinned
  parameter sweep, so the whole benchmark suite runs in minutes on a laptop;
* ``paper`` -- 53 sensors, the full parameter grids and four repetitions per
  configuration, matching the paper's setup (hours of serial simulation;
  use ``repro-wsn sweep --workers N`` to fan it out).

Select the profile with the ``REPRO_BENCH_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.energy_stats import EnergySummary, aggregate_energy
from ..core.config import Algorithm, DetectionConfig
from ..core.errors import ExperimentError
from ..orchestrator import executor as _executor
from ..wsn.results import SimulationResult
from ..wsn.scenario import ScenarioConfig

__all__ = [
    "ExperimentProfile",
    "TINY_PROFILE",
    "QUICK_PROFILE",
    "PAPER_PROFILE",
    "active_profile",
    "run_cached",
    "run_many",
    "grid_scenarios",
    "summarise",
    "clear_cache",
    "FigureResult",
]


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale parameters of an experiment sweep."""

    name: str
    node_count: int
    rounds: int
    repetitions: int
    window_sizes: Tuple[int, ...]
    outlier_counts: Tuple[int, ...]
    hop_diameters: Tuple[int, ...]
    sampling_period: float = 30.0

    def base_scenario(self, detection: DetectionConfig, seed: int = 0) -> ScenarioConfig:
        return ScenarioConfig(
            detection=detection,
            node_count=self.node_count,
            rounds=self.rounds,
            sampling_period=self.sampling_period,
            seed=seed,
        )

    def repetition_scenarios(
        self, detection: DetectionConfig, first_seed: int = 0
    ) -> List[ScenarioConfig]:
        """The profile's repetitions of one configuration (seeded runs)."""
        return [
            self.base_scenario(detection, seed=first_seed + repetition)
            for repetition in range(self.repetitions)
        ]


#: Smoke-test profile: small enough that a whole registry sweep finishes in
#: seconds (used by CI's parallel-sweep job and the orchestrator tests).
TINY_PROFILE = ExperimentProfile(
    name="tiny",
    node_count=6,
    rounds=4,
    repetitions=1,
    window_sizes=(2, 3),
    outlier_counts=(1, 2),
    hop_diameters=(1,),
)

#: Laptop-scale profile: the default for the benchmark suite.  The parameter
#: grid is scaled down uniformly (fewer sensors, shorter windows, fewer
#: rounds) so that every figure regenerates in a few minutes while keeping
#: the window length well below the number of rounds (the windows must
#: actually fill for the w-dependence to be visible).
QUICK_PROFILE = ExperimentProfile(
    name="quick",
    node_count=16,
    rounds=15,
    repetitions=1,
    window_sizes=(5, 10, 15),
    outlier_counts=(2, 4, 6),
    hop_diameters=(1, 2, 3),
)

#: Paper-scale profile (53 sensors, full grids, four seeds).  Expect hours of
#: simulation time; select it with ``REPRO_BENCH_PROFILE=paper``.
PAPER_PROFILE = ExperimentProfile(
    name="paper",
    node_count=53,
    rounds=45,
    repetitions=4,
    window_sizes=(10, 15, 20, 25, 30, 35, 40),
    outlier_counts=(1, 2, 3, 4, 5, 6, 7, 8),
    hop_diameters=(1, 2, 3),
)

_PROFILES = {
    "tiny": TINY_PROFILE,
    "quick": QUICK_PROFILE,
    "paper": PAPER_PROFILE,
}


def profile_by_name(name: str) -> ExperimentProfile:
    """Look up a profile by name (``tiny`` / ``quick`` / ``paper``)."""
    try:
        return _PROFILES[name.strip().lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown benchmark profile {name!r}; expected one of {sorted(_PROFILES)}"
        ) from None


def active_profile() -> ExperimentProfile:
    """The profile selected by ``REPRO_BENCH_PROFILE`` (default ``quick``)."""
    return profile_by_name(os.environ.get("REPRO_BENCH_PROFILE", "quick"))


# ----------------------------------------------------------------------
# Result resolution (thin views over the orchestrator's cache tiers)
# ----------------------------------------------------------------------
#: The orchestrator's process-wide memory tier (kept under its historical
#: name; tests inspect it to assert that sweeps reuse simulations).
_CACHE: Dict[ScenarioConfig, SimulationResult] = _executor.memory_cache()


def run_cached(scenario: ScenarioConfig) -> SimulationResult:
    """Resolve one scenario through the orchestrator's memory + disk tiers.

    With ``REPRO_RESULT_STORE`` set, results persist on disk and reruns are
    free across processes; otherwise this memoises for the process lifetime
    exactly as before.
    """
    return _executor.run_one(scenario, store=_executor.default_store())


def run_many(scenarios: Sequence[ScenarioConfig]) -> List[SimulationResult]:
    """Resolve a batch of scenarios, fanning misses out over
    ``REPRO_WORKERS`` worker processes (default: in-process).

    The experiment modules call this once per sweep with their complete
    grid, so a multicore box simulates the whole grid concurrently while
    the subsequent per-configuration summarisation hits warm cache.
    """
    return _executor.run_scenarios(
        scenarios,
        workers=_executor.default_workers(),
        store=_executor.default_store(),
    )


def clear_cache() -> None:
    """Drop all memoised results (used by tests)."""
    _executor.clear_memory()


def grid_scenarios(
    profile: ExperimentProfile,
    grid: Dict[str, Dict[object, DetectionConfig]],
    first_seed: int = 0,
) -> List[ScenarioConfig]:
    """Flatten a ``{label: {x: DetectionConfig}}`` sweep grid into every
    scenario it implies (all curves, x values and seed repetitions) --
    the shape shared by the window and outlier-count sweeps."""
    return [
        scenario
        for per_value in grid.values()
        for detection in per_value.values()
        for scenario in profile.repetition_scenarios(detection, first_seed)
    ]


@dataclass
class FigureResult:
    """Data behind one figure: an x axis plus one series per curve."""

    figure: str
    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]]
    notes: str = ""

    def report(self, precision: int = 5) -> str:
        """Text table mirroring the figure (printed by the benchmarks)."""
        from ..analysis.tables import format_series_table

        title = f"{self.figure}" + (f" — {self.notes}" if self.notes else "")
        return format_series_table(
            self.x_label, self.x_values, self.series, precision=precision, title=title
        )

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the report site's ``data/*.json`` files)."""
        return {
            "figure": self.figure,
            "x_label": self.x_label,
            "x_values": [float(x) for x in self.x_values],
            "series": {
                name: [float(v) for v in values]
                for name, values in self.series.items()
            },
            "notes": self.notes,
        }

    def series_for(self, name: str) -> List[float]:
        try:
            return self.series[name]
        except KeyError:
            raise ExperimentError(
                f"{self.figure} has no series {name!r}; available: {sorted(self.series)}"
            ) from None


def summarise(
    detection: DetectionConfig,
    profile: Optional[ExperimentProfile] = None,
    first_seed: int = 0,
) -> Tuple[EnergySummary, List[SimulationResult]]:
    """Run (or reuse) the repetitions of one configuration and average them."""
    profile = profile or active_profile()
    results = run_many(profile.repetition_scenarios(detection, first_seed))
    summary = aggregate_energy([result.energy for result in results])
    return summary, results
