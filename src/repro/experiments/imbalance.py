"""Traffic-imbalance experiment (Section 8's hot-spot discussion).

The conclusion of the paper argues that centralising the data makes the
collection point's neighborhood a bottleneck: its traffic density is
proportional to the coverage area of the whole network (the paper quotes a
factor of roughly 50x in its simulated deployment), which shortens the
network lifetime because those motes die first.  This experiment measures
the concentration directly: the ratio of the sink neighborhood's average
energy to the network average, and the hottest-node-to-average ratio, for
the centralized baseline vs. the distributed algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.energy_stats import traffic_imbalance
from ..core.config import Algorithm, DetectionConfig
from ..datasets.loader import build_intel_lab_dataset
from ..network.topology import Topology
from ..wsn.scenario import ScenarioConfig
from .common import (
    ExperimentProfile,
    FigureResult,
    active_profile,
    run_cached,
    run_many,
)

__all__ = ["run_imbalance_experiment", "imbalance_scenarios"]


def _configurations(window: int):
    return [
        ("Centralized", DetectionConfig(algorithm=Algorithm.CENTRALIZED, ranking="nn",
                                        n_outliers=4, k=4, window_length=window)),
        ("Global-NN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                                      n_outliers=4, k=4, window_length=window)),
        ("Semi-global, epsilon=2",
         DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                         n_outliers=4, k=4, window_length=window, hop_diameter=2)),
    ]


def imbalance_scenarios(
    profile: ExperimentProfile, window: int = 10
) -> List[ScenarioConfig]:
    """The scenario set behind the traffic-concentration experiment."""
    return [
        profile.base_scenario(detection, seed=0)
        for _label, detection in _configurations(window)
    ]


def run_imbalance_experiment(
    profile: Optional[ExperimentProfile] = None,
    window: int = 10,
) -> FigureResult:
    """Energy-concentration ratios for centralized vs. distributed detection."""
    profile = profile or active_profile()
    configurations = _configurations(window)
    run_many(imbalance_scenarios(profile, window))

    sink_ratio: List[float] = []
    max_ratio: List[float] = []
    for _label, detection in configurations:
        scenario = profile.base_scenario(detection, seed=0)
        result = run_cached(scenario)
        # Rebuild the topology the run used (deterministic from the scenario).
        dataset = build_intel_lab_dataset(scenario.dataset_config())
        topology = Topology.from_positions(
            dataset.positions, scenario.transmission_range
        )
        ratios = traffic_imbalance(result.energy, topology, scenario.sink_id)
        sink_ratio.append(ratios["sink_neighborhood_ratio"])
        max_ratio.append(ratios["max_over_avg"])

    return FigureResult(
        figure="Traffic concentration around the collection point",
        x_label="algorithm",
        x_values=[float(i) for i in range(len(configurations))],
        series={
            "sink-neighborhood energy / network average": sink_ratio,
            "hottest node energy / network average": max_ratio,
        },
        notes="algorithms: " + ", ".join(
            f"{i}={label}" for i, (label, _) in enumerate(configurations)
        ),
    )
