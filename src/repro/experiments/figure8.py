"""Figure 8: average TX and RX energy per node per round vs. sliding-window
size, for localized (semi-global) outlier detection with the k-nearest-
neighbor (KNN) ranking function, ``epsilon`` in 1..3, vs. the centralized
baseline.  (Same layout as Figure 7; the paper notes NN and KNN results are
nearly identical for the localized algorithm.)
"""

from __future__ import annotations

from typing import Optional, Tuple

from .common import ExperimentProfile, FigureResult, active_profile
from .figure7 import _window_figures, semi_global_window_sweep

__all__ = ["run_figure8"]


def run_figure8(
    profile: Optional[ExperimentProfile] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Reproduce Figure 8 (semi-global, KNN ranking)."""
    profile = profile or active_profile()
    sweep = semi_global_window_sweep("knn", profile)
    return _window_figures(sweep, profile, "Figure 8", "KNN")
