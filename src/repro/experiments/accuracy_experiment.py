"""Accuracy experiment (Section 7.1's ~99% convergence claim).

The paper does not plot accuracy because it was uniformly high ("nodes
converged upon the correct results approximately 99% of the time", errors
attributed to dropped packets).  This experiment quantifies it: for each
algorithm, the fraction of sensors whose converged estimate equals the
reference answer over the final windows, with and without packet loss.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..core.config import Algorithm, DetectionConfig
from ..wsn.scenario import ScenarioConfig
from .common import (
    ExperimentProfile,
    FigureResult,
    active_profile,
    run_cached,
    run_many,
)

__all__ = ["run_accuracy_experiment", "accuracy_configurations", "accuracy_scenarios"]

#: Per-receiver loss probabilities examined (0 plus the lossy case).
LOSS_LEVELS = (0.0, 0.02)


def accuracy_configurations(window: int = 10) -> List[Tuple[str, DetectionConfig]]:
    """The (label, detection) pairs compared by the accuracy experiment."""
    return [
        ("Global-NN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                                      n_outliers=4, k=4, window_length=window)),
        ("Global-KNN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="knn",
                                       n_outliers=4, k=4, window_length=window)),
        ("Semi-global, epsilon=1",
         DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                         n_outliers=4, k=4, window_length=window, hop_diameter=1)),
        ("Semi-global, epsilon=2",
         DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                         n_outliers=4, k=4, window_length=window, hop_diameter=2)),
        ("Centralized", DetectionConfig(algorithm=Algorithm.CENTRALIZED, ranking="nn",
                                        n_outliers=4, k=4, window_length=window)),
    ]


def accuracy_scenarios(
    profile: ExperimentProfile, window: int = 10
) -> List[ScenarioConfig]:
    """The full (algorithm x loss level) scenario grid of the experiment."""
    return [
        replace(profile.base_scenario(detection, seed=0), loss_probability=loss)
        for loss in LOSS_LEVELS
        for _label, detection in accuracy_configurations(window)
    ]


def run_accuracy_experiment(
    profile: Optional[ExperimentProfile] = None,
    window: int = 10,
) -> FigureResult:
    """Accuracy (exact fraction) per algorithm and loss level."""
    profile = profile or active_profile()
    configurations = accuracy_configurations(window)
    run_many(accuracy_scenarios(profile, window))

    series: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    for loss in LOSS_LEVELS:
        for label, detection in configurations:
            scenario = replace(
                profile.base_scenario(detection, seed=0), loss_probability=loss
            )
            result = run_cached(scenario)
            series[label].append(result.accuracy.exact_fraction)

    return FigureResult(
        figure="Accuracy: fraction of sensors with an exactly correct estimate",
        x_label="loss probability",
        x_values=[float(l) for l in LOSS_LEVELS],
        series=series,
        notes=f"{profile.node_count} nodes, w={window}, n=4, profile={profile.name}",
    )
