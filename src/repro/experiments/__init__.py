"""Experiment harness regenerating every table and figure of the paper's
evaluation section (plus the Section 5.1 worked example and the Section 8
traffic-concentration claim).

Importing this package also registers every sweep family with the
orchestrator's registry (see :mod:`repro.experiments.sweeps`), which is what
the ``repro-wsn sweep`` CLI drives.
"""

from .accuracy_experiment import run_accuracy_experiment
from .common import (
    PAPER_PROFILE,
    QUICK_PROFILE,
    TINY_PROFILE,
    ExperimentProfile,
    FigureResult,
    active_profile,
    clear_cache,
    profile_by_name,
    run_cached,
    run_many,
    summarise,
)
from .example51 import run_example51, section_51_datasets
from .figure4 import global_window_scenarios, global_window_sweep, run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6
from .figure7 import (
    run_figure7,
    semi_global_window_scenarios,
    semi_global_window_sweep,
)
from .figure8 import run_figure8
from .figure9 import outlier_count_scenarios, outlier_count_sweep, run_figure9
from .imbalance import run_imbalance_experiment
from .sweeps import (
    burst_loss_scenarios,
    fault_churn_scenarios,
    run_burst_loss,
    run_fault_churn,
    run_scaling,
    run_stress_loss,
    scaling_scenarios,
    stress_loss_scenarios,
)

__all__ = [
    "ExperimentProfile",
    "TINY_PROFILE",
    "QUICK_PROFILE",
    "PAPER_PROFILE",
    "FigureResult",
    "active_profile",
    "profile_by_name",
    "run_cached",
    "run_many",
    "summarise",
    "clear_cache",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_accuracy_experiment",
    "run_example51",
    "run_imbalance_experiment",
    "run_stress_loss",
    "run_scaling",
    "run_fault_churn",
    "run_burst_loss",
    "fault_churn_scenarios",
    "burst_loss_scenarios",
    "global_window_sweep",
    "global_window_scenarios",
    "semi_global_window_sweep",
    "semi_global_window_scenarios",
    "outlier_count_sweep",
    "outlier_count_scenarios",
    "stress_loss_scenarios",
    "scaling_scenarios",
    "section_51_datasets",
]
