"""Experiment harness regenerating every table and figure of the paper's
evaluation section (plus the Section 5.1 worked example and the Section 8
traffic-concentration claim)."""

from .accuracy_experiment import run_accuracy_experiment
from .common import (
    PAPER_PROFILE,
    QUICK_PROFILE,
    ExperimentProfile,
    FigureResult,
    active_profile,
    clear_cache,
    run_cached,
    summarise,
)
from .example51 import run_example51, section_51_datasets
from .figure4 import global_window_sweep, run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6
from .figure7 import run_figure7, semi_global_window_sweep
from .figure8 import run_figure8
from .figure9 import outlier_count_sweep, run_figure9
from .imbalance import run_imbalance_experiment

__all__ = [
    "ExperimentProfile",
    "QUICK_PROFILE",
    "PAPER_PROFILE",
    "FigureResult",
    "active_profile",
    "run_cached",
    "summarise",
    "clear_cache",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_accuracy_experiment",
    "run_example51",
    "run_imbalance_experiment",
    "global_window_sweep",
    "semi_global_window_sweep",
    "outlier_count_sweep",
    "section_51_datasets",
]
