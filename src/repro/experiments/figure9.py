"""Figure 9: average TX and RX energy per node per round vs. the number of
reported outliers ``n``, for localized (semi-global) detection with the KNN
ranking function at ``w = 20``, ``k = 4``, ``epsilon`` in 1..3, vs. the
centralized baseline.

Expected shape: energy increases with both ``n`` and ``epsilon`` (more
outliers and a wider spatial extent both mean more points must travel), and
every semi-global configuration stays far below the centralized baseline,
whose cost is independent of ``n`` (it always ships whole windows).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.config import Algorithm, DetectionConfig
from .common import (
    ExperimentProfile,
    FigureResult,
    active_profile,
    grid_scenarios,
    run_many,
    summarise,
)

__all__ = ["outlier_count_scenarios", "outlier_count_sweep", "run_figure9"]


def _count_grid(
    profile: ExperimentProfile, ranking: str, window: int, k: int
) -> Dict[str, Dict[int, DetectionConfig]]:
    grid: Dict[str, Dict[int, DetectionConfig]] = {}
    grid["Centralized"] = {
        n_outliers: DetectionConfig(
            algorithm=Algorithm.CENTRALIZED,
            ranking="nn",
            n_outliers=n_outliers,
            k=k,
            window_length=window,
        )
        for n_outliers in profile.outlier_counts
    }
    for epsilon in profile.hop_diameters:
        grid[f"Semi-global, epsilon={epsilon}"] = {
            n_outliers: DetectionConfig(
                algorithm=Algorithm.SEMI_GLOBAL,
                ranking=ranking,
                n_outliers=n_outliers,
                k=k,
                window_length=window,
                hop_diameter=epsilon,
            )
            for n_outliers in profile.outlier_counts
        }
    return grid


def outlier_count_scenarios(
    ranking: str = "knn",
    window: int = 20,
    k: int = 4,
    profile: Optional[ExperimentProfile] = None,
) -> list:
    """Every scenario of the Figure 9 outlier-count sweep."""
    profile = profile or active_profile()
    return grid_scenarios(profile, _count_grid(profile, ranking, window, k))


def outlier_count_sweep(
    ranking: str = "knn",
    window: int = 20,
    k: int = 4,
    profile: Optional[ExperimentProfile] = None,
) -> Dict[str, Dict[int, "object"]]:
    """``{label: {n: EnergySummary}}`` for the n sweep of Figure 9, with the
    whole grid prefetched through the orchestrator in one batch."""
    profile = profile or active_profile()
    grid = _count_grid(profile, ranking, window, k)
    run_many(grid_scenarios(profile, grid))

    sweep: Dict[str, Dict[int, object]] = {}
    for label, per_count in grid.items():
        sweep[label] = {}
        for n_outliers, detection in per_count.items():
            summary, _ = summarise(detection, profile)
            sweep[label][n_outliers] = summary
    return sweep


def run_figure9(
    profile: Optional[ExperimentProfile] = None,
    window: int = 20,
) -> Tuple[FigureResult, FigureResult]:
    """Reproduce Figure 9 (TX and RX energy vs. number of reported outliers)."""
    profile = profile or active_profile()
    sweep = outlier_count_sweep("knn", window=window, profile=profile)
    counts = list(profile.outlier_counts)
    note = (
        f"{profile.node_count} nodes, w={window}, k=4, KNN ranking, "
        f"profile={profile.name}"
    )
    tx = FigureResult(
        figure="Figure 9 (TX): avg TX energy per node per round [J]",
        x_label="n",
        x_values=[float(n) for n in counts],
        series={
            label: [sweep[label][n].avg_tx_per_round for n in counts]
            for label in sweep
        },
        notes=note,
    )
    rx = FigureResult(
        figure="Figure 9 (RX): avg RX energy per node per round [J]",
        x_label="n",
        x_values=[float(n) for n in counts],
        series={
            label: [sweep[label][n].avg_rx_per_round for n in counts]
            for label in sweep
        },
        notes=note,
    )
    return tx, rx
