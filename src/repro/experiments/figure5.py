"""Figure 5: average, minimum and maximum total energy consumed by a node
over the whole run, vs. sliding-window size, for global outlier detection.

The interesting shape: the *range* (max - min) of per-node energy is much
wider for the centralized baseline than for the distributed algorithms,
because the sink's neighborhood relays everyone's windows.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .common import ExperimentProfile, FigureResult, active_profile
from .figure4 import global_window_sweep

__all__ = ["run_figure5"]


def run_figure5(
    profile: Optional[ExperimentProfile] = None,
) -> Tuple[FigureResult, FigureResult, FigureResult]:
    """Reproduce Figure 5: (average, minimum, maximum) node energy figures."""
    profile = profile or active_profile()
    sweep = global_window_sweep(profile)
    windows = list(profile.window_sizes)
    note = f"{profile.node_count} nodes, n=4, k=4, profile={profile.name}"

    average = FigureResult(
        figure="Figure 5 (avg): average total energy consumed per node [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series={
            label: [sweep[label][w].avg_node_total for w in windows] for label in sweep
        },
        notes=note,
    )
    minimum = FigureResult(
        figure="Figure 5 (min): minimum total energy consumed by a node [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series={
            label: [sweep[label][w].min_node_total for w in windows] for label in sweep
        },
        notes=note,
    )
    maximum = FigureResult(
        figure="Figure 5 (max): maximum total energy consumed by a node [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series={
            label: [sweep[label][w].max_node_total for w in windows] for label in sweep
        },
        notes=note,
    )
    return average, minimum, maximum
