"""Figure 4: average TX and RX energy per node per round vs. sliding-window
size, for global outlier detection (Centralized vs Global-NN vs Global-KNN),
with ``n = 4`` and ``k = 4``.

The paper's headline observations, which this experiment reproduces in shape:

* the centralized baseline consumes the most energy at every window size and
  its cost grows (convexly) with ``w``;
* Global-NN is the only configuration whose energy *decreases* as ``w``
  grows (more window redundancy means fewer new sufficient points per round);
* Global-KNN grows slowly (concavely) and stays well below Centralized.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.config import Algorithm, DetectionConfig
from .common import (
    ExperimentProfile,
    FigureResult,
    active_profile,
    grid_scenarios,
    run_many,
    summarise,
)

__all__ = ["global_window_scenarios", "global_window_sweep", "run_figure4"]

#: (label, detection template) of the three curves in Figures 4-6.
GLOBAL_SWEEP_CURVES: Tuple[Tuple[str, DetectionConfig], ...] = (
    ("Centralized", DetectionConfig(algorithm=Algorithm.CENTRALIZED, ranking="nn")),
    ("Global-NN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn")),
    ("Global-KNN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="knn")),
)


def _window_grid(
    profile: ExperimentProfile, n_outliers: int, k: int
) -> Dict[str, Dict[int, DetectionConfig]]:
    return {
        label: {
            window: DetectionConfig(
                algorithm=template.algorithm,
                ranking=template.ranking,
                n_outliers=n_outliers,
                k=k,
                window_length=window,
            )
            for window in profile.window_sizes
        }
        for label, template in GLOBAL_SWEEP_CURVES
    }


def global_window_scenarios(
    profile: Optional[ExperimentProfile] = None,
    n_outliers: int = 4,
    k: int = 4,
) -> List["object"]:
    """Every scenario (all curves, windows and repetitions) of the sweep
    shared by Figures 4, 5 and 6 (also its registry declaration)."""
    profile = profile or active_profile()
    return grid_scenarios(profile, _window_grid(profile, n_outliers, k))


def global_window_sweep(
    profile: Optional[ExperimentProfile] = None,
    n_outliers: int = 4,
    k: int = 4,
) -> Dict[str, Dict[int, "object"]]:
    """Run (or reuse) every (algorithm, window) combination of the sweep.

    The complete grid -- every curve, window and repetition -- is submitted
    to the orchestrator in one batch, so with ``REPRO_WORKERS > 1`` the
    whole sweep simulates concurrently; the per-run results stay cached
    process-wide so Figures 4, 5 and 6 share the same simulations.
    """
    profile = profile or active_profile()
    grid = _window_grid(profile, n_outliers, k)
    run_many(grid_scenarios(profile, grid))

    sweep: Dict[str, Dict[int, object]] = {}
    for label, per_window in grid.items():
        sweep[label] = {}
        for window, detection in per_window.items():
            summary, _results = summarise(detection, profile)
            sweep[label][window] = summary
    return sweep


def run_figure4(
    profile: Optional[ExperimentProfile] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Reproduce Figure 4: (TX-energy figure, RX-energy figure)."""
    profile = profile or active_profile()
    sweep = global_window_sweep(profile)
    windows = list(profile.window_sizes)

    tx_series = {
        label: [sweep[label][w].avg_tx_per_round for w in windows] for label in sweep
    }
    rx_series = {
        label: [sweep[label][w].avg_rx_per_round for w in windows] for label in sweep
    }
    note = f"{profile.node_count} nodes, n=4, k=4, profile={profile.name}"
    tx = FigureResult(
        figure="Figure 4 (TX): avg TX energy per node per round [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series=tx_series,
        notes=note,
    )
    rx = FigureResult(
        figure="Figure 4 (RX): avg RX energy per node per round [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series=rx_series,
        notes=note,
    )
    return tx, rx
