"""Section 5.1 worked example: two sensors, nearest-neighbor ranking, n = 1.

The paper walks through the protocol on two one-dimensional datasets and
observes that the distributed algorithm exchanges only 4 data points, while
naively centralising the data on either sensor costs ``min(a - 6, b + 5)``
points.  This experiment re-runs the example programmatically for a range of
dataset sizes and reports both costs, confirming the communication advantage
grows without bound as the datasets grow.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.global_detector import GlobalOutlierDetector
from ..core.inmemory import InMemoryNetwork
from ..core.outliers import OutlierQuery
from ..core.points import DataPoint, make_point
from ..core.ranking import NearestNeighborDistance
from ..core.reference import global_reference
from .common import FigureResult

__all__ = ["section_51_datasets", "run_example51"]


def section_51_datasets(a: int, b: int) -> Tuple[List[DataPoint], List[DataPoint]]:
    """The datasets of the worked example, parameterised by ``a`` and ``b``.

    ``D_i = {0.5, 3, 6, 10, 11, ..., a}`` and
    ``D_j = {4, 5, 7, 8, 9, a+1, ..., a+b}``; the global outlier (n=1, NN
    ranking) is 0.5.
    """
    if a < 12:
        raise ValueError("the example needs a >= 12")
    if b < 1:
        raise ValueError("the example needs b >= 1")
    d_i_values = [0.5, 3.0, 6.0] + [float(v) for v in range(10, a + 1)]
    d_j_values = [4.0, 5.0, 7.0, 8.0, 9.0] + [float(a + 1 + i) for i in range(b)]
    d_i = [make_point([v], origin=0, epoch=index) for index, v in enumerate(d_i_values)]
    d_j = [make_point([v], origin=1, epoch=index) for index, v in enumerate(d_j_values)]
    return d_i, d_j


def run_example51(sizes: Tuple[Tuple[int, int], ...] = ((20, 10), (50, 30), (100, 80))) -> FigureResult:
    """Communication cost of the distributed protocol vs. naive centralisation
    on the Section 5.1 example, for growing dataset sizes."""
    query = OutlierQuery(NearestNeighborDistance(), n=1)
    distributed_cost: List[float] = []
    centralised_cost: List[float] = []
    correct: List[float] = []

    for a, b in sizes:
        d_i, d_j = section_51_datasets(a, b)
        detectors = {
            0: GlobalOutlierDetector(0, query),
            1: GlobalOutlierDetector(1, query),
        }
        network = InMemoryNetwork(detectors, {0: [1], 1: [0]})
        network.inject_local_data({0: d_i, 1: d_j})
        network.run_to_quiescence()

        reference = {p.rest for p in global_reference(query, {0: d_i, 1: d_j})}
        both_right = all(
            {p.rest for p in det.estimate()} == reference for det in detectors.values()
        )
        distributed_cost.append(float(network.log.point_transmissions))
        centralised_cost.append(float(min(len(d_i), len(d_j))))
        correct.append(1.0 if both_right else 0.0)

    return FigureResult(
        figure="Section 5.1 example: data points transmitted until convergence",
        x_label="dataset size index",
        x_values=[float(i) for i in range(len(sizes))],
        series={
            "distributed (points sent)": distributed_cost,
            "centralised on one sensor (points sent)": centralised_cost,
            "both sensors correct": correct,
        },
        notes="sizes " + ", ".join(f"(a={a}, b={b})" for a, b in sizes),
    )
