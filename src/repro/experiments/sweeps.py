"""Registry declarations for every experiment sweep.

Importing this module (it is pulled in by :mod:`repro.experiments`)
registers a :class:`~repro.orchestrator.registry.SweepFamily` for each of
the paper's nine figure/experiment sweeps plus two non-figure workloads
that only exist because the orchestrator makes them cheap to declare:

* ``stress-loss`` -- a packet-loss x algorithm stress grid probing how each
  protocol's accuracy and energy degrade as the channel gets lossy;
* ``scaling-nodes`` -- a large-network scaling sweep (1k/4k/16k sensors at
  the ``paper`` profile, scaled down for ``quick``/``tiny``) for the
  distributed algorithms, on a density-preserving terrain; its report also
  re-runs the two largest sizes partitioned across shard processes
  (:mod:`repro.shard`), asserting transcript equivalence and tabulating the
  wall-clock;
* ``metric-sensitivity`` -- every registered metric space (Euclidean,
  Manhattan, Chebyshev, weighted Euclidean, Mahalanobis) run over the same
  multi-attribute injected-anomaly workload, comparing convergence accuracy
  and how well each geometry's top-n outliers recover the injected faults;
* ``fault-churn`` -- the paper's robustness claim as a sweep: node
  crash/recovery and duty-cycle sleep at increasing churn intensity, with
  availability, convergence accuracy, injected-fault precision and
  data-level detection latency per algorithm;
* ``burst-loss`` -- correlated Gilbert-Elliott burst loss versus i.i.d.
  loss *at the same average loss rate*, isolating the cost of burstiness.

Every family is driven by ``repro-wsn sweep <name> --workers N --store D``:
the scenario grid resolves through the parallel executor and the optional
persistent store, then the family's report renders from warm cache.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from ..analysis.robustness import (
    detection_latency,
    injected_point_scores,
    mean_availability,
)
from ..core.config import Algorithm, DetectionConfig
from ..datasets.loader import build_intel_lab_dataset
from ..datasets.outlier_injection import InjectionConfig
from ..orchestrator import SweepFamily, register
from ..wsn.faults import FaultConfig
from ..wsn.scenario import ScenarioConfig
from .accuracy_experiment import accuracy_scenarios, run_accuracy_experiment
from .common import ExperimentProfile, FigureResult, run_many
from .example51 import run_example51
from .figure4 import global_window_scenarios, run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6
from .figure7 import run_figure7, semi_global_window_scenarios
from .figure8 import run_figure8
from .figure9 import outlier_count_scenarios, run_figure9
from .imbalance import imbalance_scenarios, run_imbalance_experiment

__all__ = [
    "LOSS_GRID",
    "stress_loss_scenarios",
    "run_stress_loss",
    "scaling_node_counts",
    "scaling_scenarios",
    "run_scaling",
    "SCALING_SHARD_COUNTS",
    "scaling_shard_counts",
    "run_scaling_shards",
    "METRIC_VARIANTS",
    "metric_sensitivity_windows",
    "metric_sensitivity_scenarios",
    "run_metric_sensitivity",
    "CHURN_LEVELS",
    "fault_churn_scenarios",
    "run_fault_churn",
    "BURST_RATES",
    "burst_loss_scenarios",
    "run_burst_loss",
]


# ----------------------------------------------------------------------
# New workload 1: packet-loss x algorithm stress grid
# ----------------------------------------------------------------------
#: Per-receiver loss probabilities of the stress grid (0 through severe).
LOSS_GRID = (0.0, 0.05, 0.1, 0.2)


def _stress_configurations(window: int) -> List[Tuple[str, DetectionConfig]]:
    return [
        ("Global-NN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                                      n_outliers=4, k=4, window_length=window)),
        ("Global-KNN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="knn",
                                       n_outliers=4, k=4, window_length=window)),
        ("Semi-global, epsilon=2",
         DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                         n_outliers=4, k=4, window_length=window, hop_diameter=2)),
        ("Centralized", DetectionConfig(algorithm=Algorithm.CENTRALIZED, ranking="nn",
                                        n_outliers=4, k=4, window_length=window)),
    ]


def _stress_window(profile: ExperimentProfile) -> int:
    # Keep the window inside the sampling schedule so it actually fills.
    return min(10, profile.rounds)


def stress_loss_scenarios(profile: ExperimentProfile) -> List[ScenarioConfig]:
    """The full loss x algorithm x repetition grid."""
    window = _stress_window(profile)
    return [
        replace(scenario, loss_probability=loss)
        for loss in LOSS_GRID
        for _label, detection in _stress_configurations(window)
        for scenario in profile.repetition_scenarios(detection)
    ]


def run_stress_loss(profile: ExperimentProfile) -> Sequence[FigureResult]:
    """Accuracy and energy of each algorithm as the channel degrades."""
    window = _stress_window(profile)
    configurations = _stress_configurations(window)
    run_many(stress_loss_scenarios(profile))

    accuracy: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    energy: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    for loss in LOSS_GRID:
        for label, detection in configurations:
            results = run_many(
                [
                    replace(scenario, loss_probability=loss)
                    for scenario in profile.repetition_scenarios(detection)
                ]
            )
            accuracy[label].append(
                sum(r.accuracy.exact_fraction for r in results) / len(results)
            )
            energy[label].append(
                sum(
                    r.energy.average_per_node_per_round("total_joules")
                    for r in results
                )
                / len(results)
            )

    note = (
        f"{profile.node_count} nodes, w={window}, n=4, "
        f"{profile.repetitions} seed(s), profile={profile.name}"
    )
    x_values = [float(loss) for loss in LOSS_GRID]
    return (
        FigureResult(
            figure="Loss stress: fraction of sensors with an exact estimate",
            x_label="loss probability",
            x_values=x_values,
            series=accuracy,
            notes=note,
        ),
        FigureResult(
            figure="Loss stress: avg total energy per node per round [J]",
            x_label="loss probability",
            x_values=x_values,
            series=energy,
            notes=note,
        ),
    )


# ----------------------------------------------------------------------
# New workload 2: large-network scaling sweep
# ----------------------------------------------------------------------
#: Network sizes per profile.  With scenario setup running through the
#: spatial index, the paper-scale grid probes 1k/4k/16k sensors -- two to
#: three hundred times the paper's 53-node deployment.
_SCALING_COUNTS = {
    "tiny": (8, 12),
    "quick": (32, 64),
    "paper": (1024, 4096, 16384),
}

#: Largest network the flooding-based global detector is swept at.  Its
#: estimates gossip across the whole network, so simulated cost grows
#: super-linearly with n; beyond this cap the sweep follows the semi-global
#: (hop-bounded, in-network) detector only -- which is exactly the paper's
#: scalability argument for it.
_GLOBAL_SCALING_CAP = 256

#: Round budget per network size: the large grids exist to probe how
#: per-node energy/traffic scale with n, which stabilises within a few
#: windows, so the biggest networks run the fewest rounds.
def _scaling_rounds(profile: ExperimentProfile, nodes: int) -> int:
    if nodes <= 256:
        return profile.rounds
    if nodes <= 1024:
        return min(profile.rounds, 6)
    return min(profile.rounds, 3)


def scaling_node_counts(profile: ExperimentProfile) -> Tuple[int, ...]:
    """The node counts probed at this profile (quick: 32/64, paper: 1k/4k/16k)."""
    return _SCALING_COUNTS.get(profile.name, _SCALING_COUNTS["quick"])


def scaling_terrain(nodes: int) -> float:
    """Terrain side length keeping the paper's deployment density.

    The paper packs 53 sensors onto a 50 m x 50 m terrain; growing the
    terrain with ``sqrt(nodes / 53)`` keeps the sensor density (and with it
    the unit-disk degree distribution) constant, so the scaling sweep
    measures network *size*, not crowding.
    """
    from ..datasets.layout import DEFAULT_NODE_COUNT, DEFAULT_TERRAIN_SIZE

    return DEFAULT_TERRAIN_SIZE * math.sqrt(nodes / DEFAULT_NODE_COUNT)


def _scaling_configurations(
    window: int, nodes: int
) -> List[Tuple[str, DetectionConfig]]:
    configurations: List[Tuple[str, DetectionConfig]] = []
    if nodes <= _GLOBAL_SCALING_CAP:
        configurations.append(
            ("Global-NN",
             DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                             n_outliers=4, k=4, window_length=window))
        )
    configurations.append(
        ("Semi-global, epsilon=2",
         DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                         n_outliers=4, k=4, window_length=window, hop_diameter=2))
    )
    return configurations


def _scaling_scenario(
    profile: ExperimentProfile, detection: DetectionConfig, nodes: int
) -> ScenarioConfig:
    rounds = _scaling_rounds(profile, nodes)
    window = min(detection.window_length, rounds)
    return replace(
        profile.base_scenario(
            replace(detection, window_length=window), seed=0
        ),
        node_count=nodes,
        rounds=rounds,
        terrain_size=scaling_terrain(nodes),
    )


def scaling_scenarios(profile: ExperimentProfile) -> List[ScenarioConfig]:
    """One (single-seed) run per algorithm per network size."""
    window = _stress_window(profile)
    return [
        _scaling_scenario(profile, detection, nodes)
        for nodes in scaling_node_counts(profile)
        for _label, detection in _scaling_configurations(window, nodes)
    ]


#: Shard counts of the scaling sweep's sharded variants: 1 isolates the
#: message-bus coordination overhead, 4 is the headline parallel cut.
SCALING_SHARD_COUNTS = (1, 4)

#: Largest network the sharded variants are run at.  Sharded runs bypass
#: the result cache (sharding is an execution knob, not a scenario field,
#: so a sharded rerun would just hit the cache and measure nothing); the
#: cap keeps the report phase bounded at the paper profile.
_SHARD_SCALING_CAP = 4096


def scaling_shard_counts(profile: ExperimentProfile) -> Tuple[int, ...]:
    """The (at most two largest) node counts the sharded variants run at."""
    counts = [n for n in scaling_node_counts(profile) if n <= _SHARD_SCALING_CAP]
    return tuple(counts[-2:])


def run_scaling_shards(profile: ExperimentProfile) -> FigureResult:
    """Sharded-execution wall-clock of the semi-global scaling scenarios.

    Re-runs the two largest (capped) scaling networks partitioned across
    :data:`SCALING_SHARD_COUNTS` shard processes and reports wall-clock per
    series, next to the single-process wall-clock recorded on the cached
    result.  Every sharded transcript is asserted byte-identical
    (``canonical_json``) to the unsharded run before its time is reported
    -- the table is also a live equivalence check at scale.
    """
    import time as _time

    from ..core.errors import ExperimentError
    from ..orchestrator import store_only_active
    from ..wsn.runner import run_scenario

    window = _stress_window(profile)
    semi_global = next(
        detection
        for label, detection in _scaling_configurations(window, 1 << 30)
        if label.startswith("Semi-global")
    )
    counts = scaling_shard_counts(profile)
    if store_only_active():
        # Sharded timing is a *live* measurement (sharding is an execution
        # knob, not a scenario field, so it bypasses the result store); in
        # store-only mode -- the report pipeline proving its pages come
        # from the store alone -- only the cached single-process wall-clock
        # can be reported.
        single = [
            run_many([_scaling_scenario(profile, semi_global, nodes)])[0]
            for nodes in counts
        ]
        return FigureResult(
            figure="Scaling: sharded execution wall-clock [s]",
            x_label="nodes",
            x_values=[float(n) for n in counts],
            series={
                "single-process": [r.wallclock_seconds for r in single]
            },
            notes=(
                f"store-only mode: sharded variants skipped (they re-execute "
                f"live); single-process times are the cached run's own "
                f"wall-clock, profile={profile.name}"
            ),
        )
    wallclock: Dict[str, List[float]] = {"single-process": []}
    for shards in SCALING_SHARD_COUNTS:
        wallclock[f"shards={shards}"] = []
    for nodes in counts:
        scenario = _scaling_scenario(profile, semi_global, nodes)
        (baseline,) = run_many([scenario])
        wallclock["single-process"].append(baseline.wallclock_seconds)
        expected = baseline.canonical_json()
        for shards in SCALING_SHARD_COUNTS:
            started = _time.perf_counter()
            result = run_scenario(scenario, shards=shards)
            elapsed = _time.perf_counter() - started
            if result.canonical_json() != expected:
                raise ExperimentError(
                    f"sharded transcript diverged from the single-process "
                    f"run at {nodes} nodes, shards={shards}"
                )
            wallclock[f"shards={shards}"].append(elapsed)

    note = (
        f"semi-global epsilon=2, w<={window}, seed 0, transcripts asserted "
        f"byte-identical per cell; single-process times are the cached "
        f"run's own wall-clock, profile={profile.name}"
    )
    return FigureResult(
        figure="Scaling: sharded execution wall-clock [s]",
        x_label="nodes",
        x_values=[float(n) for n in counts],
        series=wallclock,
        notes=note,
    )


def run_scaling(profile: ExperimentProfile) -> Sequence[FigureResult]:
    """Per-node energy and traffic as the network grows.

    Counts above ``_GLOBAL_SCALING_CAP`` report ``nan`` for the global
    detector (it is not swept there, see the cap's docstring); the
    semi-global series covers every count.
    """
    window = _stress_window(profile)
    run_many(scaling_scenarios(profile))

    counts = scaling_node_counts(profile)
    labels = [
        label for label, _ in _scaling_configurations(window, min(counts))
    ]
    energy: Dict[str, List[float]] = {label: [] for label in labels}
    traffic: Dict[str, List[float]] = {label: [] for label in labels}
    for nodes in counts:
        ran = dict(_scaling_configurations(window, nodes))
        for label in labels:
            detection = ran.get(label)
            if detection is None:
                energy[label].append(float("nan"))
                traffic[label].append(float("nan"))
                continue
            scenario = _scaling_scenario(profile, detection, nodes)
            (result,) = run_many([scenario])
            energy[label].append(
                result.energy.average_per_node_per_round("total_joules")
            )
            traffic[label].append(
                result.channel.transmissions / (nodes * scenario.rounds)
            )

    note = (
        f"w<={window}, n=4, seed 0, density-preserving terrain, "
        f"global capped at {_GLOBAL_SCALING_CAP} nodes, profile={profile.name}"
    )
    x_values = [float(n) for n in counts]
    return (
        FigureResult(
            figure="Scaling: avg total energy per node per round [J]",
            x_label="nodes",
            x_values=x_values,
            series=energy,
            notes=note,
        ),
        FigureResult(
            figure="Scaling: transmissions per node per round",
            x_label="nodes",
            x_values=x_values,
            series=traffic,
            notes=note,
        ),
        run_scaling_shards(profile),
    )


# ----------------------------------------------------------------------
# New workload 3: metric-space sensitivity sweep
# ----------------------------------------------------------------------
#: Attribute order of the multi-attribute workload below:
#: ``(temperature, humidity, x, y)`` (one extra channel).  The weighted and
#: Mahalanobis parameterisations are sized for that 4-dimensional space.
_METRIC_DIMENSION_CHANNELS = 1

#: Weights emphasising the sensed readings over the deployment coordinates
#: (a spiked reading should dominate a sensor merely sitting at the edge of
#: the terrain).
_METRIC_WEIGHTS = (1.0, 0.5, 0.02, 0.02)

#: Roughly attribute-variance-scaled covariance with a mild
#: temperature-humidity correlation: Mahalanobis distance then measures
#: "how anomalous given the usual joint spread", the textbook use.
_METRIC_COV = (
    (9.0, 3.0, 0.0, 0.0),
    (3.0, 36.0, 0.0, 0.0),
    (0.0, 0.0, 200.0, 0.0),
    (0.0, 0.0, 0.0, 200.0),
)

#: Denser-than-default fault injection so even the tiny smoke grids contain
#: anomalies to recover (the default rates expect paper-scale streams).
#: Identical across metrics: every geometry is graded on the same faults.
_METRIC_INJECTION = InjectionConfig(
    spike_probability=0.08, stuck_probability=0.01, drift_probability=0.01
)

#: ``(series label, registry name, metric_params)`` per curve -- every
#: registered metric, all run over the *same* injected-anomaly datasets.
METRIC_VARIANTS = (
    ("Euclidean", "euclidean", ()),
    ("Manhattan", "manhattan", ()),
    ("Chebyshev", "chebyshev", ()),
    ("Weighted-Euclidean", "weighted-euclidean", (("weights", _METRIC_WEIGHTS),)),
    ("Mahalanobis", "mahalanobis", (("cov", _METRIC_COV),)),
)


def _metric_detection(metric: str, metric_params, window: int) -> DetectionConfig:
    return DetectionConfig(
        algorithm=Algorithm.GLOBAL, ranking="knn", n_outliers=4, k=4,
        window_length=window, metric=metric, metric_params=metric_params,
    )


def metric_sensitivity_windows(profile: ExperimentProfile) -> Tuple[int, ...]:
    """The window sizes probed (the profile's, clipped to fit the rounds)."""
    return tuple(w for w in profile.window_sizes if w <= profile.rounds)


def _metric_repetitions(
    profile: ExperimentProfile, metric: str, metric_params, window: int
) -> List[ScenarioConfig]:
    # Built directly (not via ``replace`` on a base scenario): the weighted
    # and Mahalanobis parameterisations only fit the 4-dimensional workload,
    # so an intermediate 3-dimensional scenario would fail the eager
    # metric-vs-dimension validation.
    detection = _metric_detection(metric, metric_params, window)
    return [
        ScenarioConfig(
            detection=detection,
            node_count=profile.node_count,
            rounds=profile.rounds,
            sampling_period=profile.sampling_period,
            injection=_METRIC_INJECTION,
            extra_channels=_METRIC_DIMENSION_CHANNELS,
            seed=seed,
        )
        for seed in range(profile.repetitions)
    ]


def metric_sensitivity_scenarios(profile: ExperimentProfile) -> List[ScenarioConfig]:
    """The full metric x window x repetition grid (4-dimensional points)."""
    return [
        scenario
        for _label, metric, metric_params in METRIC_VARIANTS
        for window in metric_sensitivity_windows(profile)
        for scenario in _metric_repetitions(profile, metric, metric_params, window)
    ]


def run_metric_sensitivity(profile: ExperimentProfile) -> Sequence[FigureResult]:
    """Convergence accuracy and injected-anomaly recovery per metric space.

    Every metric sees the *same* corrupted datasets (the dataset pipeline
    does not depend on the detection configuration), so differences between
    the curves are attributable to the geometry alone.  Two tables result:

    * the fraction of sensors whose converged estimate equals the reference
      answer (protocol convergence is metric-independent, so this should
      stay flat across metrics -- a live guard that the whole stack really
      works under every registered geometry);
    * the injected-anomaly precision of the converged reference answer --
      which fraction of the top-n outliers under that metric are really
      injected faults -- where the geometry genuinely matters.
    """
    run_many(metric_sensitivity_scenarios(profile))

    injected_cache: Dict[object, frozenset] = {}

    def injected_keys(scenario: ScenarioConfig) -> frozenset:
        config = scenario.dataset_config()
        if config not in injected_cache:
            dataset = build_intel_lab_dataset(config)
            injected_cache[config] = frozenset(dataset.injections.all_keys)
        return injected_cache[config]

    windows = metric_sensitivity_windows(profile)
    exact: Dict[str, List[float]] = {label: [] for label, _, _ in METRIC_VARIANTS}
    precision: Dict[str, List[float]] = {label: [] for label, _, _ in METRIC_VARIANTS}
    for label, metric, metric_params in METRIC_VARIANTS:
        for window in windows:
            scenarios = _metric_repetitions(profile, metric, metric_params, window)
            results = run_many(scenarios)
            exact[label].append(
                sum(r.accuracy.exact_fraction for r in results) / len(results)
            )
            hits: List[float] = []
            for scenario, result in zip(scenarios, results):
                injected = injected_keys(scenario)
                for reference in result.references.values():
                    hits.append(
                        len(set(reference) & injected) / len(reference)
                        if reference else 0.0
                    )
            precision[label].append(sum(hits) / len(hits) if hits else 0.0)

    note = (
        f"{profile.node_count} nodes, 4-d points (temperature, humidity, x, y), "
        f"Global-KNN n=4 k=4, {profile.repetitions} seed(s), profile={profile.name}"
    )
    x_values = [float(w) for w in windows]
    return (
        FigureResult(
            figure="Metric sensitivity: fraction of sensors with an exact estimate",
            x_label="window size w",
            x_values=x_values,
            series=exact,
            notes=note,
        ),
        FigureResult(
            figure="Metric sensitivity: injected-anomaly precision of the "
                   "reference top-n outliers",
            x_label="window size w",
            x_values=x_values,
            series=precision,
            notes=note,
        ),
    )


# ----------------------------------------------------------------------
# New workload 4: fault-and-churn robustness sweep
# ----------------------------------------------------------------------
#: Churn intensities probed, from the static baseline to a network where
#: half the nodes crash, a third of them stay dead, everyone duty-cycles
#: and a tenth of the sensors go permanently bad.  The x value of the
#: report tables is the crash probability.
CHURN_LEVELS: Tuple[Tuple[str, FaultConfig], ...] = (
    ("static", FaultConfig()),
    (
        "light",
        FaultConfig(
            crash_probability=0.25,
            recovery_probability=1.0,
            min_downtime_rounds=1,
            max_downtime_rounds=2,
        ),
    ),
    (
        "heavy",
        FaultConfig(
            crash_probability=0.5,
            recovery_probability=0.7,
            min_downtime_rounds=1,
            max_downtime_rounds=3,
            duty_cycle=0.75,
            duty_period_rounds=2,
            sensor_stuck_probability=0.1,
        ),
    ),
)

#: Same dense injection the metric sweep uses: even tiny smoke grids then
#: contain faults for the precision/latency metrics to recover.
_FAULT_INJECTION = _METRIC_INJECTION


def _fault_configurations(window: int) -> List[Tuple[str, DetectionConfig]]:
    return [
        ("Global-NN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                                      n_outliers=4, k=4, window_length=window)),
        ("Semi-global, epsilon=2",
         DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                         n_outliers=4, k=4, window_length=window, hop_diameter=2)),
    ]


def _fault_repetitions(
    profile: ExperimentProfile, detection: DetectionConfig, faults: FaultConfig
) -> List[ScenarioConfig]:
    return [
        replace(scenario, injection=_FAULT_INJECTION, faults=faults)
        for scenario in profile.repetition_scenarios(detection)
    ]


def fault_churn_scenarios(profile: ExperimentProfile) -> List[ScenarioConfig]:
    """The full churn-level x algorithm x repetition grid."""
    window = _stress_window(profile)
    return [
        scenario
        for _level, faults in CHURN_LEVELS
        for _label, detection in _fault_configurations(window)
        for scenario in _fault_repetitions(profile, detection, faults)
    ]


def run_fault_churn(profile: ExperimentProfile) -> Sequence[FigureResult]:
    """Robustness under node churn: availability, accuracy, fault recovery.

    Four tables over the churn axis (x = crash probability):

    * planned mean node availability (a sanity anchor: the availability the
      schedules imply, independent of any protocol);
    * convergence accuracy -- the paper's metric, now under churn.  The
      reference answer is computed over the points that actually entered
      the network, so the degradation measures protocol behaviour, not the
      impossibility of knowing unsampled data;
    * precision of the union of final estimates on injected faulty points
      (are the outliers the network reports actual faults?);
    * data-level detection latency of the injected faults under the same
      query (how many rounds until a fault is geometrically visible in the
      reference top-n) -- identical across algorithms by construction, so
      it is reported once per churn level.
    """
    window = _stress_window(profile)
    configurations = _fault_configurations(window)
    run_many(fault_churn_scenarios(profile))

    availability: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    accuracy: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    precision: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    latency: Dict[str, List[float]] = {"Reference (data-level)": []}
    dataset_cache: Dict[object, object] = {}

    def dataset_for(scenario: ScenarioConfig):
        config = scenario.dataset_config()
        if config not in dataset_cache:
            dataset_cache[config] = build_intel_lab_dataset(config)
        return dataset_cache[config]

    for _level, faults in CHURN_LEVELS:
        for label, detection in configurations:
            scenarios = _fault_repetitions(profile, detection, faults)
            results = run_many(scenarios)
            availability[label].append(
                sum(mean_availability(r) for r in results) / len(results)
            )
            accuracy[label].append(
                sum(r.accuracy.exact_fraction for r in results) / len(results)
            )
            precision[label].append(
                sum(
                    injected_point_scores(result, dataset_for(scenario)).precision
                    for scenario, result in zip(scenarios, results)
                )
                / len(results)
            )
        # Latency is a property of (dataset, query, window) only -- every
        # configuration shares those, so compute it once per level, over
        # the first configuration's repetitions.
        _first_label, first_detection = configurations[0]
        latency_samples: List[float] = [
            detection_latency(
                dataset_for(scenario),
                first_detection.make_query(),
                first_detection.window_length,
            ).mean_rounds
            for scenario in _fault_repetitions(profile, first_detection, faults)
        ]
        latency["Reference (data-level)"].append(
            sum(latency_samples) / len(latency_samples) if latency_samples else 0.0
        )

    note = (
        f"{profile.node_count} nodes, w={window}, n=4, levels "
        f"{'/'.join(level for level, _ in CHURN_LEVELS)}, "
        f"{profile.repetitions} seed(s), profile={profile.name}"
    )
    x_values = [float(faults.crash_probability) for _level, faults in CHURN_LEVELS]
    return (
        FigureResult(
            figure="Fault churn: planned mean node availability",
            x_label="crash probability",
            x_values=x_values,
            series=availability,
            notes=note,
        ),
        FigureResult(
            figure="Fault churn: fraction of sensors with an exact estimate",
            x_label="crash probability",
            x_values=x_values,
            series=accuracy,
            notes=note,
        ),
        FigureResult(
            figure="Fault churn: injected-fault precision of the union of "
                   "final estimates",
            x_label="crash probability",
            x_values=x_values,
            series=precision,
            notes=note,
        ),
        FigureResult(
            figure="Fault churn: mean detection latency of injected faults "
                   "[rounds]",
            x_label="crash probability",
            x_values=x_values,
            series=latency,
            notes=note,
        ),
    )


# ----------------------------------------------------------------------
# New workload 5: correlated burst loss vs i.i.d. loss
# ----------------------------------------------------------------------
#: Average loss rates at which the two channel models are compared.
BURST_RATES = (0.05, 0.1, 0.2)

#: Fixed shape of the Gilbert-Elliott chain: mean bad-burst length
#: ``1 / p_bad_to_good`` = 4 delivery attempts, 80% loss while bad.
_BURST_TO_GOOD = 0.25
_BURST_LOSS_BAD = 0.8


def _burst_config_for_rate(rate: float) -> FaultConfig:
    """Gilbert-Elliott parameters whose stationary loss equals ``rate``."""
    pi_bad = rate / _BURST_LOSS_BAD
    to_bad = _BURST_TO_GOOD * pi_bad / (1.0 - pi_bad)
    return FaultConfig(
        burst_to_bad=to_bad,
        burst_to_good=_BURST_TO_GOOD,
        burst_loss_bad=_BURST_LOSS_BAD,
    )


def _burst_detection(window: int) -> DetectionConfig:
    return DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                           n_outliers=4, k=4, window_length=window)


def _burst_scenarios_for(
    profile: ExperimentProfile, rate: float, bursty: bool
) -> List[ScenarioConfig]:
    detection = _burst_detection(_stress_window(profile))
    if bursty:
        return [
            replace(scenario, faults=_burst_config_for_rate(rate))
            for scenario in profile.repetition_scenarios(detection)
        ]
    return [
        replace(scenario, loss_probability=rate)
        for scenario in profile.repetition_scenarios(detection)
    ]


def burst_loss_scenarios(profile: ExperimentProfile) -> List[ScenarioConfig]:
    """The full rate x channel-model x repetition grid."""
    return [
        scenario
        for rate in BURST_RATES
        for bursty in (False, True)
        for scenario in _burst_scenarios_for(profile, rate, bursty)
    ]


def run_burst_loss(profile: ExperimentProfile) -> Sequence[FigureResult]:
    """Does loss *correlation* hurt beyond the average loss rate?

    Both series lose the same expected fraction of packets; the
    Gilbert-Elliott series loses them in bursts (mean bad-burst length 4,
    80% loss while bad).  Burst loss wipes out consecutive repair rounds of
    the same neighborhood, which the protocol tolerates worse than the
    same number of scattered losses -- the gap between the curves is the
    cost of correlation.  The second table reports the *observed* loss
    fraction as a live check that the two models really operate at the
    same average rate.
    """
    run_many(burst_loss_scenarios(profile))
    models = (("IID loss", False), ("Gilbert-Elliott burst", True))
    accuracy: Dict[str, List[float]] = {label: [] for label, _ in models}
    similarity: Dict[str, List[float]] = {label: [] for label, _ in models}
    observed: Dict[str, List[float]] = {label: [] for label, _ in models}
    for rate in BURST_RATES:
        for label, bursty in models:
            results = run_many(_burst_scenarios_for(profile, rate, bursty))
            accuracy[label].append(
                sum(r.accuracy.exact_fraction for r in results) / len(results)
            )
            similarity[label].append(
                sum(r.accuracy.mean_similarity for r in results) / len(results)
            )
            observed[label].append(
                sum(
                    r.channel.losses / (r.channel.losses + r.channel.deliveries)
                    if (r.channel.losses + r.channel.deliveries)
                    else 0.0
                    for r in results
                )
                / len(results)
            )

    window = _stress_window(profile)
    note = (
        f"{profile.node_count} nodes, w={window}, Global-NN n=4, mean "
        f"burst length {1.0 / _BURST_TO_GOOD:.0f}, "
        f"{profile.repetitions} seed(s), profile={profile.name}"
    )
    x_values = [float(rate) for rate in BURST_RATES]
    return (
        FigureResult(
            figure="Burst loss: fraction of sensors with an exact estimate",
            x_label="average loss rate",
            x_values=x_values,
            series=accuracy,
            notes=note,
        ),
        FigureResult(
            figure="Burst loss: mean Jaccard similarity of estimates to the "
                   "reference",
            x_label="average loss rate",
            x_values=x_values,
            series=similarity,
            notes=note,
        ),
        FigureResult(
            figure="Burst loss: observed per-delivery loss fraction",
            x_label="average loss rate",
            x_values=x_values,
            series=observed,
            notes=note,
        ),
    )


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def _flatten(report) -> Sequence[FigureResult]:
    """Normalise report outputs (single result, tuple or list) to a list."""
    if isinstance(report, FigureResult):
        return [report]
    return list(report)


_FAMILIES = (
    SweepFamily(
        name="figure4",
        description="Global detection: TX/RX energy vs window size "
                    "(Centralized / Global-NN / Global-KNN)",
        build=global_window_scenarios,
        report=lambda profile: _flatten(run_figure4(profile)),
    ),
    SweepFamily(
        name="figure5",
        description="Global detection: min/avg/max node energy vs window size "
                    "(same grid as figure4)",
        build=global_window_scenarios,
        report=lambda profile: _flatten(run_figure5(profile)),
    ),
    SweepFamily(
        name="figure6",
        description="Global detection: normalised per-node energy spread "
                    "(same grid as figure4)",
        build=global_window_scenarios,
        report=lambda profile: _flatten(run_figure6(profile)),
    ),
    SweepFamily(
        name="figure7",
        description="Semi-global detection (NN): TX/RX energy vs window size",
        build=lambda profile: semi_global_window_scenarios("nn", profile),
        report=lambda profile: _flatten(run_figure7(profile)),
    ),
    SweepFamily(
        name="figure8",
        description="Semi-global detection (KNN): TX/RX energy vs window size",
        build=lambda profile: semi_global_window_scenarios("knn", profile),
        report=lambda profile: _flatten(run_figure8(profile)),
    ),
    SweepFamily(
        name="figure9",
        description="Semi-global detection: TX/RX energy vs reported "
                    "outlier count n",
        # Window pinned to the benchmark suite's choice so the family's
        # store-rendered tables stay byte-identical to results/figure9.txt.
        build=lambda profile: outlier_count_scenarios(
            window=profile.window_sizes[-1], profile=profile
        ),
        report=lambda profile: _flatten(
            run_figure9(profile, window=profile.window_sizes[-1])
        ),
    ),
    SweepFamily(
        name="accuracy",
        description="Convergence accuracy per algorithm, with and without "
                    "packet loss (Section 7.1)",
        # Window pinned to the benchmark suite's choice (see
        # benchmarks/test_bench_accuracy.py) for the results/*.txt round-trip.
        build=lambda profile: accuracy_scenarios(
            profile, window=profile.window_sizes[0]
        ),
        report=lambda profile: _flatten(
            run_accuracy_experiment(profile, window=profile.window_sizes[0])
        ),
    ),
    SweepFamily(
        name="imbalance",
        description="Traffic concentration around the collection point "
                    "(Section 8)",
        # Window pinned to the benchmark suite's choice (see
        # benchmarks/test_bench_imbalance.py) for the results/*.txt round-trip.
        build=lambda profile: imbalance_scenarios(
            profile, window=profile.window_sizes[0]
        ),
        report=lambda profile: _flatten(
            run_imbalance_experiment(profile, window=profile.window_sizes[0])
        ),
    ),
    SweepFamily(
        name="example51",
        description="Section 5.1 worked example (in-memory protocol trace; "
                    "no simulated scenarios)",
        build=lambda profile: [],
        report=lambda profile: _flatten(run_example51()),
    ),
    SweepFamily(
        name="stress-loss",
        description="Packet-loss x algorithm stress grid: accuracy and "
                    "energy under 0-20% loss",
        build=stress_loss_scenarios,
        report=run_stress_loss,
    ),
    SweepFamily(
        name="scaling-nodes",
        description="Large-network scaling sweep (1k/4k/16k sensors at the "
                    "paper profile) for the distributed algorithms, with "
                    "sharded-execution variants at the two largest sizes",
        build=scaling_scenarios,
        report=run_scaling,
    ),
    SweepFamily(
        name="metric-sensitivity",
        description="Every registered metric space over the same "
                    "multi-attribute injected-anomaly workload: convergence "
                    "and injected-fault precision per geometry",
        build=metric_sensitivity_scenarios,
        report=run_metric_sensitivity,
    ),
    SweepFamily(
        name="fault-churn",
        description="Node crash/recovery + duty-cycle churn grid: "
                    "availability, accuracy, injected-fault precision and "
                    "detection latency per algorithm",
        build=fault_churn_scenarios,
        report=run_fault_churn,
    ),
    SweepFamily(
        name="burst-loss",
        description="Correlated Gilbert-Elliott burst loss vs i.i.d. loss "
                    "at matched average rates (the cost of burstiness)",
        build=burst_loss_scenarios,
        report=run_burst_loss,
    ),
)

for _family in _FAMILIES:
    register(_family, replace=True)
