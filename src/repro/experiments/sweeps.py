"""Registry declarations for every experiment sweep.

Importing this module (it is pulled in by :mod:`repro.experiments`)
registers a :class:`~repro.orchestrator.registry.SweepFamily` for each of
the paper's nine figure/experiment sweeps plus two non-figure workloads
that only exist because the orchestrator makes them cheap to declare:

* ``stress-loss`` -- a packet-loss x algorithm stress grid probing how each
  protocol's accuracy and energy degrade as the channel gets lossy;
* ``scaling-nodes`` -- a large-network scaling sweep (128/256 sensors at
  the ``paper`` profile, scaled down for ``quick``/``tiny``) for the
  distributed algorithms.

Every family is driven by ``repro-wsn sweep <name> --workers N --store D``:
the scenario grid resolves through the parallel executor and the optional
persistent store, then the family's report renders from warm cache.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from ..core.config import Algorithm, DetectionConfig
from ..orchestrator import SweepFamily, register
from ..wsn.scenario import ScenarioConfig
from .accuracy_experiment import accuracy_scenarios, run_accuracy_experiment
from .common import ExperimentProfile, FigureResult, run_many
from .example51 import run_example51
from .figure4 import global_window_scenarios, run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6
from .figure7 import run_figure7, semi_global_window_scenarios
from .figure8 import run_figure8
from .figure9 import outlier_count_scenarios, run_figure9
from .imbalance import imbalance_scenarios, run_imbalance_experiment

__all__ = [
    "LOSS_GRID",
    "stress_loss_scenarios",
    "run_stress_loss",
    "scaling_node_counts",
    "scaling_scenarios",
    "run_scaling",
]


# ----------------------------------------------------------------------
# New workload 1: packet-loss x algorithm stress grid
# ----------------------------------------------------------------------
#: Per-receiver loss probabilities of the stress grid (0 through severe).
LOSS_GRID = (0.0, 0.05, 0.1, 0.2)


def _stress_configurations(window: int) -> List[Tuple[str, DetectionConfig]]:
    return [
        ("Global-NN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                                      n_outliers=4, k=4, window_length=window)),
        ("Global-KNN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="knn",
                                       n_outliers=4, k=4, window_length=window)),
        ("Semi-global, epsilon=2",
         DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                         n_outliers=4, k=4, window_length=window, hop_diameter=2)),
        ("Centralized", DetectionConfig(algorithm=Algorithm.CENTRALIZED, ranking="nn",
                                        n_outliers=4, k=4, window_length=window)),
    ]


def _stress_window(profile: ExperimentProfile) -> int:
    # Keep the window inside the sampling schedule so it actually fills.
    return min(10, profile.rounds)


def stress_loss_scenarios(profile: ExperimentProfile) -> List[ScenarioConfig]:
    """The full loss x algorithm x repetition grid."""
    window = _stress_window(profile)
    return [
        replace(scenario, loss_probability=loss)
        for loss in LOSS_GRID
        for _label, detection in _stress_configurations(window)
        for scenario in profile.repetition_scenarios(detection)
    ]


def run_stress_loss(profile: ExperimentProfile) -> Sequence[FigureResult]:
    """Accuracy and energy of each algorithm as the channel degrades."""
    window = _stress_window(profile)
    configurations = _stress_configurations(window)
    run_many(stress_loss_scenarios(profile))

    accuracy: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    energy: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    for loss in LOSS_GRID:
        for label, detection in configurations:
            results = run_many(
                [
                    replace(scenario, loss_probability=loss)
                    for scenario in profile.repetition_scenarios(detection)
                ]
            )
            accuracy[label].append(
                sum(r.accuracy.exact_fraction for r in results) / len(results)
            )
            energy[label].append(
                sum(
                    r.energy.average_per_node_per_round("total_joules")
                    for r in results
                )
                / len(results)
            )

    note = (
        f"{profile.node_count} nodes, w={window}, n=4, "
        f"{profile.repetitions} seed(s), profile={profile.name}"
    )
    x_values = [float(loss) for loss in LOSS_GRID]
    return (
        FigureResult(
            figure="Loss stress: fraction of sensors with an exact estimate",
            x_label="loss probability",
            x_values=x_values,
            series=accuracy,
            notes=note,
        ),
        FigureResult(
            figure="Loss stress: avg total energy per node per round [J]",
            x_label="loss probability",
            x_values=x_values,
            series=energy,
            notes=note,
        ),
    )


# ----------------------------------------------------------------------
# New workload 2: large-network scaling sweep
# ----------------------------------------------------------------------
#: Network sizes per profile; the paper-scale grid probes 128/256 sensors,
#: far beyond the paper's 53-node deployment.
_SCALING_COUNTS = {
    "tiny": (8, 12),
    "quick": (32, 64),
    "paper": (128, 256),
}


def scaling_node_counts(profile: ExperimentProfile) -> Tuple[int, ...]:
    """The node counts probed at this profile (quick: 32/64, paper: 128/256)."""
    return _SCALING_COUNTS.get(profile.name, _SCALING_COUNTS["quick"])


def _scaling_configurations(window: int) -> List[Tuple[str, DetectionConfig]]:
    return [
        ("Global-NN", DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                                      n_outliers=4, k=4, window_length=window)),
        ("Semi-global, epsilon=2",
         DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                         n_outliers=4, k=4, window_length=window, hop_diameter=2)),
    ]


def scaling_scenarios(profile: ExperimentProfile) -> List[ScenarioConfig]:
    """One (single-seed) run per algorithm per network size."""
    window = _stress_window(profile)
    return [
        replace(profile.base_scenario(detection, seed=0), node_count=nodes)
        for nodes in scaling_node_counts(profile)
        for _label, detection in _scaling_configurations(window)
    ]


def run_scaling(profile: ExperimentProfile) -> Sequence[FigureResult]:
    """Per-node energy and traffic as the network grows."""
    window = _stress_window(profile)
    configurations = _scaling_configurations(window)
    run_many(scaling_scenarios(profile))

    counts = scaling_node_counts(profile)
    energy: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    traffic: Dict[str, List[float]] = {label: [] for label, _ in configurations}
    for nodes in counts:
        for label, detection in configurations:
            scenario = replace(
                profile.base_scenario(detection, seed=0), node_count=nodes
            )
            (result,) = run_many([scenario])
            energy[label].append(
                result.energy.average_per_node_per_round("total_joules")
            )
            traffic[label].append(
                result.channel.transmissions / (nodes * profile.rounds)
            )

    note = f"w={window}, n=4, seed 0, profile={profile.name}"
    x_values = [float(n) for n in counts]
    return (
        FigureResult(
            figure="Scaling: avg total energy per node per round [J]",
            x_label="nodes",
            x_values=x_values,
            series=energy,
            notes=note,
        ),
        FigureResult(
            figure="Scaling: transmissions per node per round",
            x_label="nodes",
            x_values=x_values,
            series=traffic,
            notes=note,
        ),
    )


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def _flatten(report) -> Sequence[FigureResult]:
    """Normalise report outputs (single result, tuple or list) to a list."""
    if isinstance(report, FigureResult):
        return [report]
    return list(report)


_FAMILIES = (
    SweepFamily(
        name="figure4",
        description="Global detection: TX/RX energy vs window size "
                    "(Centralized / Global-NN / Global-KNN)",
        build=global_window_scenarios,
        report=lambda profile: _flatten(run_figure4(profile)),
    ),
    SweepFamily(
        name="figure5",
        description="Global detection: min/avg/max node energy vs window size "
                    "(same grid as figure4)",
        build=global_window_scenarios,
        report=lambda profile: _flatten(run_figure5(profile)),
    ),
    SweepFamily(
        name="figure6",
        description="Global detection: normalised per-node energy spread "
                    "(same grid as figure4)",
        build=global_window_scenarios,
        report=lambda profile: _flatten(run_figure6(profile)),
    ),
    SweepFamily(
        name="figure7",
        description="Semi-global detection (NN): TX/RX energy vs window size",
        build=lambda profile: semi_global_window_scenarios("nn", profile),
        report=lambda profile: _flatten(run_figure7(profile)),
    ),
    SweepFamily(
        name="figure8",
        description="Semi-global detection (KNN): TX/RX energy vs window size",
        build=lambda profile: semi_global_window_scenarios("knn", profile),
        report=lambda profile: _flatten(run_figure8(profile)),
    ),
    SweepFamily(
        name="figure9",
        description="Semi-global detection: TX/RX energy vs reported "
                    "outlier count n",
        build=lambda profile: outlier_count_scenarios(profile=profile),
        report=lambda profile: _flatten(run_figure9(profile)),
    ),
    SweepFamily(
        name="accuracy",
        description="Convergence accuracy per algorithm, with and without "
                    "packet loss (Section 7.1)",
        build=accuracy_scenarios,
        report=lambda profile: _flatten(run_accuracy_experiment(profile)),
    ),
    SweepFamily(
        name="imbalance",
        description="Traffic concentration around the collection point "
                    "(Section 8)",
        build=imbalance_scenarios,
        report=lambda profile: _flatten(run_imbalance_experiment(profile)),
    ),
    SweepFamily(
        name="example51",
        description="Section 5.1 worked example (in-memory protocol trace; "
                    "no simulated scenarios)",
        build=lambda profile: [],
        report=lambda profile: _flatten(run_example51()),
    ),
    SweepFamily(
        name="stress-loss",
        description="Packet-loss x algorithm stress grid: accuracy and "
                    "energy under 0-20% loss",
        build=stress_loss_scenarios,
        report=run_stress_loss,
    ),
    SweepFamily(
        name="scaling-nodes",
        description="Large-network scaling sweep (128/256 sensors at the "
                    "paper profile) for the distributed algorithms",
        build=scaling_scenarios,
        report=run_scaling,
    ),
)

for _family in _FAMILIES:
    register(_family, replace=True)
