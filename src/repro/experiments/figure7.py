"""Figure 7: average TX and RX energy per node per round vs. sliding-window
size, for localized (semi-global) outlier detection with the
nearest-neighbor ranking function, ``epsilon`` in 1..3, compared against the
centralized baseline.

Expected shape: the centralized baseline is far above every semi-global
curve; semi-global energy increases with ``epsilon`` (points travel further)
and tends to decrease with ``w`` (window redundancy), as for Global-NN.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.config import Algorithm, DetectionConfig
from .common import (
    ExperimentProfile,
    FigureResult,
    active_profile,
    grid_scenarios,
    run_many,
    summarise,
)

__all__ = [
    "semi_global_window_scenarios",
    "semi_global_window_sweep",
    "run_figure7",
]


def _window_grid(
    profile: ExperimentProfile, ranking: str, n_outliers: int, k: int
) -> Dict[str, Dict[int, DetectionConfig]]:
    grid: Dict[str, Dict[int, DetectionConfig]] = {}
    grid["Centralized"] = {
        window: DetectionConfig(
            algorithm=Algorithm.CENTRALIZED,
            ranking="nn",
            n_outliers=n_outliers,
            k=k,
            window_length=window,
        )
        for window in profile.window_sizes
    }
    for epsilon in profile.hop_diameters:
        grid[f"Semi-global, epsilon={epsilon}"] = {
            window: DetectionConfig(
                algorithm=Algorithm.SEMI_GLOBAL,
                ranking=ranking,
                n_outliers=n_outliers,
                k=k,
                window_length=window,
                hop_diameter=epsilon,
            )
            for window in profile.window_sizes
        }
    return grid


def semi_global_window_scenarios(
    ranking: str,
    profile: Optional[ExperimentProfile] = None,
    n_outliers: int = 4,
    k: int = 4,
) -> list:
    """Every scenario of the semi-global window sweep (Figures 7 and 8)."""
    profile = profile or active_profile()
    return grid_scenarios(profile, _window_grid(profile, ranking, n_outliers, k))


def semi_global_window_sweep(
    ranking: str,
    profile: Optional[ExperimentProfile] = None,
    n_outliers: int = 4,
    k: int = 4,
) -> Dict[str, Dict[int, "object"]]:
    """``{label: {window: EnergySummary}}`` for the semi-global sweep with the
    given ranking function plus the centralized baseline.  The whole grid is
    prefetched through the orchestrator in one batch."""
    profile = profile or active_profile()
    grid = _window_grid(profile, ranking, n_outliers, k)
    run_many(grid_scenarios(profile, grid))

    sweep: Dict[str, Dict[int, object]] = {}
    for label, per_window in grid.items():
        sweep[label] = {}
        for window, detection in per_window.items():
            summary, _ = summarise(detection, profile)
            sweep[label][window] = summary
    return sweep


def _window_figures(
    sweep: Dict[str, Dict[int, "object"]],
    profile: ExperimentProfile,
    figure_name: str,
    ranking_label: str,
) -> Tuple[FigureResult, FigureResult]:
    windows = list(profile.window_sizes)
    note = (
        f"{profile.node_count} nodes, n=4, {ranking_label} ranking, "
        f"profile={profile.name}"
    )
    tx = FigureResult(
        figure=f"{figure_name} (TX): avg TX energy per node per round [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series={
            label: [sweep[label][w].avg_tx_per_round for w in windows]
            for label in sweep
        },
        notes=note,
    )
    rx = FigureResult(
        figure=f"{figure_name} (RX): avg RX energy per node per round [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series={
            label: [sweep[label][w].avg_rx_per_round for w in windows]
            for label in sweep
        },
        notes=note,
    )
    return tx, rx


def run_figure7(
    profile: Optional[ExperimentProfile] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Reproduce Figure 7 (semi-global, NN ranking)."""
    profile = profile or active_profile()
    sweep = semi_global_window_sweep("nn", profile)
    return _window_figures(sweep, profile, "Figure 7", "NN")
