"""Figure 7: average TX and RX energy per node per round vs. sliding-window
size, for localized (semi-global) outlier detection with the
nearest-neighbor ranking function, ``epsilon`` in 1..3, compared against the
centralized baseline.

Expected shape: the centralized baseline is far above every semi-global
curve; semi-global energy increases with ``epsilon`` (points travel further)
and tends to decrease with ``w`` (window redundancy), as for Global-NN.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.config import Algorithm, DetectionConfig
from .common import ExperimentProfile, FigureResult, active_profile, summarise

__all__ = ["semi_global_window_sweep", "run_figure7"]


def semi_global_window_sweep(
    ranking: str,
    profile: Optional[ExperimentProfile] = None,
    n_outliers: int = 4,
    k: int = 4,
) -> Dict[str, Dict[int, "object"]]:
    """``{label: {window: EnergySummary}}`` for the semi-global sweep with the
    given ranking function plus the centralized baseline."""
    profile = profile or active_profile()
    sweep: Dict[str, Dict[int, object]] = {}

    centralized = "Centralized"
    sweep[centralized] = {}
    for window in profile.window_sizes:
        detection = DetectionConfig(
            algorithm=Algorithm.CENTRALIZED,
            ranking="nn",
            n_outliers=n_outliers,
            k=k,
            window_length=window,
        )
        summary, _ = summarise(detection, profile)
        sweep[centralized][window] = summary

    for epsilon in profile.hop_diameters:
        label = f"Semi-global, epsilon={epsilon}"
        sweep[label] = {}
        for window in profile.window_sizes:
            detection = DetectionConfig(
                algorithm=Algorithm.SEMI_GLOBAL,
                ranking=ranking,
                n_outliers=n_outliers,
                k=k,
                window_length=window,
                hop_diameter=epsilon,
            )
            summary, _ = summarise(detection, profile)
            sweep[label][window] = summary
    return sweep


def _window_figures(
    sweep: Dict[str, Dict[int, "object"]],
    profile: ExperimentProfile,
    figure_name: str,
    ranking_label: str,
) -> Tuple[FigureResult, FigureResult]:
    windows = list(profile.window_sizes)
    note = (
        f"{profile.node_count} nodes, n=4, {ranking_label} ranking, "
        f"profile={profile.name}"
    )
    tx = FigureResult(
        figure=f"{figure_name} (TX): avg TX energy per node per round [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series={
            label: [sweep[label][w].avg_tx_per_round for w in windows]
            for label in sweep
        },
        notes=note,
    )
    rx = FigureResult(
        figure=f"{figure_name} (RX): avg RX energy per node per round [J]",
        x_label="w",
        x_values=[float(w) for w in windows],
        series={
            label: [sweep[label][w].avg_rx_per_round for w in windows]
            for label in sweep
        },
        notes=note,
    )
    return tx, rx


def run_figure7(
    profile: Optional[ExperimentProfile] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Reproduce Figure 7 (semi-global, NN ranking)."""
    profile = profile or active_profile()
    sweep = semi_global_window_sweep("nn", profile)
    return _window_figures(sweep, profile, "Figure 7", "NN")
