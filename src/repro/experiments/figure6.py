"""Figure 6: per-node energy consumption normalised by the network average,
for selected window sizes, for global outlier detection.

The paper reports that at ``w = 10`` the hottest node of the centralized
baseline consumes nearly three times the average, while under the
distributed algorithms the hottest node stays below twice the average.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.errors import ExperimentError
from .common import ExperimentProfile, FigureResult, active_profile
from .figure4 import global_window_sweep

__all__ = ["run_figure6", "FIGURE6_WINDOWS"]

#: Window sizes shown as separate bar groups in the paper's Figure 6.  Only
#: the sizes present in the active profile's sweep are reported.
FIGURE6_WINDOWS = (5, 10, 15, 20, 40)


def run_figure6(
    profile: Optional[ExperimentProfile] = None,
) -> List[FigureResult]:
    """Reproduce Figure 6: one normalised min/avg/max result per window size.

    Each :class:`FigureResult` has the algorithms on the x axis (encoded as
    indices, with the mapping recorded in ``notes``) and three series:
    ``min``, ``avg`` (always 1.0) and ``max``, all normalised by the average
    node energy of that algorithm.
    """
    profile = profile or active_profile()
    sweep = global_window_sweep(profile)
    labels = list(sweep)
    windows = [w for w in FIGURE6_WINDOWS if w in profile.window_sizes]
    if not windows:
        raise ExperimentError(
            "none of Figure 6's window sizes are present in the active profile"
        )

    results: List[FigureResult] = []
    for window in windows:
        series: Dict[str, List[float]] = {"min": [], "avg": [], "max": []}
        for label in labels:
            summary = sweep[label][window]
            series["min"].append(summary.normalised_min)
            series["avg"].append(1.0)
            series["max"].append(summary.normalised_max)
        results.append(
            FigureResult(
                figure=f"Figure 6 (w={window}): node energy normalised by the average",
                x_label="algorithm",
                x_values=[float(i) for i in range(len(labels))],
                series=series,
                notes="algorithms: " + ", ".join(
                    f"{i}={label}" for i, label in enumerate(labels)
                ),
            )
        )
    return results
