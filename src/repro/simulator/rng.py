"""Seeded random-number streams for reproducible simulations.

Every stochastic component of the simulator (channel loss, jitter, workload
generation) draws from its own named stream derived from a single master
seed, so adding a new consumer of randomness never perturbs the draws seen by
existing components -- a standard trick for keeping simulation experiments
comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent :class:`random.Random` streams.

    Parameters
    ----------
    master_seed:
        Seed of the whole family.  Two families created with the same master
        seed produce identical streams for identical names.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a sub-family, e.g. one per simulation repetition."""
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[8:16], "big"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomStreams(master_seed={self.master_seed})"
