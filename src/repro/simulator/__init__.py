"""Discrete-event simulation engine (the SENSE substitute).

Exports the :class:`Simulator` event loop, the :class:`Event` primitive and
the :class:`RandomStreams` seeded randomness helper.
"""

from .engine import Simulator
from .events import Event, EventPriority
from .rng import RandomStreams

__all__ = ["Simulator", "Event", "EventPriority", "RandomStreams"]
