"""Discrete-event simulation engine.

This is the scheduling core of the WSN simulator that replaces SENSE in the
reproduction: a priority queue of timestamped events, a simulated clock, and
a handful of convenience methods for periodic activities.  The engine is
single-threaded and deterministic: given the same seed and the same sequence
of ``schedule`` calls it always produces the same execution.

Determinism rests on the event total order ``(time, priority, gen, pkey,
idx, sequence)`` documented in :mod:`repro.simulator.events`: the heap pops
events in exactly that order, :meth:`Simulator.step` asserts the clock never
runs backwards, and replaying an identical sequence of ``schedule`` calls
replays an identical execution.  :meth:`Simulator.run_exclusive` exposes the
barrier primitive the sharded message bus (``repro.shard``) builds its
lockstep epochs on: execute everything strictly before a grant time, never
fast-forward the clock.

Lineage tracking
----------------
A plain ``Simulator()`` breaks ties among simultaneous events with the
process-wide ``sequence`` counter -- scheduling order.  That counter is
meaningless across processes, so ``Simulator(lineage=True)`` additionally
stamps every event with a *lineage* triple ``(gen, pkey, idx)``:

* ``gen`` -- the cascade generation within the event's ``(time, priority)``
  class: 0 for events scheduled from outside that class (setup, earlier
  instants, other priorities), parent's generation + 1 for an event
  scheduled *at the same instant and priority* as its scheduling parent;
* ``pkey`` -- the scheduling parent's full lineage sort key (empty for
  events scheduled outside any event execution);
* ``idx`` -- the index among the parent's schedule calls (or a per-process
  counter of outside-execution schedule calls).

Within one process the lineage order is provably the sequence order --
simultaneous events fire generation by generation, within a generation in
parent execution order, within a parent in schedule-call order, which is
exactly how the sequence counter grows -- so switching lineage on never
changes an execution.  What it buys is that the key is *locally
computable*: a shard worker that receives a cross-shard delivery stamped
with the sender's lineage (see ``allocate_lineage``) slots it among its own
simultaneous events exactly where the single-process schedule would have.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..core.errors import SimulationError
from .events import Event, EventPriority

__all__ = ["Simulator"]

#: A lineage triple ``(gen, pkey, idx)`` -- see the module docstring.
LineageKey = Tuple[int, Tuple[Any, ...], int]


class Simulator:
    """Event queue plus simulated clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> _ = sim.schedule(0.5, fired.append, "world")
    >>> sim.run()
    >>> fired
    ['world', 'hello']
    >>> sim.now
    1.5
    """

    def __init__(self, lineage: bool = False) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._running = False
        self.events_executed = 0
        self.events_scheduled = 0
        self._lineage = lineage
        #: Event currently being fired (lineage mode only).
        self._current: Optional[Event] = None
        #: Schedule calls made by the current event so far.
        self._child_idx = 0
        #: Schedule calls made outside any event execution so far.
        self._root_idx = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Lineage
    # ------------------------------------------------------------------
    @property
    def tracks_lineage(self) -> bool:
        """Whether this simulator stamps events with lineage keys."""
        return self._lineage

    @property
    def current_lineage_key(self) -> Optional[Tuple[Any, ...]]:
        """Full lineage sort key of the event being fired right now.

        ``None`` outside event execution or on a non-lineage simulator.
        The shard runtime records energy charges under this key so a
        replayed fold can reconstruct the single-process charge order.
        """
        if self._current is None:
            return None
        return self._current.lineage_key

    def allocate_lineage(self, time: float, priority: int) -> LineageKey:
        """Consume and return the lineage an event scheduled *now* at
        ``(time, priority)`` would receive.

        The shard channel calls this for a delivery that crosses to another
        process: the crossing occupies a schedule-call slot of the
        transmitting event exactly like a local delivery would, and the
        returned key ships with the crossing so the receiving shard can
        schedule it under the sender's lineage (see
        ``schedule_at(..., lineage=...)``).
        """
        if not self._lineage:
            raise SimulationError("allocate_lineage requires Simulator(lineage=True)")
        return self._next_lineage(time, priority)

    def _next_lineage(self, time: float, priority: int) -> LineageKey:
        parent = self._current
        if parent is not None:
            gen = (
                parent.gen + 1
                if time == parent.time and priority == parent.priority
                else 0
            )
            idx = self._child_idx
            self._child_idx += 1
            return (gen, parent.lineage_key, idx)
        idx = self._root_idx
        self._root_idx += 1
        return (0, (), idx)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        name: str = "",
        lineage: Optional[LineageKey] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``.

        ``lineage`` (lineage mode only) overrides the computed lineage
        triple; the sharded bus passes the sender-side key of a
        cross-process delivery here.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time t={self._now}"
            )
        if self._lineage:
            gen, pkey, idx = (
                lineage if lineage is not None else self._next_lineage(time, priority)
            )
            event = Event(
                time=time, priority=priority, gen=gen, pkey=pkey, idx=idx,
                callback=callback, args=args, name=name,
            )
        else:
            event = Event(
                time=time, priority=priority, callback=callback, args=args,
                name=name,
            )
        heapq.heappush(self._queue, event)
        self.events_scheduled += 1
        return event

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        until: Optional[float] = None,
        name: str = "",
    ) -> None:
        """Run ``callback(*args)`` every ``period`` seconds.

        The first invocation happens at ``start`` (defaults to one period from
        now); invocations stop once the next occurrence would be strictly
        after ``until``.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first = self._now + period if start is None else start

        def _tick(when: float) -> None:
            callback(*args)
            nxt = when + period
            if until is None or nxt <= until:
                self.schedule_at(nxt, _tick, nxt, name=name or "periodic")

        if until is None or first <= until:
            self.schedule_at(first, _tick, first, name=name or "periodic")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            # The (time, priority, gen, pkey, idx, sequence) total order
            # forbids the clock from ever moving backwards;
            # schedule()/schedule_at() reject past events, so a violation
            # here would mean heap corruption.
            assert event.time >= self._now, (
                f"event total order violated: t={event.time} < now={self._now}"
            )
            self._now = event.time
            if self._lineage:
                self._current = event
                self._child_idx = 0
                try:
                    event.fire()
                finally:
                    self._current = None
            else:
                event.fire()
            self.events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, time ``until`` is reached, or
        ``max_events`` events have been executed."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                executed += 1
            if until is not None and self._now < until and (
                not self._queue or self._queue[0].time > until
            ):
                # Advance the clock to the end of the observation window so
                # that idle-energy accounting covers the full interval.
                self._now = until
        finally:
            self._running = False

    def run_exclusive(self, until: float) -> None:
        """Execute every pending event with ``time`` strictly below ``until``.

        The barrier primitive of the sharded message bus: a worker is granted
        an epoch ``[now, until)`` that is causally closed (no other shard can
        inject an event before ``until``), executes exactly the events inside
        it, and reports back.  Two differences from :meth:`run`:

        * the bound is *exclusive* -- an event at exactly ``until`` stays
          queued, so a grant computed as ``min next event + lookahead`` can
          never execute an event another shard is still allowed to affect;
        * the clock is never fast-forwarded to ``until`` -- it stays at the
          last executed event, so repeated grants observe the same clock a
          single uninterrupted run would have.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if head.time >= until:
                    break
                self.step()
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support for runtime checkpoints (see :mod:`repro.recovery`).

        Capture is only legal *between* events: a half-executed callback is
        not reconstructible, so pickling a running simulator is refused
        rather than silently snapshotting an inconsistent instant.  The
        event heap pickles as-is -- a heap's list layout is itself valid
        heap order, so restoring needs no re-heapify.
        """
        if self._running or self._current is not None:
            raise SimulationError(
                "cannot checkpoint a running simulator; capture only at a "
                "quiescent point between events"
            )
        return dict(self.__dict__)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle.

        Cancelled events at the head of the heap are lazily discarded here
        (mirroring :meth:`step`) so repeated peeks stay ``O(1)`` amortised
        instead of sorting the whole queue on every call.
        """
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            return head.time
        return None
