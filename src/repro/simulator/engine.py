"""Discrete-event simulation engine.

This is the scheduling core of the WSN simulator that replaces SENSE in the
reproduction: a priority queue of timestamped events, a simulated clock, and
a handful of convenience methods for periodic activities.  The engine is
single-threaded and deterministic: given the same seed and the same sequence
of ``schedule`` calls it always produces the same execution.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..core.errors import SimulationError
from .events import Event, EventPriority

__all__ = ["Simulator"]


class Simulator:
    """Event queue plus simulated clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> _ = sim.schedule(0.5, fired.append, "world")
    >>> sim.run()
    >>> fired
    ['world', 'hello']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._running = False
        self.events_executed = 0
        self.events_scheduled = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time t={self._now}"
            )
        event = Event(time=time, priority=priority, callback=callback, args=args, name=name)
        heapq.heappush(self._queue, event)
        self.events_scheduled += 1
        return event

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        until: Optional[float] = None,
        name: str = "",
    ) -> None:
        """Run ``callback(*args)`` every ``period`` seconds.

        The first invocation happens at ``start`` (defaults to one period from
        now); invocations stop once the next occurrence would be strictly
        after ``until``.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first = self._now + period if start is None else start

        def _tick(when: float) -> None:
            callback(*args)
            nxt = when + period
            if until is None or nxt <= until:
                self.schedule_at(nxt, _tick, nxt, name=name or "periodic")

        if until is None or first <= until:
            self.schedule_at(first, _tick, first, name=name or "periodic")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self.events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, time ``until`` is reached, or
        ``max_events`` events have been executed."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                executed += 1
            if until is not None and self._now < until and (
                not self._queue or self._queue[0].time > until
            ):
                # Advance the clock to the end of the observation window so
                # that idle-energy accounting covers the full interval.
                self._now = until
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle.

        Cancelled events at the head of the heap are lazily discarded here
        (mirroring :meth:`step`) so repeated peeks stay ``O(1)`` amortised
        instead of sorting the whole queue on every call.
        """
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            return head.time
        return None
