"""Event objects for the discrete-event simulation engine.

An :class:`Event` is a callback scheduled at a simulated time.  Events are
totally ordered by ``(time, priority, sequence)`` so that simultaneous events
fire in a deterministic order: first by explicit priority, then by scheduling
order.  Cancelled events stay in the heap but are skipped when popped, which
keeps cancellation O(1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = ["Event", "EventPriority"]


class EventPriority:
    """Relative ordering of events that fire at the same instant.

    ``FAULT`` sorts before everything else: availability flips from a
    fault-model schedule (node crash/recovery, duty-cycle sleep) must take
    effect before any sample, transmission or delivery that shares the same
    instant, so "the node was down at time t" has one unambiguous meaning.
    """

    FAULT = -10
    HIGH = 0
    NORMAL = 10
    LOW = 20


_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Only ``time``, ``priority`` and ``sequence`` participate in ordering; the
    callback and its arguments are compared by identity never.
    """

    time: float
    priority: int = EventPriority.NORMAL
    sequence: int = field(default_factory=lambda: next(_sequence))
    callback: Optional[Callable[..., Any]] = field(default=None, compare=False)
    args: Tuple[Any, ...] = field(default=(), compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the callback (no-op when cancelled or callback-less)."""
        if self.cancelled or self.callback is None:
            return None
        return self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or getattr(self.callback, "__name__", "callback")
        state = " (cancelled)" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, {label}{state})"
