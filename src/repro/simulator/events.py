"""Event objects for the discrete-event simulation engine.

An :class:`Event` is a callback scheduled at a simulated time.  Events are
totally ordered by ``(time, priority, gen, pkey, idx, sequence)`` so that
simultaneous events fire in a deterministic order: first by explicit
priority, then by scheduling order.  Cancelled events stay in the heap but
are skipped when popped, which keeps cancellation O(1).

Total-order contract
--------------------
The tuple exposed as :attr:`Event.sort_key` is a *contract*, not an
implementation detail.  Determinism of every transcript in this repository
reduces to it:

* ``time`` is the simulated instant, compared first;
* ``priority`` breaks ties at one instant (:class:`EventPriority`; lower
  fires first, so ``FAULT`` availability flips precede same-instant traffic);
* ``gen``/``pkey``/``idx`` are the event's *lineage*: the cascade
  generation within its ``(time, priority)`` class, the full sort key of
  the event that scheduled it, and its index among that parent's schedule
  calls.  A plain single-process simulator leaves them at their neutral
  defaults ``(0, (), 0)`` -- every comparison falls through to
  ``sequence`` and the order is exactly the classic
  ``(time, priority, sequence)``.  A lineage-tracking simulator
  (``Simulator(lineage=True)``, used by the shard workers of
  ``repro.shard``) fills them in, which reproduces that same order from
  locally computable data: simultaneous events fire generation by
  generation, within a generation in their parents' execution order, and
  within one parent in schedule-call order -- precisely the order the
  process-wide ``sequence`` counter encodes when one process schedules
  everything.  Because ``pkey`` nests the parent's own sort key, a lineage
  key is meaningful *across* processes: the sharded bus ships it with each
  cross-shard delivery so the receiving shard can slot the delivery among
  its own same-instant events exactly where the single-process schedule
  would have;
* ``sequence`` is a process-wide monotonically increasing counter stamped
  at construction, the final tie-break, so events that tie on everything
  else fire in exactly the order they were scheduled.

``tests/test_simulator.py`` pins the contract with property tests,
including the equivalence of the neutral and lineage orders.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = ["Event", "EventPriority"]


class EventPriority:
    """Relative ordering of events that fire at the same instant.

    ``FAULT`` sorts before everything else: availability flips from a
    fault-model schedule (node crash/recovery, duty-cycle sleep) must take
    effect before any sample, transmission or delivery that shares the same
    instant, so "the node was down at time t" has one unambiguous meaning.
    """

    FAULT = -10
    HIGH = 0
    NORMAL = 10
    LOW = 20


_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Only ``time``, ``priority``, the lineage triple ``(gen, pkey, idx)``
    and ``sequence`` participate in ordering; the callback and its
    arguments are compared by identity never.
    """

    time: float
    priority: int = EventPriority.NORMAL
    gen: int = 0
    pkey: Tuple[Any, ...] = ()
    idx: int = 0
    sequence: int = field(default_factory=lambda: next(_sequence))
    callback: Optional[Callable[..., Any]] = field(default=None, compare=False)
    args: Tuple[Any, ...] = field(default=(), compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    @property
    def sort_key(self) -> Tuple[float, int, int, Tuple[Any, ...], int, int]:
        """The total-order key ``(time, priority, gen, pkey, idx, sequence)``.

        This is exactly the comparison the dataclass ordering performs; it is
        exposed so tests and the sharded message bus can assert against the
        contract instead of re-deriving it.
        """
        return (
            self.time, self.priority, self.gen, self.pkey, self.idx,
            self.sequence,
        )

    @property
    def lineage_key(self) -> Tuple[float, int, int, Tuple[Any, ...], int]:
        """The process-independent prefix of :attr:`sort_key`.

        This is what a lineage-tracking simulator nests into children's
        ``pkey`` and what crossings carry between shards: everything except
        the process-local ``sequence`` counter.
        """
        return (self.time, self.priority, self.gen, self.pkey, self.idx)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the callback (no-op when cancelled or callback-less)."""
        if self.cancelled or self.callback is None:
            return None
        return self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or getattr(self.callback, "__name__", "callback")
        state = " (cancelled)" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, {label}{state})"
