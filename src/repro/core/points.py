"""Data-point model used by the outlier detection algorithms.

The paper (Section 4.1) works over an abstract data space ``D`` together with
a fixed total linear order ``≺`` that is used to break ties so that the
ranking function ``R(., Q)`` induces a strict total order.  Section 6 extends
points with a *hop* field used by the semi-global algorithm; the remaining
fields are collectively called ``x.rest``.

:class:`DataPoint` captures exactly this structure:

* ``values`` -- the numeric attributes consumed by the ranking function
  (e.g. ``(temperature, x, y)`` for the Intel-Lab workload),
* ``origin`` -- identifier of the sensor that sampled the point,
* ``epoch``  -- sequential sample number within the origin's stream,
* ``timestamp`` -- sampling time used by the sliding-window model,
* ``hop``    -- hop distance travelled from the origin (always ``0`` for the
  global algorithm).

Two points with equal ``rest`` fields but different ``hop`` values are
different :class:`DataPoint` instances; the semi-global algorithm collapses
them with :func:`min_hop_merge` (the ``[Q]^min`` operator of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence, Tuple

from .metrics import Metric

__all__ = [
    "DataPoint",
    "RestKey",
    "distance",
    "sort_key",
    "min_hop_merge",
    "restrict_by_hop",
    "make_point",
]

#: Key identifying the ``rest`` fields of a point (everything except ``hop``).
RestKey = Tuple[Tuple[float, ...], int, int]


@dataclass(frozen=True, order=False)
class DataPoint:
    """A single immutable sensor observation.

    Instances are hashable and can therefore be stored in sets, which is how
    the detectors represent the datasets ``D_i``, ``P_i`` and the per-neighbor
    bookkeeping sets ``D_{i,j}``.
    """

    values: Tuple[float, ...]
    origin: int
    epoch: int
    timestamp: float = 0.0
    hop: int = 0

    def __post_init__(self) -> None:
        # Normalise the value container to a tuple of floats so that equality
        # and hashing behave identically regardless of the caller's container.
        object.__setattr__(self, "values", tuple(float(v) for v in self.values))
        # Points live in sets and dict keys on every hot path (holdings,
        # per-neighbor buckets, the neighborhood index); an immutable point is
        # hashed thousands of times per protocol event, so the hash is
        # computed once.  Equal points (all fields, timestamp included) agree
        # on this hash; points differing only in timestamp merely collide.
        object.__setattr__(
            self,
            "_cached_hash",
            hash((self.values, self.origin, self.epoch, self.hop)),
        )

    def __hash__(self) -> int:
        return self._cached_hash

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def rest(self) -> RestKey:
        """The ``x.rest`` fields of the paper: everything except ``hop``."""
        return (self.values, self.origin, self.epoch)

    @property
    def dimension(self) -> int:
        """Number of numeric attributes."""
        return len(self.values)

    def with_hop(self, hop: int) -> "DataPoint":
        """Return a copy of this point with the ``hop`` field replaced."""
        if hop < 0:
            raise ValueError(f"hop must be non-negative, got {hop}")
        return replace(self, hop=hop)

    def incremented(self) -> "DataPoint":
        """Return a copy with ``hop`` incremented by one (used before
        forwarding a point to a neighbor in the semi-global algorithm)."""
        return replace(self, hop=self.hop + 1)

    def same_rest(self, other: "DataPoint") -> bool:
        """True when the two points differ at most in their ``hop`` field."""
        return self.rest == other.rest

    # ------------------------------------------------------------------
    # Ordering: the fixed total linear order ``≺`` used for tie-breaking.
    # ------------------------------------------------------------------
    def __lt__(self, other: "DataPoint") -> bool:
        if not isinstance(other, DataPoint):
            return NotImplemented
        return sort_key(self) < sort_key(other)

    def __le__(self, other: "DataPoint") -> bool:
        if not isinstance(other, DataPoint):
            return NotImplemented
        return sort_key(self) <= sort_key(other)

    def __gt__(self, other: "DataPoint") -> bool:
        if not isinstance(other, DataPoint):
            return NotImplemented
        return sort_key(self) > sort_key(other)

    def __ge__(self, other: "DataPoint") -> bool:
        if not isinstance(other, DataPoint):
            return NotImplemented
        return sort_key(self) >= sort_key(other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(f"{v:g}" for v in self.values)
        return (
            f"DataPoint(({vals}), origin={self.origin}, epoch={self.epoch}, "
            f"t={self.timestamp:g}, hop={self.hop})"
        )


def make_point(
    values: Sequence[float],
    origin: int,
    epoch: int,
    timestamp: float | None = None,
    hop: int = 0,
) -> DataPoint:
    """Convenience constructor.

    When ``timestamp`` is omitted the epoch number is used as the timestamp,
    which matches the common case of one sample per sampling period.
    """
    ts = float(epoch) if timestamp is None else float(timestamp)
    return DataPoint(tuple(values), origin=origin, epoch=epoch, timestamp=ts, hop=hop)


def sort_key(point: DataPoint) -> Tuple[Tuple[float, ...], int, int]:
    """The fixed total linear order ``≺`` on the data space.

    The order is defined on the ``rest`` fields only, so two copies of a point
    that differ only in their hop count compare equal under ``≺`` (they are
    "the same point" as far as the ranking function is concerned).
    """
    return (point.values, point.origin, point.epoch)


def distance(a: DataPoint, b: DataPoint, metric: Optional[Metric] = None) -> float:
    """Distance between the value vectors of two points.

    Without a ``metric`` this is the Euclidean distance computed by
    :func:`math.dist` (the repository's historical default, kept on the
    fast path with its original ``ValueError`` contract).  Pass any
    :class:`~repro.core.metrics.Metric` to measure under a different
    geometry; the metric raises
    :class:`~repro.core.errors.RankingError` on dimension mismatch.
    """
    if metric is not None:
        return metric.distance(a.values, b.values)
    if len(a.values) != len(b.values):
        raise ValueError(
            f"dimension mismatch: {len(a.values)} != {len(b.values)}"
        )
    return math.dist(a.values, b.values)


def min_hop_merge(points: Iterable[DataPoint]) -> list[DataPoint]:
    """The ``[Q]^min`` operator of Section 6.

    Among points that share the same ``rest`` fields, only the one with the
    smallest hop count is retained.  The result is returned in ``≺`` order so
    that the operation is deterministic.
    """
    best: dict[RestKey, DataPoint] = {}
    for point in points:
        current = best.get(point.rest)
        if current is None or point.hop < current.hop:
            best[point.rest] = point
    return sorted(best.values(), key=sort_key)


def restrict_by_hop(points: Iterable[DataPoint], max_hop: int) -> set[DataPoint]:
    """Return the subset of ``points`` with ``hop <= max_hop`` (``Q^{<=h}``)."""
    return {p for p in points if p.hop <= max_hop}
