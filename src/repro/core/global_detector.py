"""Global distributed outlier detection (Algorithm 1 of the paper).

Every sensor ``p_i`` runs the same event-driven protocol and converges to the
exact global answer ``O_n(D)`` where ``D = ∪_i D_i``, provided the network is
connected and data/links eventually stop changing (Theorems 1 and 2).

State kept by each sensor:

* ``D_i``            -- the points sampled locally (``local_data``),
* ``P_i``            -- every point the sensor holds (``holdings``),
* ``D_{i,j}``        -- per neighbor ``j``: points sent to ``j`` (``_sent``),
* ``D_{j,i}``        -- per neighbor ``j``: points received from ``j``
  (``_received``).

On every event the sensor recomputes, for each neighbor, a *sufficient set*
``Z_j`` (see :mod:`repro.core.sufficient`), transmits the part of it the
neighbor is not already known to hold, and records the transmission in
``D_{i,j}``.  When no sensor has anything left to send, all estimates agree
and equal the correct answer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from .batch import EventBatch
from .errors import ProtocolError
from .index import NeighborhoodIndex
from .interfaces import OutlierDetector
from .messages import OutlierMessage
from .outliers import OutlierQuery
from .points import DataPoint
from .ranking import UNRESOLVED_SUBSET
from .rescoring import ScoreCache
from .sufficient import compute_sufficient_set
from .support import support_of_set

__all__ = ["GlobalOutlierDetector"]


class GlobalOutlierDetector(OutlierDetector):
    """Sans-IO implementation of the paper's Algorithm 1.

    Parameters
    ----------
    sensor_id:
        Identifier of this sensor.
    query:
        The ``(R, n)`` outlier query, shared by every sensor in the network.
    neighbors:
        Initial immediate neighborhood ``Γ_i``.
    indexed:
        When ``True`` (default) the detector owns a
        :class:`~repro.core.index.NeighborhoodIndex` over ``P_i``, updated
        incrementally on every addition/eviction, and every estimate,
        support-set and sufficient-set computation runs against the cached
        sorted-neighbor lists.  ``False`` selects the full-recompute
        brute-force path (the reference oracle); both produce identical
        protocol transcripts.
    batched:
        When ``True`` (default) each protocol event's additions and
        evictions are applied to the index as one
        :class:`~repro.core.batch.EventBatch` via
        :meth:`~repro.core.index.NeighborhoodIndex.apply_batch`, amortizing
        the distance-kernel and dirty-marking dispatch over the whole
        event.  ``False`` keeps the per-point mutations (the established
        oracle for the batch path).  Ignored when ``indexed`` is ``False``;
        transcripts are identical either way.

    Examples
    --------
    >>> from repro.core import (GlobalOutlierDetector, OutlierQuery,
    ...                         NearestNeighborDistance, make_point)
    >>> query = OutlierQuery(NearestNeighborDistance(), n=1)
    >>> a = GlobalOutlierDetector(0, query, neighbors=[1])
    >>> b = GlobalOutlierDetector(1, query, neighbors=[0])
    >>> _ = a.add_local_points([make_point([0.5], 0, 0), make_point([3.0], 0, 1)])
    >>> msg = a.initialize()
    >>> sorted(p.values[0] for p in msg.payload_for(1))
    [0.5, 3.0]
    """

    def __init__(
        self,
        sensor_id: int,
        query: OutlierQuery,
        neighbors: Iterable[int] = (),
        indexed: bool = True,
        batched: bool = True,
    ) -> None:
        super().__init__(sensor_id, query, neighbors)
        self._local: Set[DataPoint] = set()
        self._holdings: Set[DataPoint] = set()
        self._sent: Dict[int, Set[DataPoint]] = {j: set() for j in self._neighbors}
        self._received: Dict[int, Set[DataPoint]] = {j: set() for j in self._neighbors}
        # The index must sort its neighbor lists under the same metric the
        # query's ranking function scores in.
        self._index = (
            NeighborhoodIndex(metric=query.ranking.metric) if indexed else None
        )
        # Dirty-set rescoring over the whole index: P_i mirrors the index
        # exactly, so the per-event estimate is a tail read of the cache's
        # maintained (score, ≺) order instead of a full rescore.  Rankings
        # without a frontier structure leave the cache unsupported and the
        # legacy full path is used.
        self._cache: Optional[ScoreCache] = (
            ScoreCache.if_supported(self._index, query.ranking)
            if self._index is not None
            else None
        )
        self._batched = bool(batched) and self._index is not None

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def holdings(self) -> Set[DataPoint]:
        return set(self._holdings)

    @property
    def local_data(self) -> Set[DataPoint]:
        return set(self._local)

    def sent_to(self, neighbor: int) -> Set[DataPoint]:
        """``D_{i,j}``: the points this sensor has sent to ``neighbor``."""
        return set(self._sent.get(neighbor, set()))

    def received_from(self, neighbor: int) -> Set[DataPoint]:
        """``D_{j,i}``: the points this sensor has received from ``neighbor``."""
        return set(self._received.get(neighbor, set()))

    def known_shared_with(self, neighbor: int) -> Set[DataPoint]:
        """``D_{i,j} ∪ D_{j,i}``: points known to be common with ``neighbor``."""
        return self.sent_to(neighbor) | self.received_from(neighbor)

    # ------------------------------------------------------------------
    # Protocol events
    # ------------------------------------------------------------------
    def initialize(self) -> Optional[OutlierMessage]:
        self.stats.events_processed += 1
        return self._process()

    def add_local_points(
        self, points: Iterable[DataPoint]
    ) -> Optional[OutlierMessage]:
        batch = self._new_batch()
        changed = self._apply_local_additions(points, batch)
        self._commit_batch(batch)
        if not changed:
            return None
        self.stats.events_processed += 1
        return self._process()

    def evict_points(self, points: Iterable[DataPoint]) -> Optional[OutlierMessage]:
        batch = self._new_batch()
        changed = self._apply_evictions(points, batch)
        self._commit_batch(batch)
        if not changed:
            return None
        self.stats.events_processed += 1
        return self._process()

    def update_local_data(
        self,
        added: Iterable[DataPoint],
        evicted: Iterable[DataPoint],
    ) -> Optional[OutlierMessage]:
        # One batch for the whole tick: evictions and arrivals share a
        # single index application (apply_batch evicts first, exactly like
        # the sequential order below).
        batch = self._new_batch()
        changed_evict = self._apply_evictions(evicted, batch)
        changed_add = self._apply_local_additions(added, batch)
        self._commit_batch(batch)
        if not (changed_evict or changed_add):
            return None
        self.stats.events_processed += 1
        return self._process()

    def _new_batch(self) -> Optional[EventBatch]:
        """A fresh per-event batch on the batched path, else ``None`` (the
        appliers then mutate the index point by point, preserving the
        per-event oracle verbatim)."""
        return EventBatch() if self._batched else None

    def _commit_batch(self, batch: Optional[EventBatch]) -> None:
        if batch:
            self._index.apply_batch(batch)

    def _apply_local_additions(
        self, points: Iterable[DataPoint], batch: Optional[EventBatch] = None
    ) -> bool:
        added = False
        for point in points:
            if point.hop != 0:
                raise ProtocolError(
                    f"locally sampled points must have hop 0, got {point!r}"
                )
            if point not in self._holdings:
                self._local.add(point)
                self._holdings.add(point)
                if batch is not None:
                    batch.adds.append(point)
                elif self._index is not None:
                    self._index.add(point)
                self.stats.local_points_added += 1
                added = True
        return added

    def _apply_evictions(
        self, points: Iterable[DataPoint], batch: Optional[EventBatch] = None
    ) -> bool:
        removal = set(points)
        if not removal:
            return False
        evicted = removal & self._holdings
        self._holdings -= evicted
        self._local -= evicted
        if batch is not None:
            batch.evicts.extend(evicted)
        elif self._index is not None:
            for point in evicted:
                self._index.discard(point)
        # Bookkeeping entries for departed points are dropped from every
        # per-neighbor bucket in one batched set difference per bucket.
        for bucket in self._sent.values():
            bucket -= removal
        for bucket in self._received.values():
            bucket -= removal
        self.stats.points_evicted += len(evicted)
        return bool(evicted)

    def handle_message(
        self, sender: int, points: Iterable[DataPoint]
    ) -> Optional[OutlierMessage]:
        if sender not in self._neighbors:
            raise ProtocolError(
                f"sensor {self.sensor_id} received points from non-neighbor {sender}"
            )
        self.stats.messages_received += 1
        delivered = list(points)
        if not delivered:
            return None
        # Only points not already in P_i are added to D_{j,i}; duplicates are
        # ignored exactly as in the paper's update step.
        batch = self._new_batch()
        for point in delivered:
            if point in self._holdings:
                self.stats.points_ignored += 1
                continue
            self._holdings.add(point)
            if batch is not None:
                batch.adds.append(point)
            elif self._index is not None:
                self._index.add(point)
            self._received[sender].add(point)
            self.stats.points_received += 1
        self._commit_batch(batch)
        self.stats.events_processed += 1
        return self._process()

    def neighborhood_changed(
        self, neighbors: Iterable[int]
    ) -> Optional[OutlierMessage]:
        new_neighbors = {int(j) for j in neighbors}
        if self.sensor_id in new_neighbors:
            raise ProtocolError("a sensor cannot be its own neighbor")
        if new_neighbors == self._neighbors:
            return None
        # Links that went down: the exchanged points remain held (they will
        # age out of the window naturally) but the shared-knowledge
        # bookkeeping is dropped, so if the link comes back everything
        # relevant is re-negotiated from scratch.
        for gone in self._neighbors - new_neighbors:
            self._sent.pop(gone, None)
            self._received.pop(gone, None)
        for fresh in new_neighbors - self._neighbors:
            self._sent.setdefault(fresh, set())
            self._received.setdefault(fresh, set())
        self._neighbors = new_neighbors
        self.stats.events_processed += 1
        return self._process()

    # ------------------------------------------------------------------
    # Core: the main for-loop of Algorithm 1
    # ------------------------------------------------------------------
    def _process(self) -> Optional[OutlierMessage]:
        payloads: Dict[int, frozenset] = {}
        if not self._neighbors:
            return None
        # O_n(P_i) and its support depend only on P_i; compute them once for
        # this event and reuse them for every neighbor.
        holdings = list(self._holdings)
        index = self._index
        cache = self._cache
        if cache is not None and not cache.degraded:
            # P_i is exactly the index content, so the dirty-set cache's
            # maintained order yields the estimate and ``subset=None`` (the
            # full-index mask) is shared by the support and every neighbor's
            # sufficient-set fixpoint -- no O(n) try_subset rebuilds.
            estimate = cache.top_n(self.query.n)
            holdings_subset = None
            estimate_support = support_of_set(
                self.query.ranking, estimate, holdings, index=index, subset=None
            )
        else:
            estimate = self.query.outliers(holdings, index=index)
            holdings_subset = UNRESOLVED_SUBSET
            estimate_support = support_of_set(
                self.query.ranking, estimate, holdings, index=index
            )
        for neighbor in sorted(self._neighbors):
            shared = self._sent[neighbor] | self._received[neighbor]
            sufficient = compute_sufficient_set(
                self.query,
                holdings,
                shared,
                estimate=estimate,
                estimate_support=estimate_support,
                index=index,
                holdings_subset=holdings_subset,
            )
            to_send = sufficient - shared
            if to_send:
                payloads[neighbor] = frozenset(to_send)
                self._sent[neighbor] |= to_send
                self.stats.points_sent += len(to_send)
        if not payloads:
            return None
        self.stats.messages_built += 1
        return OutlierMessage(sender=self.sensor_id, payloads=payloads)
