"""Per-tick event batches: the unit of the vectorized application path.

Every protocol event delivers a *group* of data changes at once -- a
sampling tick expires a handful of window points while adding the fresh
reading, a crash reset evicts the whole window, a received message carries
many points -- yet the per-event index path applies them one at a time: one
``metric.rows`` call, one splice pass and one dirty-marking compare *per
point*.  An :class:`EventBatch` collects one event's worth of mutations so
:meth:`~repro.core.index.NeighborhoodIndex.apply_batch` can amortise that
dispatch: one distance block for all additions, one mask rebuild for all
evictions, one dirty-set union for the whole batch.

Batch formation rules (what the detectors guarantee when they build one):

* **evictions before additions** -- ``apply_batch`` applies ``evicts``
  first, then ``adds``, then ``replaces``, matching the order of the
  per-event data-change handler (``update_local_data`` evicts expired
  points before inserting arrivals).  A point listed in both ``evicts`` and
  ``adds`` is therefore removed and re-inserted, ending *present* --
  exactly what the sequential path does.
* **replaces are ordered** -- each ``(old, new)`` pair is a hop-only
  relabel (the semi-global ``[·]^min`` merge); pairs are applied in list
  order, so a chain ``a -> b`` then ``b -> c`` within one batch is legal,
  as is relabelling a point added earlier in the same batch.
* **duplicates are harmless** -- an eviction of an absent point or an
  addition of a present one is skipped, mirroring ``discard``/``add``.

The batch is deliberately a dumb container: all correctness-critical
sequencing lives in ``apply_batch`` so the index remains the single owner
of its invariants.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .points import DataPoint

__all__ = ["EventBatch"]


class EventBatch:
    """One event's worth of index mutations, applied as a unit.

    Attributes
    ----------
    adds:
        Points to insert (applied second, in list order).
    evicts:
        Points to remove (applied first, in list order).
    replaces:
        ``(old, new)`` hop-relabel pairs (applied last, in list order).
    """

    __slots__ = ("adds", "evicts", "replaces")

    def __init__(
        self,
        adds: Iterable[DataPoint] = (),
        evicts: Iterable[DataPoint] = (),
        replaces: Iterable[Tuple[DataPoint, DataPoint]] = (),
    ) -> None:
        self.adds: List[DataPoint] = list(adds)
        self.evicts: List[DataPoint] = list(evicts)
        self.replaces: List[Tuple[DataPoint, DataPoint]] = list(replaces)

    def stage_put(self, previous, point: DataPoint) -> None:
        """Stage ``holdings[point.rest]`` changing from ``previous`` to
        ``point``: an addition when ``previous`` is ``None``, otherwise a
        hop relabel (mirrors the detectors' min-hop-merge ``_index_put``)."""
        if previous is None:
            self.adds.append(point)
        else:
            self.replaces.append((previous, point))

    def __len__(self) -> int:
        return len(self.adds) + len(self.evicts) + len(self.replaces)

    def __bool__(self) -> bool:
        return bool(self.adds or self.evicts or self.replaces)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventBatch(adds={len(self.adds)}, evicts={len(self.evicts)}, "
            f"replaces={len(self.replaces)})"
        )
