"""Dirty-set rescoring: maintain ``O_n(Q)`` under churn without rescoring Q.

Every protocol event re-ranks the sensor's holdings to produce the estimate
``O_n(P_i)``, but a single data change only perturbs the scores of points
whose *k-neighbor frontier* it enters: for the k-NN ranking family, adding
``z`` changes ``R(x, ·)`` only when ``dist(x, z)`` is at most ``x``'s
current k-th-neighbor distance (``x``'s frontier radius ``τ_x``), and for
the count-within-radius family only when ``dist(x, z) <= α``.  Everyone
else's score -- and hence their position in the ranking -- is untouched.

:class:`ScoreCache` exploits this.  It registers as a mutation observer on a
:class:`~repro.core.index.NeighborhoodIndex` and, for every structural
change, consumes the distance row the index already computed: an ``O(1)``
``dist <= τ`` comparison per neighbor marks the *dirty set*, and the next
ranking query rescores only those points (each an ``O(k)`` head read of the
flat arrays) and repairs a persistently sorted ``(score, ≺)`` order by
bisection.  The top-n estimate becomes an ``O(n_outliers)`` tail read
instead of an ``O(n·k)`` full rescore plus ``O(n log n)`` sort per event.

Exactness is preserved by construction -- a clean point's score is the very
float the last rescore produced, and rescoring goes through the same
``score_indexed`` walks the non-cached path uses -- with one exception the
cache detects itself: when two *hop variants* of the same observation are
simultaneously members, full ties ``(score, ≺)`` are broken by internal
slot order, which may differ from the set-iteration order of the oracle
path.  The cache then reports itself :attr:`~ScoreCache.degraded` and the
detectors fall back to the legacy full computation until the twin leaves
(the distributed protocols never hold two hop variants at once, so in
practice this never triggers).

A cache can cover the whole index (the global detector's estimate) or the
sub-population with ``hop <= max_hop`` (one per hop level of the
semi-global detector); in the latter case it also maintains the level's
:class:`~repro.core.index.IndexSubset` membership mask incrementally, so
the per-event sufficient-set fixpoints reuse it instead of rebuilding it
via ``try_subset``.

Dirty-set soundness invariant
-----------------------------
The whole scheme is correct iff the dirty marking *over-approximates* the
set of points whose score a mutation can change.  That reduction is exact
for the supported frontier shapes: a k-NN score depends only on the k
nearest neighbors, so inserting ``z`` changes ``R(x, ·)`` only if
``dist(x, z) <= τ_x`` (the cached k-th-neighbor distance -- anything
farther can never enter the head), and a radius count changes only if
``dist(x, z) <= α``.  Deletions mark by the same test against the row the
index computed before the splice, and any point whose τ is not yet cached
is dirty by definition.  Rankings without a frontier characterisation
return ``frontier_spec() = None`` and the detectors simply skip the cache
-- a missing fast path degrades to the oracle, never to a wrong answer.
The randomized equivalence suites (``tests/test_index_equivalence.py``)
hold this invariant under adversarial churn for every registered metric.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from math import inf
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .index import SLOT_DTYPE, IndexSubset, NeighborhoodIndex
from .points import DataPoint, RestKey
from .ranking import (
    AverageKNNDistance,
    KthNearestNeighborDistance,
    NearestNeighborDistance,
    RankingFunction,
)

__all__ = ["ScoreCache"]

#: Dirty-set size from which a whole-index k-NN cache rescoreds in bulk
#: (one head-matrix build and one order merge) instead of per-slot walks.
#: Per-event ticks dirty a handful of slots and stay on the scalar loop;
#: batched ticks dirty hundreds, where the per-slot ``insort``/``del``
#: repairs of the sorted order alone cost ``O(dirty · members)`` moves.
BULK_RESCORE_MIN = 32

#: Rankings whose ``score_indexed`` against the *full* index is a pure
#: function of the first ``k`` entries of the distance row -- exactly the
#: cases :meth:`ScoreCache._bulk_rescore` reproduces bit-for-bit.  Matched
#: by exact type: a subclass may override ``score_indexed`` arbitrarily.
_HEAD_SCORED_RANKINGS = (
    KthNearestNeighborDistance,
    NearestNeighborDistance,
    AverageKNNDistance,
)


class ScoreCache:
    """Incrementally maintained ``(score, ≺)`` ranking over an index.

    Parameters
    ----------
    index:
        The :class:`~repro.core.index.NeighborhoodIndex` to observe.  The
        cache attaches itself as a mutation observer when supported.
    ranking:
        The ranking function scores are maintained under.  Must score in the
        index's metric and expose a
        :meth:`~repro.core.ranking.RankingFunction.frontier_spec`; rankings
        without one (``None``) leave the cache :attr:`unsupported
        <supported>` and callers use the legacy full path.
    max_hop:
        ``None`` covers the entire index; an integer restricts membership to
        points with ``hop <= max_hop`` (a semi-global hop level).
    """

    __slots__ = (
        "_index",
        "_ranking",
        "_max_hop",
        "_kind",
        "_param",
        "_order",
        "_score",
        "_tau",
        "_dirty",
        "_mask",
        "_members",
        "_key_count",
        "_twins",
        "supported",
    )

    def __init__(
        self,
        index: NeighborhoodIndex,
        ranking: RankingFunction,
        max_hop: Optional[int] = None,
    ) -> None:
        self._index = index
        self._ranking = ranking
        self._max_hop = max_hop
        spec = ranking.frontier_spec()
        self.supported = spec is not None and ranking.metric.compatible_with(
            index.metric
        )
        self._kind, self._param = spec if spec is not None else ("knn", 1)
        #: Scored members as ``(score, ≺-key, slot)``, sorted ascending --
        #: the exact (reversed) order of the oracle's ranked triples.
        self._order: List[Tuple[float, RestKey, int]] = []
        #: slot -> cached score (exactly the scored, i.e. clean, members).
        self._score: Dict[int, float] = {}
        #: slot -> frontier radius τ (k-th member distance, or α), as a flat
        #: float buffer so one vectorized compare marks a whole distance row.
        #: ``-inf`` encodes "not a scored member" (distances are
        #: non-negative, so such slots can never be marked through it);
        #: ``+inf`` is a scored member with a neighbor deficit (any change
        #: perturbs it).
        self._tau = np.full(16, -inf)
        #: members whose score must be recomputed before the next query.
        self._dirty: Set[int] = set()
        #: membership mask (level caches only; ``None`` = whole index).
        self._mask: Optional[bytearray] = None if max_hop is None else bytearray()
        self._members = 0
        #: ``≺`` key -> member multiplicity, to detect hop-variant twins.
        self._key_count: Dict[RestKey, int] = {}
        self._twins = 0
        if not self.supported:
            # Fully initialized but inert: queries answer over an empty
            # membership and ``degraded`` stays True, so a caller that skips
            # the :meth:`if_supported` factory still gets defined behavior.
            return
        for point in index.points():
            slot = index.slot_for(point)
            self._ensure_capacity(slot)
            if self._is_member(point):
                self._join(slot, point)
        index.attach(self)

    @classmethod
    def if_supported(
        cls,
        index: NeighborhoodIndex,
        ranking: RankingFunction,
        max_hop: Optional[int] = None,
    ) -> Optional["ScoreCache"]:
        """Build a cache, or return ``None`` when the ranking exposes no
        frontier structure (the detectors then keep the legacy full path)."""
        cache = cls(index, ranking, max_hop=max_hop)
        return cache if cache.supported else None

    # ------------------------------------------------------------------
    # State predicates
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while the maintained order cannot be trusted: the ranking is
        structure-free, or two hop variants of one observation are members
        (full-tie order would depend on internal slot numbering)."""
        return not self.supported or self._twins > 0

    def __len__(self) -> int:
        return self._members

    def _is_member(self, point: DataPoint) -> bool:
        return self._max_hop is None or point.hop <= self._max_hop

    # ------------------------------------------------------------------
    # Membership bookkeeping
    # ------------------------------------------------------------------
    def _ensure_capacity(self, slot: int) -> None:
        if slot >= len(self._tau):
            grown = np.full(max(slot + 1, 2 * len(self._tau)), -inf)
            grown[: len(self._tau)] = self._tau
            self._tau = grown
        mask = self._mask
        if mask is not None and slot >= len(mask):
            mask.extend(b"\x00" * (slot + 1 - len(mask)))

    def _join(self, slot: int, point: DataPoint) -> None:
        self._ensure_capacity(slot)
        if self._mask is not None:
            self._mask[slot] = 1
        self._members += 1
        key = self._index.key_at(slot)
        count = self._key_count.get(key, 0) + 1
        self._key_count[key] = count
        if count == 2:
            self._twins += 1
        self._dirty.add(slot)

    def _leave(self, slot: int) -> None:
        if self._mask is not None:
            self._mask[slot] = 0
        self._members -= 1
        key = self._index.key_at(slot)
        count = self._key_count[key] - 1
        if count:
            self._key_count[key] = count
            if count == 1:
                self._twins -= 1
        else:
            del self._key_count[key]
        self._dirty.discard(slot)
        self._tau[slot] = -inf
        score = self._score.pop(slot, None)
        if score is not None:
            self._order_remove(score, key, slot)

    def _order_remove(self, score: float, key: RestKey, slot: int) -> None:
        entry = (score, key, slot)
        order = self._order
        position = bisect_left(order, entry)
        if position < len(order) and order[position] == entry:
            del order[position]
        else:  # pragma: no cover - defensive (cache invariant violated)
            order.remove(entry)

    def _mark_row_dirty(self, nbr_slots, nbr_dists) -> None:
        """Mark every member whose frontier the changed point perturbs.

        One vectorized compare of the distance row against the τ buffer:
        slots whose τ is ``-inf`` (non-members and unscored-hence-already-
        dirty members) can never satisfy ``d <= τ``, so no membership test
        is needed.
        """
        if not nbr_dists:
            return
        dists = np.frombuffer(nbr_dists)
        slots = np.frombuffer(nbr_slots, dtype=SLOT_DTYPE)
        hits = slots[dists <= self._tau[slots]]
        if hits.size:
            self._dirty.update(hits.tolist())

    def _mark_rows_dirty(self, rows) -> None:
        """Batch form of :meth:`_mark_row_dirty`: one vectorized row-vs-τ
        compare per row of a whole :class:`~repro.core.batch.EventBatch`
        (concatenating the rows first was measured slower -- the copies
        cost more than the saved numpy dispatches).

        Equivalent to marking row by row because marking is monotone (it
        only ever adds dirty slots) and the τ buffer is never written
        between the membership updates and the marks: every slot that
        joined or left this batch carries ``τ = -inf`` until the next
        rescoring pass, so batch-mates can neither mark each other nor be
        marked through departed neighbors -- exactly as in the sequential
        interleaving.
        """
        tau = self._tau
        dirty = self._dirty
        for nbr_slots, nbr_dists in rows:
            if not len(nbr_dists):
                continue
            dists = np.frombuffer(nbr_dists)
            slots = np.frombuffer(nbr_slots, dtype=SLOT_DTYPE)
            hits = slots[dists <= tau[slots]]
            if hits.size:
                dirty.update(hits.tolist())

    # ------------------------------------------------------------------
    # NeighborhoodIndex observer callbacks
    # ------------------------------------------------------------------
    def point_added(self, slot, point, nbr_slots, nbr_dists) -> None:
        self._ensure_capacity(slot)
        if not self._is_member(point):
            return
        self._join(slot, point)
        self._mark_row_dirty(nbr_slots, nbr_dists)

    def point_removed(self, slot, point, nbr_slots, nbr_dists) -> None:
        if not self._is_member(point):
            return
        self._leave(slot)
        self._mark_row_dirty(nbr_slots, nbr_dists)

    def points_added_batch(self, records, rows_mat=None, slots_mat=None) -> None:
        """Block-mutation hook: all membership joins, then one vectorized
        mark over the member rows (see :meth:`_mark_rows_dirty` for why
        this equals the per-point sequence).

        When the index hands over the block's shared unsorted matrices and
        every record is a member, the mark collapses to a single
        matrix-vs-τ compare -- same elements tested (marking is order- and
        sort-insensitive), a fraction of the dispatches."""
        rows = []
        members = 0
        for slot, point, nbr_slots, nbr_dists in records:
            self._ensure_capacity(slot)
            if not self._is_member(point):
                continue
            self._join(slot, point)
            members += 1
            rows.append((nbr_slots, nbr_dists))
        if (
            rows_mat is not None
            and members == len(records)
            and rows_mat.shape[1]
        ):
            hits = slots_mat[rows_mat <= self._tau[slots_mat]]
            if hits.size:
                self._dirty.update(hits.tolist())
            return
        self._mark_rows_dirty(rows)

    def points_removed_batch(self, records) -> None:
        """Block-mutation hook: all membership leaves (while the index
        still labels the departing slots), then one vectorized mark."""
        rows = []
        for slot, point, nbr_slots, nbr_dists in records:
            if not self._is_member(point):
                continue
            self._leave(slot)
            rows.append((nbr_slots, nbr_dists))
        self._mark_rows_dirty(rows)

    def point_relabeled(self, slot, old, new) -> None:
        # A hop-only relabel never moves distances, so a whole-index cache
        # is untouched; a level cache changes only when the relabel crosses
        # its hop boundary.  The index computes no distance row for a
        # relabel, so a boundary crossing conservatively rescores the whole
        # level -- ``[·]^min`` promotions are rare relative to data events.
        if self._max_hop is None:
            return
        was = old.hop <= self._max_hop
        now = new.hop <= self._max_hop
        if was == now:
            return
        if now:
            self._join(slot, new)
        else:
            self._leave(slot)
        self._dirty.update(entry[2] for entry in self._order)

    # ------------------------------------------------------------------
    # Rescoring
    # ------------------------------------------------------------------
    def subset(self) -> Optional[IndexSubset]:
        """The membership mask as an :class:`IndexSubset` (``None`` for a
        whole-index cache, matching ``try_subset``'s full-index contract).

        The mask is the live internal buffer: callers use it for the current
        event's queries and must not hold it across mutations.
        """
        if self._mask is None:
            return None
        return IndexSubset(self._mask, self._members)

    def member_points(self) -> List[DataPoint]:
        """The current members (unspecified order, like set iteration)."""
        if not self.supported:
            return []
        index = self._index
        if self._mask is None:
            return list(index.points())
        mask = self._mask
        return [index.point_at(s) for s in range(len(mask)) if mask[s]]

    def _frontier_radius(self, slot: int, subset) -> float:
        if self._kind == "radius":
            return self._param
        k = self._param
        dists, slots = self._index.row_at(slot)
        if subset is None:
            return dists[k - 1] if len(dists) >= k else inf
        mask = subset.mask
        found = 0
        for i, s in enumerate(slots):
            if mask[s]:
                found += 1
                if found == k:
                    return dists[i]
        return inf

    def _rescore_dirty(self) -> None:
        dirty = self._dirty
        if not dirty:
            return
        index = self._index
        ranking = self._ranking
        subset = self.subset()
        order = self._order
        score_of = self._score
        tau_of = self._tau
        if (
            subset is None
            and self._kind == "knn"
            and len(dirty) >= BULK_RESCORE_MIN
            and type(ranking) in _HEAD_SCORED_RANKINGS
            and self._bulk_rescore()
        ):
            dirty.clear()
            return
        for slot in dirty:
            key = index.key_at(slot)
            previous = score_of.get(slot)
            if previous is not None:
                self._order_remove(previous, key, slot)
            score = ranking.score_indexed(index, index.point_at(slot), subset)
            score_of[slot] = score
            tau_of[slot] = self._frontier_radius(slot, subset)
            insort(order, (score, key, slot))
        dirty.clear()

    def _bulk_rescore(self) -> bool:
        """Rescore the whole dirty set in one vectorized pass.

        Byte-identical to the scalar loop for head-scored rankings against
        the full index: scores accumulate column-wise left to right, exactly
        the IEEE addition chain of ``sum(dists[:k])``, and the sorted order
        is rebuilt by merging two sorted runs of (score, key, slot) tuples
        that are unique per slot, so the result equals repeated
        ``insort``/``del``.  Returns ``False`` without mutating anything
        when some dirty row is shorter than ``k`` -- deficit scores keep the
        scalar path.
        """
        index = self._index
        k = self._param
        slots = sorted(self._dirty)
        row_at = index.row_at
        rows = []
        for slot in slots:
            row = row_at(slot)[0]
            if len(row) < k:
                return False
            rows.append(row)
        head = np.frombuffer(
            b"".join(memoryview(row)[:k] for row in rows)
        ).reshape(len(slots), k)
        kth = head[:, k - 1]
        if type(self._ranking) is AverageKNNDistance:
            acc = head[:, 0].copy()
            for col in range(1, k):
                acc += head[:, col]
            scores = (acc / k).tolist()
        else:
            scores = kth.tolist()
        key_at = index.key_at
        score_of = self._score
        fresh = []
        for slot, score in zip(slots, scores):
            score_of[slot] = score
            fresh.append((score, key_at(slot), slot))
        self._tau[slots] = kth
        fresh.sort()
        dirty = self._dirty
        kept = [entry for entry in self._order if entry[2] not in dirty]
        kept += fresh
        kept.sort()
        self._order = kept
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_n(self, n: int) -> List[DataPoint]:
        """``O_n(members)``, ordered most to least outlying -- identical to
        ``top_n_outliers(ranking, members, n, index=index)`` whenever the
        cache is not :attr:`degraded`."""
        self._rescore_dirty()
        if n <= 0:
            return []
        point_at = self._index.point_at
        order = self._order
        tail = order[-n:] if n < len(order) else order
        return [point_at(entry[2]) for entry in reversed(tail)]
