"""Time-based sliding window over a sensor's data stream (Section 5.3).

Each sensor processes its stream under a sliding-window model: a point is
time-stamped when sampled, and every held point -- regardless of where it
originated -- is deleted once its time-stamp falls out of the window.  This
module provides a small window manager the application layer uses to decide
which points to feed to and evict from a detector at every sampling round.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .errors import ConfigurationError
from .points import DataPoint

__all__ = ["SlidingWindow"]


class SlidingWindow:
    """Tracks the locally-sampled points currently inside the window.

    Parameters
    ----------
    length:
        Window length expressed in the same unit as point timestamps
        (the experiments use "number of sampling periods", so a window of
        ``w`` keeps the last ``w`` samples of each stream).
    """

    def __init__(self, length: float) -> None:
        if length <= 0:
            raise ConfigurationError(f"window length must be positive, got {length}")
        self.length = float(length)
        self._points: Set[DataPoint] = set()

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------
    @property
    def points(self) -> Set[DataPoint]:
        """The points currently inside the window (copy)."""
        return set(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, point: DataPoint) -> bool:
        return point in self._points

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, points: Iterable[DataPoint]) -> List[DataPoint]:
        """Insert newly sampled points; returns the ones actually added."""
        added = []
        for point in points:
            if point not in self._points:
                self._points.add(point)
                added.append(point)
        return added

    def cutoff(self, now: float) -> float:
        """The smallest timestamp still inside the window at time ``now``.

        With one sample per time unit at integer timestamps, a window of
        length ``w`` observed at time ``t`` contains exactly the ``w`` most
        recent samples: timestamps ``t - w + 1 .. t``.
        """
        return now - self.length + 1

    def expired(self, now: float) -> List[DataPoint]:
        """Points that have fallen out of the window at time ``now``
        (timestamp strictly below the cutoff), without removing them."""
        limit = self.cutoff(now)
        return [p for p in self._points if p.timestamp < limit]

    def advance(self, now: float) -> List[DataPoint]:
        """Remove and return every point that expired by time ``now``."""
        stale = self.expired(now)
        for point in stale:
            self._points.discard(point)
        return stale

    def slide(
        self, now: float, new_points: Iterable[DataPoint]
    ) -> Tuple[List[DataPoint], List[DataPoint]]:
        """One sampling round: evict expired points, insert the new sample.

        Returns ``(added, evicted)`` so the caller can forward both changes to
        the detector as data-change events.
        """
        evicted = self.advance(now)
        added = self.add(new_points)
        return added, evicted
