"""Sufficient-set computation (equations (1)/(2) of the paper).

Before sensor ``p_i`` messages a neighbor ``p_j`` it computes a *sufficient
set* ``Z_j ⊆ P_i``: a set of points which, if known to ``p_j``, guarantees
that ``p_j`` could not improve ``p_i``'s current estimate without telling
``p_i`` about it.  Formally ``Z_j`` must satisfy

    (O_n(P_i) ∪ [P_i | O_n(P_i)])
        ∪ [P_i | O_n(D_{i,j} ∪ D_{j,i} ∪ Z_j)]  ⊆  Z_j        (eq. 2)

where ``D_{i,j}``/``D_{j,i}`` are the points ``p_i`` has already sent to /
received from ``p_j``.  The algorithm of the paper builds ``Z_j`` by a
fixpoint iteration:

    Z_j := O_n(P_i) ∪ [P_i | O_n(P_i)]
    repeat until no change:
        Z_j := Z_j ∪ [P_i | O_n(D_{i,j} ∪ D_{j,i} ∪ Z_j)]

which terminates because ``Z_j`` only grows and is bounded by the finite
``P_i``.  Only ``Z_j \\ (D_{i,j} ∪ D_{j,i})`` is actually transmitted.
"""

from __future__ import annotations

from typing import Iterable, Set

from .outliers import OutlierQuery
from .ranking import UNRESOLVED_SUBSET
from .support import support_of_set

__all__ = ["compute_sufficient_set", "satisfies_sufficiency"]


def compute_sufficient_set(
    query: OutlierQuery,
    holdings: Iterable,
    known_shared: Iterable,
    estimate: Iterable = None,
    estimate_support: Iterable = None,
    index=None,
    holdings_subset=UNRESOLVED_SUBSET,
) -> Set:
    """Compute a set ``Z`` satisfying eq. (2).

    Parameters
    ----------
    query:
        The ``(R, n)`` outlier query shared by all sensors.
    holdings:
        ``P_i`` -- every point the sensor currently holds.
    known_shared:
        ``D_{i,j} ∪ D_{j,i}`` -- the points the sensor already knows it has in
        common with the neighbor under consideration.
    estimate, estimate_support:
        Optional precomputed ``O_n(P_i)`` and ``[P_i | O_n(P_i)]``.  Both
        depend only on ``P_i``, so a sensor processing one event for several
        neighbors computes them once and passes them in; when omitted they
        are computed here.
    index:
        Optional :class:`~repro.core.index.NeighborhoodIndex` covering
        ``holdings ∪ known_shared``.  With it, every fixpoint iteration does
        set algebra over the cached sorted-neighbor lists (masked walks)
        instead of rebuilding a pairwise-distance matrix; the result is
        identical either way.
    holdings_subset:
        Optional pre-resolved membership mask for ``holdings`` (an
        :class:`~repro.core.index.IndexSubset`, or ``None`` when
        ``holdings`` is exactly the full index).  The detectors resolve the
        mask once per event and share it across every neighbor's fixpoint;
        when omitted it is resolved here.

    Returns
    -------
    set
        A sufficient set ``Z ⊆ P_i`` (not necessarily the smallest one --
        the paper's algorithm does not require minimality).
    """
    P = list(holdings)
    shared = set(known_shared)

    # Resolve the membership mask of P once: every fixpoint iteration takes
    # supports within the same P, so the O(|P|) coverage check must not be
    # repeated per iteration (nor per neighbor, when the caller passes the
    # per-event mask in).
    ranking = query.ranking
    if index is None:
        use_index, P_subset = False, None
    elif holdings_subset is UNRESOLVED_SUBSET:
        use_index, P_subset = index.try_subset(P)
    else:
        use_index, P_subset = True, holdings_subset

    if estimate is None:
        if use_index:
            estimate = query.outliers(P, index=index, subset=P_subset)
        else:
            estimate = query.outliers(P, index=index)
    if estimate_support is None:
        if use_index:
            estimate_support = support_of_set(
                ranking, estimate, P, index=index, subset=P_subset
            )
        else:
            estimate_support = support_of_set(ranking, estimate, P, index=index)
    Z: Set = set(estimate) | set(estimate_support)

    while True:
        combined = shared | Z
        outliers = query.outliers(combined, index=index)
        if use_index and index.covers(outliers):
            closure: Set = set()
            for x in outliers:
                closure |= ranking.support_indexed(index, x, P_subset)
        else:
            closure = support_of_set(ranking, outliers, P)
        if closure <= Z:
            break
        Z |= closure
    return Z


def satisfies_sufficiency(
    query: OutlierQuery,
    Z: Iterable,
    holdings: Iterable,
    known_shared: Iterable,
) -> bool:
    """Check that ``Z`` satisfies eq. (2) -- used by the test-suite.

    The check evaluates both halves of the containment:

    * the sensor's own estimate and its support are inside ``Z``;
    * the support (within ``P_i``) of the outliers of
      ``D_{i,j} ∪ D_{j,i} ∪ Z`` is inside ``Z``.
    """
    P = list(holdings)
    Z_set = set(Z)
    shared = set(known_shared)

    estimate = query.outliers(P)
    first = set(estimate) | support_of_set(query.ranking, estimate, P)
    if not first <= Z_set:
        return False

    combined = shared | Z_set
    second = support_of_set(query.ranking, query.outliers(combined), P)
    return second <= Z_set
