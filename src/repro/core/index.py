"""Incremental neighborhood index: the detector hot-path engine.

Every event of the paper's protocols (data arrival, window eviction, message
reception, link change) re-evaluates ``O_n(P_i)``, the support sets
``[P_i|x]`` and the per-neighbor sufficient-set fixpoint.  All of those
reduce to *nearest-neighbor geometry* over the sensor's holdings: which
points of some ``Q ⊆ P_i`` are closest to ``x``, and how many lie within a
radius.  Recomputing that geometry from scratch costs ``O(n² · d)`` per
event; this module maintains it *incrementally*.

:class:`NeighborhoodIndex` keeps, for every indexed point, its full
neighbor list sorted by ``(distance, ≺)`` -- the exact order the brute-force
ranking paths use (the configured :class:`~repro.core.metrics.Metric`,
Euclidean by default, for the distance; the fixed total order ``≺`` for
ties), so indexed answers are *identical* to the reference computations
under every registered metric, not approximations.  Updates only touch what
changed:

* :meth:`add` computes one distance row -- ``O(n · d)`` distance work, the
  only Python-level arithmetic -- and insorts the new point into every
  existing neighbor list.  Each insertion is an ``O(log n)`` bisect plus an
  ``O(n)`` C-level ``memmove``, so an add is ``O(n²)`` pointer moves in the
  worst case; the constants are tens of nanoseconds per element, which is
  what makes this ~an order of magnitude cheaper per event than the
  ``O(n² · d)`` matrix rebuild it replaces (the resident neighbor lists
  likewise hold ``O(n²)`` entries per sensor -- budget accordingly for very
  large windows);
* :meth:`discard` walks the departing point's own neighbor list to locate
  and delete its entry from every other list (no distance recomputation);
* :meth:`replace` swaps a held point for a copy with a different ``hop``
  field in ``O(1)`` -- the semi-global detector's ``[·]^min`` merge changes
  hop counters but never geometry, so the index only relabels the slot.

Queries never mutate the index.  Scoring a point against the *full* index is
``O(k)`` (read the head of its sorted list); scoring against a *subset*
``Q ⊆ P`` -- the shape of every sufficient-set fixpoint iteration -- walks
the sorted list and filters by a precomputed membership mask
(:class:`IndexSubset`), i.e. set algebra over cached ranks instead of
re-sorting distances.

Copies of the same observation (equal ``≺`` keys, e.g. hop variants) are
excluded from each other's neighbor lists, mirroring the candidate-exclusion
rule of the brute-force paths.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .errors import RankingError
from .metrics import EUCLIDEAN, Metric
from .points import DataPoint, RestKey, sort_key

__all__ = ["NeighborhoodIndex", "IndexSubset", "NeighborEntry"]

#: One neighbor-list entry: ``(distance, ≺-key of the neighbor, slot)``.
#: Lists sorted by this tuple are ordered exactly like the brute-force
#: ``_sorted_by_distance`` (distance first, then the fixed total order; the
#: slot only disambiguates hop variants, which share a ``≺`` key but are
#: never both neighbors of any third point's *support* -- they are "the same
#: point" under ``≺``).
NeighborEntry = Tuple[float, RestKey, int]


class IndexSubset:
    """Membership mask for scoring against a subset ``Q`` of an index.

    Built once per bulk operation via :meth:`NeighborhoodIndex.try_subset`
    and shared by every per-point query so the ``O(|Q|)`` mask construction
    is not repeated.
    """

    __slots__ = ("mask", "size")

    def __init__(self, mask: bytearray, size: int) -> None:
        self.mask = mask
        self.size = size

    def __contains__(self, slot: int) -> bool:
        return bool(self.mask[slot])


class NeighborhoodIndex:
    """Persistent sorted-neighbor structure over a dynamic set of points.

    Examples
    --------
    >>> from repro.core import NeighborhoodIndex, NearestNeighborDistance, make_point
    >>> pts = [make_point([float(v)], 0, i) for i, v in enumerate([0.0, 1.0, 5.0])]
    >>> index = NeighborhoodIndex(pts)
    >>> NearestNeighborDistance().score_indexed(index, pts[2])
    4.0
    >>> _ = index.discard(pts[1])
    >>> NearestNeighborDistance().score_indexed(index, pts[2])
    5.0
    """

    __slots__ = (
        "_slot_of",
        "_points",
        "_keys",
        "_lists",
        "_free",
        "_key_slots",
        "_dimension",
        "_metric",
    )

    def __init__(
        self,
        points: Iterable[DataPoint] = (),
        metric: Optional[Metric] = None,
    ) -> None:
        #: The metric space the neighbor lists are sorted in.  Must match
        #: the metric of every ranking function queried against this index
        #: (the detectors construct both from the same configuration).
        self._metric = EUCLIDEAN if metric is None else metric
        #: point -> slot (points hash/compare including ``hop``).
        self._slot_of: Dict[DataPoint, int] = {}
        #: slot -> point (``None`` for free slots).
        self._points: List[Optional[DataPoint]] = []
        #: slot -> cached ``sort_key`` (``None`` for free slots).
        self._keys: List[Optional[RestKey]] = []
        #: slot -> neighbor list sorted by ``(distance, ≺, slot)``.
        self._lists: List[Optional[List[NeighborEntry]]] = []
        #: recycled slot numbers.
        self._free: List[int] = []
        #: ``≺`` key -> slots holding a copy of that observation.
        self._key_slots: Dict[RestKey, Set[int]] = {}
        self._dimension: Optional[int] = None
        for point in points:
            self.add(point)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, point: DataPoint) -> bool:
        return point in self._slot_of

    def points(self) -> Iterator[DataPoint]:
        """Iterate over the indexed points (insertion order not guaranteed)."""
        return iter(self._slot_of)

    @property
    def dimension(self) -> Optional[int]:
        """Dimensionality of the indexed points (``None`` while empty)."""
        return self._dimension

    @property
    def metric(self) -> Metric:
        """The metric the cached neighbor lists are sorted under."""
        return self._metric

    def point_at(self, slot: int) -> DataPoint:
        """The point currently stored in ``slot`` (internal ids exposed by
        :data:`NeighborEntry` tuples)."""
        point = self._points[slot]
        if point is None:  # pragma: no cover - defensive
            raise RankingError(f"slot {slot} is free")
        return point

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add(self, point: DataPoint) -> bool:
        """Index ``point``.  Returns ``False`` if it is already present.

        Cost: ``O(n · d)`` distance computations plus one sorted insertion
        per neighbor list.  The insertions are ``O(n²)`` pointer moves in
        the worst case, but at C-``memmove`` constants -- the point is
        replacing ``O(n² · d)`` Python/numpy *arithmetic* per event with a
        single ``O(n · d)`` distance row.
        """
        if point in self._slot_of:
            return False
        if self._dimension is None:
            self._dimension = point.dimension
        elif point.dimension != self._dimension:
            raise RankingError(
                f"dimension mismatch: index holds {self._dimension}-dimensional "
                f"points, got {point.dimension}-dimensional {point!r}"
            )
        key = sort_key(point)
        same_key = self._key_slots.get(key, ())

        if self._free:
            slot = self._free.pop()
        else:
            slot = len(self._points)
            self._points.append(None)
            self._keys.append(None)
            self._lists.append(None)

        # The whole distance row is computed with one ``rows`` kernel call:
        # for the default Euclidean metric that is the same per-pair
        # ``math.dist`` arithmetic as before, and for the vectorized metrics
        # it amortises the numpy dispatch over the row.
        own_list: List[NeighborEntry] = []
        neighbor_slots: List[int] = []
        neighbor_values: List[Tuple[float, ...]] = []
        for other, other_slot in self._slot_of.items():
            if other_slot in same_key:
                continue  # hop variants of the same observation: not neighbors
            neighbor_slots.append(other_slot)
            neighbor_values.append(other.values)
        if neighbor_slots:
            row = self._metric.rows(point.values, neighbor_values)
            keys = self._keys
            lists = self._lists
            for other_slot, raw in zip(neighbor_slots, row):
                dist = float(raw)
                own_list.append((dist, keys[other_slot], other_slot))
                insort(lists[other_slot], (dist, key, slot))
        own_list.sort()

        self._slot_of[point] = slot
        self._points[slot] = point
        self._keys[slot] = key
        self._lists[slot] = own_list
        self._key_slots.setdefault(key, set()).add(slot)
        return True

    def discard(self, point: DataPoint) -> bool:
        """Remove ``point`` from the index.  Returns ``False`` if absent.

        The departing point's own sorted list already records its distance to
        every other point, so no distance is recomputed: each entry is
        located in the counterpart list by bisection and deleted.
        """
        slot = self._slot_of.pop(point, None)
        if slot is None:
            return False
        key = self._keys[slot]
        own_entry_key = key
        for dist, _other_key, other_slot in self._lists[slot]:
            other_list = self._lists[other_slot]
            # The counterpart entry is (dist, our key, our slot); bisect for
            # the position just past it and step back.
            position = bisect_right(other_list, (dist, own_entry_key, slot)) - 1
            if position >= 0 and other_list[position][2] == slot:
                del other_list[position]
            else:  # pragma: no cover - defensive (index invariant violated)
                other_list.remove((dist, own_entry_key, slot))
        self._points[slot] = None
        self._keys[slot] = None
        self._lists[slot] = None
        self._free.append(slot)
        group = self._key_slots[key]
        group.discard(slot)
        if not group:
            del self._key_slots[key]
        return True

    def replace(self, old: DataPoint, new: DataPoint) -> bool:
        """Swap ``old`` for ``new``, which must be a hop variant of the same
        observation (equal ``≺`` keys, hence equal value vectors).

        This is the min-hop-merge invalidation hook of the semi-global
        detector: ``[·]^min`` keeps the smallest-hop copy of each
        observation, which changes the stored :class:`DataPoint` but not the
        geometry, so the slot is relabelled in ``O(1)`` and every cached
        distance and neighbor list stays valid.
        """
        if old == new:
            return old in self._slot_of
        if sort_key(old) != sort_key(new):
            raise RankingError(
                f"replace() requires hop variants of the same observation; "
                f"got {old!r} and {new!r}"
            )
        slot = self._slot_of.pop(old, None)
        if slot is None:
            return False
        self._slot_of[new] = slot
        self._points[slot] = new
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def entries(self, point: DataPoint) -> Sequence[NeighborEntry]:
        """``point``'s neighbor list, sorted by ``(distance, ≺)``.

        The returned sequence is the live internal list: callers must treat
        it as read-only and must not hold it across mutations.
        """
        slot = self._slot_of.get(point)
        if slot is None:
            raise RankingError(f"{point!r} is not indexed")
        return self._lists[slot]

    def covers(self, points: Iterable[DataPoint]) -> bool:
        """Whether every point is indexed."""
        return all(p in self._slot_of for p in points)

    def try_subset(
        self, points: Sequence[DataPoint]
    ) -> Tuple[bool, Optional[IndexSubset]]:
        """Prepare a subset mask for scoring against ``points``.

        Returns ``(True, None)`` when ``points`` is exactly the full index
        (the fast full-index query path applies), ``(True, mask)`` when it is
        a proper indexed subset, and ``(False, None)`` when some point is not
        indexed (callers fall back to the brute-force oracle).
        """
        slots = []
        for point in points:
            slot = self._slot_of.get(point)
            if slot is None:
                return False, None
            slots.append(slot)
        distinct = set(slots)
        if len(distinct) == len(self._slot_of):
            return True, None
        mask = bytearray(len(self._points))
        for slot in distinct:
            mask[slot] = 1
        return True, IndexSubset(mask, len(distinct))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeighborhoodIndex(len={len(self)}, dimension={self._dimension}, "
            f"metric={self._metric.name!r})"
        )
