"""Incremental neighborhood index: the detector hot-path engine.

Every event of the paper's protocols (data arrival, window eviction, message
reception, link change) re-evaluates ``O_n(P_i)``, the support sets
``[P_i|x]`` and the per-neighbor sufficient-set fixpoint.  All of those
reduce to *nearest-neighbor geometry* over the sensor's holdings: which
points of some ``Q ⊆ P_i`` are closest to ``x``, and how many lie within a
radius.  Recomputing that geometry from scratch costs ``O(n² · d)`` per
event; this module maintains it *incrementally*.

:class:`NeighborhoodIndex` is a **flat-array engine**: for every indexed
point it keeps two parallel, contiguous buffers -- an ``array('d')`` of
neighbor distances and an ``array('l')`` of the matching slot ids -- sorted
by ``(distance, ≺)``, the exact order the brute-force ranking paths use (the
configured :class:`~repro.core.metrics.Metric`, Euclidean by default, for
the distance; the fixed total order ``≺`` for ties).  Indexed answers are
therefore *identical* to the reference computations under every registered
metric, not approximations, while the per-entry cost drops from a boxed
``(float, key, slot)`` tuple (~100 bytes plus allocator churn on every
insertion) to 16 bytes of raw C doubles/longs moved by ``memmove``:

* :meth:`add` computes one distance row with a single ``metric.rows`` kernel
  call over the maintained *parallel value buffer* (no per-event walk of the
  point→slot dict), sorts it once into the new point's own arrays, and
  splices ``(distance, slot)`` into every existing pair of arrays by
  distance-only bisection -- ``O(n · d)`` distance work plus ``O(n²)``
  C-``memmove`` bytes in the worst case, with no Python object allocation
  per entry;
* :meth:`discard` walks the departing point's own distance array to locate
  its entry in every counterpart array by bisection and deletes it (no
  distance recomputation);
* :meth:`replace` swaps a held point for a copy with a different ``hop``
  field in ``O(1)`` -- the semi-global detector's ``[·]^min`` merge changes
  hop counters but never geometry, so the index only relabels the slot.

Queries never mutate the index.  Scoring a point against the *full* index
reads the head of its distance array in ``O(k)`` (``O(1)`` for the k-th
distance); a radius count is one ``O(log n)`` bisection.  Scoring against a
*subset* ``Q ⊆ P`` -- the shape of every sufficient-set fixpoint iteration
-- walks the parallel arrays and filters by a precomputed membership mask
(:class:`IndexSubset`), i.e. set algebra over cached ranks instead of
re-sorting distances.

Mutation *observers* (see :meth:`NeighborhoodIndex.attach`) receive each
structural change together with the already-computed distance row, which is
what lets the dirty-set rescoring engine
(:class:`~repro.core.rescoring.ScoreCache`) decide in ``O(1)`` per neighbor
whose k-neighbor frontier the change perturbed.

Copies of the same observation (equal ``≺`` keys, e.g. hop variants) are
excluded from each other's neighbor arrays, mirroring the
candidate-exclusion rule of the brute-force paths.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .errors import RankingError
from .metrics import EUCLIDEAN, Metric
from .points import DataPoint, RestKey, sort_key

__all__ = ["NeighborhoodIndex", "IndexSubset", "NeighborEntry", "SLOT_DTYPE"]

#: Numpy dtype matching the ``array('l')`` slot buffers (used to view them
#: without copying, e.g. by the dirty-set rescoring engine).
SLOT_DTYPE = np.dtype(f"i{array('l').itemsize}")

#: One neighbor-list entry as exposed by :meth:`NeighborhoodIndex.entries`:
#: ``(distance, ≺-key of the neighbor, slot)``.  Sequences of these are
#: ordered exactly like the brute-force ``_sorted_by_distance`` (distance
#: first, then the fixed total order; the slot only disambiguates hop
#: variants, which share a ``≺`` key).
NeighborEntry = Tuple[float, RestKey, int]


class IndexSubset:
    """Membership mask for scoring against a subset ``Q`` of an index.

    Built once per bulk operation via :meth:`NeighborhoodIndex.try_subset`
    (or maintained incrementally by a
    :class:`~repro.core.rescoring.ScoreCache`) and shared by every per-point
    query so the ``O(|Q|)`` mask construction is not repeated.
    """

    __slots__ = ("mask", "size")

    def __init__(self, mask: bytearray, size: int) -> None:
        self.mask = mask
        self.size = size

    def __contains__(self, slot: int) -> bool:
        return bool(self.mask[slot])


class NeighborhoodIndex:
    """Persistent sorted-neighbor structure over a dynamic set of points.

    Examples
    --------
    >>> from repro.core import NeighborhoodIndex, NearestNeighborDistance, make_point
    >>> pts = [make_point([float(v)], 0, i) for i, v in enumerate([0.0, 1.0, 5.0])]
    >>> index = NeighborhoodIndex(pts)
    >>> NearestNeighborDistance().score_indexed(index, pts[2])
    4.0
    >>> _ = index.discard(pts[1])
    >>> NearestNeighborDistance().score_indexed(index, pts[2])
    5.0
    """

    __slots__ = (
        "_slot_of",
        "_points",
        "_keys",
        "_dists",
        "_nbrs",
        "_free",
        "_key_slots",
        "_dimension",
        "_metric",
        "_occ_slots",
        "_occ_values",
        "_occ_pos",
        "_observers",
    )

    def __init__(
        self,
        points: Iterable[DataPoint] = (),
        metric: Optional[Metric] = None,
    ) -> None:
        #: The metric space the neighbor arrays are sorted in.  Must match
        #: the metric of every ranking function queried against this index
        #: (the detectors construct both from the same configuration).
        self._metric = EUCLIDEAN if metric is None else metric
        #: point -> slot (points hash/compare including ``hop``).
        self._slot_of: Dict[DataPoint, int] = {}
        #: slot -> point (``None`` for free slots).
        self._points: List[Optional[DataPoint]] = []
        #: slot -> cached ``sort_key`` (``None`` for free slots).
        self._keys: List[Optional[RestKey]] = []
        #: slot -> neighbor distances, sorted ascending (``None`` if free).
        self._dists: List[Optional[array]] = []
        #: slot -> neighbor slot ids, parallel to ``_dists``.
        self._nbrs: List[Optional[array]] = []
        #: recycled slot numbers.
        self._free: List[int] = []
        #: ``≺`` key -> slots holding a copy of that observation.
        self._key_slots: Dict[RestKey, Set[int]] = {}
        #: Compact parallel buffers over the *occupied* slots: ``add`` feeds
        #: ``metric.rows`` straight from ``_occ_values`` instead of walking
        #: the point->slot dict per event.  Maintained by O(1) swap-removal;
        #: ``_occ_pos[slot]`` is the slot's position (-1 when free).
        self._occ_slots: array = array("l")
        self._occ_values: List[Tuple[float, ...]] = []
        self._occ_pos: List[int] = []
        #: Mutation observers (dirty-set rescoring caches).
        self._observers: List = []
        self._dimension: Optional[int] = None
        for point in points:
            self.add(point)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, point: DataPoint) -> bool:
        return point in self._slot_of

    def points(self) -> Iterator[DataPoint]:
        """Iterate over the indexed points (insertion order not guaranteed)."""
        return iter(self._slot_of)

    @property
    def dimension(self) -> Optional[int]:
        """Dimensionality of the indexed points (``None`` while empty)."""
        return self._dimension

    @property
    def metric(self) -> Metric:
        """The metric the cached neighbor arrays are sorted under."""
        return self._metric

    def point_at(self, slot: int) -> DataPoint:
        """The point currently stored in ``slot`` (internal ids exposed by
        the parallel slot arrays)."""
        point = self._points[slot]
        if point is None:  # pragma: no cover - defensive
            raise RankingError(f"slot {slot} is free")
        return point

    def key_at(self, slot: int) -> RestKey:
        """The cached ``≺`` key of the point in ``slot``."""
        key = self._keys[slot]
        if key is None:  # pragma: no cover - defensive
            raise RankingError(f"slot {slot} is free")
        return key

    def slot_for(self, point: DataPoint) -> int:
        """The slot holding ``point`` (:class:`RankingError` if absent)."""
        slot = self._slot_of.get(point)
        if slot is None:
            raise RankingError(f"{point!r} is not indexed")
        return slot

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def attach(self, observer) -> None:
        """Register a mutation observer.

        Observers are duck-typed with three callbacks, each invoked *after*
        the index structures are consistent:

        * ``point_added(slot, point, nbr_slots, nbr_dists)`` -- the new
          point's own parallel arrays (sorted, twins excluded);
        * ``point_removed(slot, point, nbr_slots, nbr_dists)`` -- the
          departed point's arrays, passed before they are freed;
        * ``point_relabeled(slot, old, new)`` -- a hop-only replace.

        The arrays are the live internals: observers must only read them and
        must not retain them past the callback.
        """
        self._observers.append(observer)

    def detach(self, observer) -> None:
        """Unregister a mutation observer (no-op when absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add(self, point: DataPoint) -> bool:
        """Index ``point``.  Returns ``False`` if it is already present.

        Cost: one ``metric.rows`` kernel call over the parallel value buffer
        (``O(n · d)`` distance work, the only Python-level arithmetic) plus
        one distance-bisected splice per neighbor array.  The splices are
        ``O(n²)`` *bytes* of C ``memmove`` in the worst case with zero
        Python-object allocation -- the point is replacing ``O(n² · d)``
        arithmetic per event with a single ``O(n · d)`` distance row.
        """
        if point in self._slot_of:
            return False
        if self._dimension is None:
            self._dimension = point.dimension
        elif point.dimension != self._dimension:
            raise RankingError(
                f"dimension mismatch: index holds {self._dimension}-dimensional "
                f"points, got {point.dimension}-dimensional {point!r}"
            )
        key = sort_key(point)
        same_key = self._key_slots.get(key)

        if self._free:
            slot = self._free.pop()
        else:
            slot = len(self._points)
            self._points.append(None)
            self._keys.append(None)
            self._dists.append(None)
            self._nbrs.append(None)
            self._occ_pos.append(-1)

        occ_slots = self._occ_slots
        own_dists = array("d")
        own_nbrs = array("l")
        if occ_slots:
            # One kernel call for the whole distance row: for the default
            # Euclidean metric that is the same per-pair ``math.dist``
            # arithmetic as the oracle, and for the vectorized metrics it
            # amortises the numpy dispatch over the row.
            row = self._metric.rows(point.values, self._occ_values)
            slot_row = np.frombuffer(occ_slots, dtype=SLOT_DTYPE)
            if same_key:
                keep = np.ones(len(row), dtype=bool)
                for twin in same_key:
                    keep &= slot_row != twin
                row = row[keep]
                slot_row = slot_row[keep]
            # Distance-first order; ties (equal doubles) must then be
            # re-ordered by ``(≺ key, slot)`` so the arrays match the
            # brute-force ``(distance, ≺)`` order exactly -- ties are rare
            # on continuous data, so the common case is a pure C argsort.
            order = np.argsort(row, kind="stable")
            sorted_dists = row[order]
            sorted_slots = slot_row[order]
            keys = self._keys
            if len(row) > 1 and bool((sorted_dists[1:] == sorted_dists[:-1]).any()):
                pairs = sorted(zip(row.tolist(), slot_row.tolist()))
                i, count = 0, len(pairs)
                while i < count - 1:
                    if pairs[i][0] == pairs[i + 1][0]:
                        tied = pairs[i][0]
                        j = i + 2
                        while j < count and pairs[j][0] == tied:
                            j += 1
                        run = pairs[i:j]
                        run.sort(key=lambda p: (keys[p[1]], p[1]))
                        pairs[i:j] = run
                        i = j
                    else:
                        i += 1
                own_dists.extend(p[0] for p in pairs)
                own_nbrs.extend(p[1] for p in pairs)
            else:
                own_dists.frombytes(sorted_dists.tobytes())
                own_nbrs.frombytes(np.ascontiguousarray(sorted_slots).tobytes())
            # Splice (distance, slot) into every neighbor's parallel arrays.
            dists_tbl = self._dists
            nbrs_tbl = self._nbrs
            key_slot = (key, slot)
            insert_at = bisect_right
            for d, s in zip(own_dists, own_nbrs):
                od = dists_tbl[s]
                on = nbrs_tbl[s]
                pos = insert_at(od, d)
                if pos and od[pos - 1] == d:
                    while (
                        pos
                        and od[pos - 1] == d
                        and (keys[on[pos - 1]], on[pos - 1]) > key_slot
                    ):
                        pos -= 1
                od.insert(pos, d)
                on.insert(pos, slot)
            # Release the no-copy view before the buffer is resized below.
            del slot_row
        self._slot_of[point] = slot
        self._points[slot] = point
        self._keys[slot] = key
        self._dists[slot] = own_dists
        self._nbrs[slot] = own_nbrs
        self._occ_pos[slot] = len(occ_slots)
        occ_slots.append(slot)
        self._occ_values.append(point.values)
        self._key_slots.setdefault(key, set()).add(slot)
        for observer in self._observers:
            observer.point_added(slot, point, own_nbrs, own_dists)
        return True

    def discard(self, point: DataPoint) -> bool:
        """Remove ``point`` from the index.  Returns ``False`` if absent.

        The departing point's own arrays already record its distance to
        every other point, so no distance is recomputed: each entry is
        located in the counterpart arrays by bisection and deleted.
        """
        slot = self._slot_of.pop(point, None)
        if slot is None:
            return False
        key = self._keys[slot]
        own_dists = self._dists[slot]
        own_nbrs = self._nbrs[slot]
        dists_tbl = self._dists
        nbrs_tbl = self._nbrs
        for d, other in zip(own_dists, own_nbrs):
            od = dists_tbl[other]
            on = nbrs_tbl[other]
            # The counterpart entry has the same distance; bisect to the end
            # of the equal-distance run and walk back to our slot id.
            pos = bisect_right(od, d) - 1
            while pos >= 0 and on[pos] != slot:
                pos -= 1
            if pos < 0:  # pragma: no cover - defensive (invariant violated)
                raise RankingError(
                    f"index invariant violated: slot {slot} missing from "
                    f"the neighbor arrays of slot {other}"
                )
            del od[pos]
            del on[pos]
        for observer in self._observers:
            observer.point_removed(slot, point, own_nbrs, own_dists)
        self._points[slot] = None
        self._keys[slot] = None
        self._dists[slot] = None
        self._nbrs[slot] = None
        self._free.append(slot)
        pos = self._occ_pos[slot]
        last_slot = self._occ_slots.pop()
        last_values = self._occ_values.pop()
        if last_slot != slot:
            self._occ_slots[pos] = last_slot
            self._occ_values[pos] = last_values
            self._occ_pos[last_slot] = pos
        self._occ_pos[slot] = -1
        group = self._key_slots[key]
        group.discard(slot)
        if not group:
            del self._key_slots[key]
        return True

    def replace(self, old: DataPoint, new: DataPoint) -> bool:
        """Swap ``old`` for ``new``, which must be a hop variant of the same
        observation (equal ``≺`` keys, hence equal value vectors).

        This is the min-hop-merge invalidation hook of the semi-global
        detector: ``[·]^min`` keeps the smallest-hop copy of each
        observation, which changes the stored :class:`DataPoint` but not the
        geometry, so the slot is relabelled in ``O(1)`` and every cached
        distance and neighbor array stays valid.
        """
        if old == new:
            return old in self._slot_of
        if sort_key(old) != sort_key(new):
            raise RankingError(
                f"replace() requires hop variants of the same observation; "
                f"got {old!r} and {new!r}"
            )
        slot = self._slot_of.pop(old, None)
        if slot is None:
            return False
        self._slot_of[new] = slot
        self._points[slot] = new
        for observer in self._observers:
            observer.point_relabeled(slot, old, new)
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def row_for(self, point: DataPoint) -> Tuple[Sequence[float], Sequence[int]]:
        """``point``'s parallel neighbor arrays ``(distances, slots)``,
        sorted by ``(distance, ≺)``.

        These are the live internal buffers, exposed for the ranking
        functions' indexed fast paths: callers must treat them as read-only
        and must not hold them across mutations.  External callers should
        prefer :meth:`entries`, which returns an immutable snapshot.
        """
        slot = self._slot_of.get(point)
        if slot is None:
            raise RankingError(f"{point!r} is not indexed")
        return self._dists[slot], self._nbrs[slot]

    def row_at(self, slot: int) -> Tuple[Sequence[float], Sequence[int]]:
        """Slot-addressed variant of :meth:`row_for` (same read-only
        contract)."""
        dists = self._dists[slot]
        if dists is None:  # pragma: no cover - defensive
            raise RankingError(f"slot {slot} is free")
        return dists, self._nbrs[slot]

    def entries(self, point: DataPoint) -> Tuple[NeighborEntry, ...]:
        """``point``'s neighbor list, sorted by ``(distance, ≺)``.

        Returns an immutable snapshot (a fresh tuple of
        :data:`NeighborEntry` triples) built from the internal flat arrays:
        callers cannot corrupt the index through it, and it stays valid --
        as a snapshot -- across later mutations.  Hot paths use the raw
        parallel arrays via :meth:`row_for` instead.
        """
        dists, nbrs = self.row_for(point)
        keys = self._keys
        return tuple((d, keys[s], s) for d, s in zip(dists, nbrs))

    def covers(self, points: Iterable[DataPoint]) -> bool:
        """Whether every point is indexed."""
        return all(p in self._slot_of for p in points)

    def try_subset(
        self, points: Sequence[DataPoint]
    ) -> Tuple[bool, Optional[IndexSubset]]:
        """Prepare a subset mask for scoring against ``points``.

        Returns ``(True, None)`` when ``points`` is exactly the full index
        (the fast full-index query path applies), ``(True, mask)`` when it is
        a proper indexed subset, and ``(False, None)`` when some point is not
        indexed (callers fall back to the brute-force oracle).
        """
        slots = []
        for point in points:
            slot = self._slot_of.get(point)
            if slot is None:
                return False, None
            slots.append(slot)
        distinct = set(slots)
        if len(distinct) == len(self._slot_of):
            return True, None
        mask = bytearray(len(self._points))
        for slot in distinct:
            mask[slot] = 1
        return True, IndexSubset(mask, len(distinct))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeighborhoodIndex(len={len(self)}, dimension={self._dimension}, "
            f"metric={self._metric.name!r})"
        )
