"""Incremental neighborhood index: the detector hot-path engine.

Every event of the paper's protocols (data arrival, window eviction, message
reception, link change) re-evaluates ``O_n(P_i)``, the support sets
``[P_i|x]`` and the per-neighbor sufficient-set fixpoint.  All of those
reduce to *nearest-neighbor geometry* over the sensor's holdings: which
points of some ``Q ⊆ P_i`` are closest to ``x``, and how many lie within a
radius.  Recomputing that geometry from scratch costs ``O(n² · d)`` per
event; this module maintains it *incrementally*.

:class:`NeighborhoodIndex` is a **flat-array engine**: for every indexed
point it keeps two parallel, contiguous buffers -- an ``array('d')`` of
neighbor distances and an ``array('i')`` of the matching slot ids -- sorted
by ``(distance, ≺)``, the exact order the brute-force ranking paths use (the
configured :class:`~repro.core.metrics.Metric`, Euclidean by default, for
the distance; the fixed total order ``≺`` for ties).  Indexed answers are
therefore *identical* to the reference computations under every registered
metric, not approximations, while the per-entry cost drops from a boxed
``(float, key, slot)`` tuple (~100 bytes plus allocator churn on every
insertion) to 12 bytes of raw C doubles/ints moved by ``memmove``:

* :meth:`add` computes one distance row with a single ``metric.rows`` kernel
  call over the maintained *parallel value buffer* (no per-event walk of the
  point→slot dict), sorts it once into the new point's own arrays, and
  splices ``(distance, slot)`` into every existing pair of arrays by
  distance-only bisection -- ``O(n · d)`` distance work plus ``O(n²)``
  C-``memmove`` bytes in the worst case, with no Python object allocation
  per entry;
* :meth:`discard` walks the departing point's own distance array to locate
  its entry in every counterpart array by bisection and deletes it (no
  distance recomputation);
* :meth:`replace` swaps a held point for a copy with a different ``hop``
  field in ``O(1)`` -- the semi-global detector's ``[·]^min`` merge changes
  hop counters but never geometry, so the index only relabels the slot;
* :meth:`apply_batch` applies one :class:`~repro.core.batch.EventBatch`
  (a whole protocol event's evictions, additions and relabels) in block
  form: all evictions become one boolean-mask rebuild per surviving array,
  all additions share a single ``metric.cross``/``metric.pairwise``
  distance block and are merged into each existing array by one
  ``searchsorted`` scatter instead of one bisected memmove per pair.  The
  resulting structure is *identical* -- entry for entry, slot for slot --
  to applying the same mutations one at a time.

Queries never mutate the index.  Scoring a point against the *full* index
reads the head of its distance array in ``O(k)`` (``O(1)`` for the k-th
distance); a radius count is one ``O(log n)`` bisection.  Scoring against a
*subset* ``Q ⊆ P`` -- the shape of every sufficient-set fixpoint iteration
-- walks the parallel arrays and filters by a precomputed membership mask
(:class:`IndexSubset`), i.e. set algebra over cached ranks instead of
re-sorting distances.

Mutation *observers* (see :meth:`NeighborhoodIndex.attach`) receive each
structural change together with the already-computed distance row, which is
what lets the dirty-set rescoring engine
(:class:`~repro.core.rescoring.ScoreCache`) decide in ``O(1)`` per neighbor
whose k-neighbor frontier the change perturbed.

Copies of the same observation (equal ``≺`` keys, e.g. hop variants) are
excluded from each other's neighbor arrays, mirroring the
candidate-exclusion rule of the brute-force paths.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .batch import EventBatch
from .errors import RankingError
from .metrics import EUCLIDEAN, Metric
from .points import DataPoint, RestKey, sort_key

__all__ = [
    "NeighborhoodIndex",
    "IndexSubset",
    "NeighborEntry",
    "SLOT_DTYPE",
    "SLOT_TYPECODE",
    "BATCH_BLOCK_THRESHOLD",
]

#: Typecode of the slot-id buffers.  C ``int`` (4 bytes on every supported
#: platform) rather than ``long``: slot ids are bounded by the window size
#: plus one batch, so 32 bits halves the neighbor-array traffic of the
#: block splice, which is memory-bound at the paper's window sizes.
SLOT_TYPECODE = "i"

#: Numpy dtype matching the ``array(SLOT_TYPECODE)`` slot buffers (used to
#: view them without copying, e.g. by the dirty-set rescoring engine).
SLOT_DTYPE = np.dtype(f"i{array(SLOT_TYPECODE).itemsize}")

#: ``apply_batch`` routes batches with at most this many additions
#: (respectively evictions) through the per-point mutations: the block path
#: costs a fixed number of numpy dispatches per surviving array regardless
#: of batch size, which only pays for itself once several points share
#: them.  A typical sampling tick (one arrival, one expiry) stays on the
#: cheap per-point path; crash resets, received messages and coarse-tick
#: batches take the block path.
BATCH_BLOCK_THRESHOLD = 4

#: Row count of the rectangular splice kernel inside the block-addition
#: path.  Chunks of this many equal-length survivor arrays are merged as one
#: matrix (a handful of numpy dispatches instead of ~20 per survivor) while
#: the chunk's working set -- a few hundred KB at the paper's window sizes --
#: stays cache-resident; whole-index matrices would stream every pass
#: through memory instead.
SPLICE_CHUNK_ROWS = 24

#: One neighbor-list entry as exposed by :meth:`NeighborhoodIndex.entries`:
#: ``(distance, ≺-key of the neighbor, slot)``.  Sequences of these are
#: ordered exactly like the brute-force ``_sorted_by_distance`` (distance
#: first, then the fixed total order; the slot only disambiguates hop
#: variants, which share a ``≺`` key).
NeighborEntry = Tuple[float, RestKey, int]


class IndexSubset:
    """Membership mask for scoring against a subset ``Q`` of an index.

    Built once per bulk operation via :meth:`NeighborhoodIndex.try_subset`
    (or maintained incrementally by a
    :class:`~repro.core.rescoring.ScoreCache`) and shared by every per-point
    query so the ``O(|Q|)`` mask construction is not repeated.
    """

    __slots__ = ("mask", "size")

    def __init__(self, mask: bytearray, size: int) -> None:
        self.mask = mask
        self.size = size

    def __contains__(self, slot: int) -> bool:
        return bool(self.mask[slot])


class NeighborhoodIndex:
    """Persistent sorted-neighbor structure over a dynamic set of points.

    Examples
    --------
    >>> from repro.core import NeighborhoodIndex, NearestNeighborDistance, make_point
    >>> pts = [make_point([float(v)], 0, i) for i, v in enumerate([0.0, 1.0, 5.0])]
    >>> index = NeighborhoodIndex(pts)
    >>> NearestNeighborDistance().score_indexed(index, pts[2])
    4.0
    >>> _ = index.discard(pts[1])
    >>> NearestNeighborDistance().score_indexed(index, pts[2])
    5.0
    """

    __slots__ = (
        "_slot_of",
        "_points",
        "_keys",
        "_dists",
        "_nbrs",
        "_free",
        "_key_slots",
        "_dimension",
        "_metric",
        "_occ_slots",
        "_occ_values",
        "_occ_pos",
        "_observers",
    )

    def __init__(
        self,
        points: Iterable[DataPoint] = (),
        metric: Optional[Metric] = None,
    ) -> None:
        #: The metric space the neighbor arrays are sorted in.  Must match
        #: the metric of every ranking function queried against this index
        #: (the detectors construct both from the same configuration).
        self._metric = EUCLIDEAN if metric is None else metric
        #: point -> slot (points hash/compare including ``hop``).
        self._slot_of: Dict[DataPoint, int] = {}
        #: slot -> point (``None`` for free slots).
        self._points: List[Optional[DataPoint]] = []
        #: slot -> cached ``sort_key`` (``None`` for free slots).
        self._keys: List[Optional[RestKey]] = []
        #: slot -> neighbor distances, sorted ascending (``None`` if free).
        self._dists: List[Optional[array]] = []
        #: slot -> neighbor slot ids, parallel to ``_dists``.
        self._nbrs: List[Optional[array]] = []
        #: recycled slot numbers.
        self._free: List[int] = []
        #: ``≺`` key -> slots holding a copy of that observation.
        self._key_slots: Dict[RestKey, Set[int]] = {}
        #: Compact parallel buffers over the *occupied* slots: ``add`` feeds
        #: ``metric.rows`` straight from ``_occ_values`` instead of walking
        #: the point->slot dict per event.  Maintained by O(1) swap-removal;
        #: ``_occ_pos[slot]`` is the slot's position (-1 when free).
        self._occ_slots: array = array(SLOT_TYPECODE)
        self._occ_values: List[Tuple[float, ...]] = []
        self._occ_pos: List[int] = []
        #: Mutation observers (dirty-set rescoring caches).
        self._observers: List = []
        self._dimension: Optional[int] = None
        for point in points:
            self.add(point)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, point: DataPoint) -> bool:
        return point in self._slot_of

    def points(self) -> Iterator[DataPoint]:
        """Iterate over the indexed points (insertion order not guaranteed)."""
        return iter(self._slot_of)

    @property
    def dimension(self) -> Optional[int]:
        """Dimensionality of the indexed points (``None`` while empty)."""
        return self._dimension

    @property
    def metric(self) -> Metric:
        """The metric the cached neighbor arrays are sorted under."""
        return self._metric

    def point_at(self, slot: int) -> DataPoint:
        """The point currently stored in ``slot`` (internal ids exposed by
        the parallel slot arrays)."""
        point = self._points[slot]
        if point is None:  # pragma: no cover - defensive
            raise RankingError(f"slot {slot} is free")
        return point

    def key_at(self, slot: int) -> RestKey:
        """The cached ``≺`` key of the point in ``slot``."""
        key = self._keys[slot]
        if key is None:  # pragma: no cover - defensive
            raise RankingError(f"slot {slot} is free")
        return key

    def slot_for(self, point: DataPoint) -> int:
        """The slot holding ``point`` (:class:`RankingError` if absent)."""
        slot = self._slot_of.get(point)
        if slot is None:
            raise RankingError(f"{point!r} is not indexed")
        return slot

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def attach(self, observer) -> None:
        """Register a mutation observer.

        Observers are duck-typed with three callbacks, each invoked *after*
        the index structures are consistent:

        * ``point_added(slot, point, nbr_slots, nbr_dists)`` -- the new
          point's own parallel arrays (sorted, twins excluded);
        * ``point_removed(slot, point, nbr_slots, nbr_dists)`` -- the
          departed point's arrays, passed before they are freed;
        * ``point_relabeled(slot, old, new)`` -- a hop-only replace.

        Block mutations (:meth:`apply_batch` above the small-batch
        threshold) are delivered through two *optional* hooks --
        ``points_added_batch(records, rows_mat, slots_mat)`` and
        ``points_removed_batch(records)`` with ``records`` a sequence of
        ``(slot, point, nbr_slots, nbr_dists)`` tuples in application
        order; observers without them receive the per-point callbacks once
        per record instead.  ``rows_mat``/``slots_mat`` are either ``None``
        or the block's shared unsorted distance/slot matrices, whose row
        ``j`` holds the same entries as record ``j``'s sorted arrays.
        Removal records are delivered while the departing slots are still
        labelled (``key_at`` works) but may precede the strip of the
        surviving arrays.

        The arrays are the live internals: observers must only read them and
        must not retain them past the callback.
        """
        self._observers.append(observer)

    def detach(self, observer) -> None:
        """Unregister a mutation observer (no-op when absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add(self, point: DataPoint) -> bool:
        """Index ``point``.  Returns ``False`` if it is already present.

        Cost: one ``metric.rows`` kernel call over the parallel value buffer
        (``O(n · d)`` distance work, the only Python-level arithmetic) plus
        one distance-bisected splice per neighbor array.  The splices are
        ``O(n²)`` *bytes* of C ``memmove`` in the worst case with zero
        Python-object allocation -- the point is replacing ``O(n² · d)``
        arithmetic per event with a single ``O(n · d)`` distance row.
        """
        if point in self._slot_of:
            return False
        if self._dimension is None:
            self._dimension = point.dimension
        elif point.dimension != self._dimension:
            raise RankingError(
                f"dimension mismatch: index holds {self._dimension}-dimensional "
                f"points, got {point.dimension}-dimensional {point!r}"
            )
        key = sort_key(point)
        same_key = self._key_slots.get(key)

        if self._free:
            slot = self._free.pop()
        else:
            slot = len(self._points)
            self._points.append(None)
            self._keys.append(None)
            self._dists.append(None)
            self._nbrs.append(None)
            self._occ_pos.append(-1)

        occ_slots = self._occ_slots
        if occ_slots:
            # One kernel call for the whole distance row: for the default
            # Euclidean metric that is the same per-pair ``math.dist``
            # arithmetic as the oracle, and for the vectorized metrics it
            # amortises the numpy dispatch over the row.
            row = self._metric.rows(point.values, self._occ_values)
            slot_row = np.frombuffer(occ_slots, dtype=SLOT_DTYPE)
            if same_key:
                keep = np.ones(len(row), dtype=bool)
                for twin in same_key:
                    keep &= slot_row != twin
                row = row[keep]
                slot_row = slot_row[keep]
            own_dists, own_nbrs = self._ordered_arrays(row, slot_row)
            # Splice (distance, slot) into every neighbor's parallel arrays.
            keys = self._keys
            dists_tbl = self._dists
            nbrs_tbl = self._nbrs
            key_slot = (key, slot)
            insert_at = bisect_right
            for d, s in zip(own_dists, own_nbrs):
                od = dists_tbl[s]
                on = nbrs_tbl[s]
                pos = insert_at(od, d)
                if pos and od[pos - 1] == d:
                    while (
                        pos
                        and od[pos - 1] == d
                        and (keys[on[pos - 1]], on[pos - 1]) > key_slot
                    ):
                        pos -= 1
                od.insert(pos, d)
                on.insert(pos, slot)
            # Release the no-copy view before the buffer is resized below.
            del slot_row
        else:
            own_dists = array("d")
            own_nbrs = array(SLOT_TYPECODE)
        self._slot_of[point] = slot
        self._points[slot] = point
        self._keys[slot] = key
        self._dists[slot] = own_dists
        self._nbrs[slot] = own_nbrs
        self._occ_pos[slot] = len(occ_slots)
        occ_slots.append(slot)
        self._occ_values.append(point.values)
        self._key_slots.setdefault(key, set()).add(slot)
        for observer in self._observers:
            observer.point_added(slot, point, own_nbrs, own_dists)
        return True

    def discard(self, point: DataPoint) -> bool:
        """Remove ``point`` from the index.  Returns ``False`` if absent.

        The departing point's own arrays already record its distance to
        every other point, so no distance is recomputed: each entry is
        located in the counterpart arrays by bisection and deleted.
        """
        slot = self._slot_of.pop(point, None)
        if slot is None:
            return False
        key = self._keys[slot]
        own_dists = self._dists[slot]
        own_nbrs = self._nbrs[slot]
        dists_tbl = self._dists
        nbrs_tbl = self._nbrs
        for d, other in zip(own_dists, own_nbrs):
            od = dists_tbl[other]
            on = nbrs_tbl[other]
            # The counterpart entry has the same distance; bisect to the end
            # of the equal-distance run and walk back to our slot id.
            pos = bisect_right(od, d) - 1
            while pos >= 0 and on[pos] != slot:
                pos -= 1
            if pos < 0:  # pragma: no cover - defensive (invariant violated)
                raise RankingError(
                    f"index invariant violated: slot {slot} missing from "
                    f"the neighbor arrays of slot {other}"
                )
            del od[pos]
            del on[pos]
        for observer in self._observers:
            observer.point_removed(slot, point, own_nbrs, own_dists)
        self._points[slot] = None
        self._keys[slot] = None
        self._dists[slot] = None
        self._nbrs[slot] = None
        self._free.append(slot)
        pos = self._occ_pos[slot]
        last_slot = self._occ_slots.pop()
        last_values = self._occ_values.pop()
        if last_slot != slot:
            self._occ_slots[pos] = last_slot
            self._occ_values[pos] = last_values
            self._occ_pos[last_slot] = pos
        self._occ_pos[slot] = -1
        group = self._key_slots[key]
        group.discard(slot)
        if not group:
            del self._key_slots[key]
        return True

    def replace(self, old: DataPoint, new: DataPoint) -> bool:
        """Swap ``old`` for ``new``, which must be a hop variant of the same
        observation (equal ``≺`` keys, hence equal value vectors).

        This is the min-hop-merge invalidation hook of the semi-global
        detector: ``[·]^min`` keeps the smallest-hop copy of each
        observation, which changes the stored :class:`DataPoint` but not the
        geometry, so the slot is relabelled in ``O(1)`` and every cached
        distance and neighbor array stays valid.
        """
        if old == new:
            return old in self._slot_of
        if sort_key(old) != sort_key(new):
            raise RankingError(
                f"replace() requires hop variants of the same observation; "
                f"got {old!r} and {new!r}"
            )
        slot = self._slot_of.pop(old, None)
        if slot is None:
            return False
        self._slot_of[new] = slot
        self._points[slot] = new
        for observer in self._observers:
            observer.point_relabeled(slot, old, new)
        return True

    # ------------------------------------------------------------------
    # Batched mutations
    # ------------------------------------------------------------------
    def apply_batch(self, batch: EventBatch) -> Tuple[int, int]:
        """Apply one :class:`~repro.core.batch.EventBatch` as a unit.

        Order of application is evictions, then additions, then hop
        relabels (see the batch-formation rules in
        :mod:`repro.core.batch`); the resulting index -- slot assignments,
        array contents, free-list order, observer-visible rows -- is
        *identical* to applying the same mutations one at a time in that
        order.  Returns ``(points added, points evicted)``.

        Small batches route through the per-point mutations: the block
        machinery costs a fixed number of numpy dispatches per surviving
        array regardless of batch size, which only pays for itself once
        several points share them.  One deliberate divergence: the block
        path validates the dimension of *every* pending addition before
        mutating anything, so a mixed-dimension batch raises without the
        partial application the sequential path would leave behind.
        """
        evicts = batch.evicts
        adds = batch.adds
        evicted = 0
        added = 0
        strip: Optional[np.ndarray] = None
        if len(evicts) > BATCH_BLOCK_THRESHOLD:
            # The block eviction defers the survivor-array rebuild: when a
            # block addition follows (the common tick shape), the departing
            # entries are stripped during the very same per-survivor rebuild
            # that splices the new ones in, halving the array traffic.
            evicted, strip = self._evict_block(evicts)
        else:
            for point in evicts:
                evicted += self.discard(point)
        if len(adds) > BATCH_BLOCK_THRESHOLD:
            added = self._add_block(adds, strip)
        else:
            if strip is not None:
                self._strip_block(strip)
            for point in adds:
                added += self.add(point)
        for old, new in batch.replaces:
            self.replace(old, new)
        return added, evicted

    def _evict_block(
        self, evicts: Sequence[DataPoint]
    ) -> Tuple[int, Optional[np.ndarray]]:
        """Unregister a batch of points; survivor arrays are *not* touched.

        Performs the bookkeeping half of a block eviction (observer
        notification, slot freeing, occupied-buffer compaction) and returns
        ``(count, departing-slot lookup table)``.  The caller owes the
        survivors one strip pass over that table -- either standalone via
        :meth:`_strip_block` or fused into :meth:`_add_block`'s rebuild.
        """
        departing: List[Tuple[int, DataPoint, array, array]] = []
        for point in evicts:
            slot = self._slot_of.pop(point, None)
            if slot is None:
                continue
            departing.append((slot, point, self._nbrs[slot], self._dists[slot]))
        if not departing:
            return 0, None
        # Observers see the departing rows while the slots are still
        # labelled (the rescoring cache reads ``key_at`` during `_leave`).
        self._notify_removed(departing)
        # Free the bookkeeping in eviction order so the free-list and the
        # compact occupied buffers end up exactly as after sequential
        # ``discard`` calls (slot reuse must replay identically).
        for slot, point, _on, _od in departing:
            key = self._keys[slot]
            self._points[slot] = None
            self._keys[slot] = None
            self._dists[slot] = None
            self._nbrs[slot] = None
            self._free.append(slot)
            pos = self._occ_pos[slot]
            last_slot = self._occ_slots.pop()
            last_values = self._occ_values.pop()
            if last_slot != slot:
                self._occ_slots[pos] = last_slot
                self._occ_values[pos] = last_values
                self._occ_pos[last_slot] = pos
            self._occ_pos[slot] = -1
            group = self._key_slots[key]
            group.discard(slot)
            if not group:
                del self._key_slots[key]
        if not self._occ_slots:
            return len(departing), None
        lut = np.zeros(len(self._points), dtype=bool)
        for entry in departing:
            lut[entry[0]] = True
        return len(departing), lut

    def _strip_block(self, lut: np.ndarray) -> None:
        """Drop departed entries from every surviving array in one pass.

        The sequential path pays one bisect-and-memmove per (departing
        point, surviving array) pair; here every surviving array is rebuilt
        once under a boolean keep-mask over the departing-slot lookup
        table, so the per-pair cost collapses into C-level fancy indexing.
        Used for eviction-only batches -- mixed batches fuse the strip into
        :meth:`_add_block`'s per-survivor rebuild instead.
        """
        dists_tbl = self._dists
        nbrs_tbl = self._nbrs
        keep_lut = ~lut
        for survivor in self._occ_slots:
            slot_view = np.frombuffer(nbrs_tbl[survivor], dtype=SLOT_DTYPE)
            keep = keep_lut[slot_view]
            if keep.all():  # twins of every departed point -- rare
                continue
            new_dists = array("d")
            new_dists.frombytes(
                np.frombuffer(dists_tbl[survivor])[keep].tobytes()
            )
            new_nbrs = array(SLOT_TYPECODE)
            new_nbrs.frombytes(slot_view[keep].tobytes())
            dists_tbl[survivor] = new_dists
            nbrs_tbl[survivor] = new_nbrs

    def _add_block(
        self, adds: Sequence[DataPoint], strip: Optional[np.ndarray] = None
    ) -> int:
        """Insert a batch of points off one shared distance block.

        One ``metric.cross`` call covers every (pending, existing) pair and
        one ``metric.pairwise`` call the batch-internal pairs -- bitwise the
        same distances as per-point ``metric.rows`` (the vectorized metrics
        reduce row-by-row, so block shape never changes summation order).
        Each pending point's own arrays come from the shared
        :meth:`_ordered_arrays` kernel, and each existing array absorbs all
        its new entries through a single ``searchsorted`` merge scatter.
        When ``strip`` (a departing-slot lookup table from
        :meth:`_evict_block`) is given, the same rebuild also drops the
        departed entries, so survivors are reconstructed exactly once per
        batch.
        """
        pending: List[DataPoint] = []
        seen: Set[DataPoint] = set()
        try:
            for point in adds:
                if point in self._slot_of or point in seen:
                    continue
                if self._dimension is None:
                    self._dimension = point.dimension
                elif point.dimension != self._dimension:
                    raise RankingError(
                        f"dimension mismatch: index holds {self._dimension}-"
                        f"dimensional points, got {point.dimension}-"
                        f"dimensional {point!r}"
                    )
                pending.append(point)
                seen.add(point)
        except RankingError:
            # The survivors still owe the deferred eviction strip; leave
            # the index consistent (all evictions applied, no additions)
            # before propagating the all-or-nothing validation failure.
            if strip is not None:
                self._strip_block(strip)
            raise
        if not pending:
            if strip is not None:
                self._strip_block(strip)
            return 0
        m = len(pending)
        keys = [sort_key(point) for point in pending]

        # Twin exclusions, looked up against the *pre-batch* index state
        # plus the batch itself (copies of one observation never appear in
        # each other's neighbor arrays).
        base_count = len(self._occ_slots)
        excl_base: Dict[int, List[int]] = {}
        key_members: Dict[RestKey, List[int]] = {}
        for j, key in enumerate(keys):
            key_members.setdefault(key, []).append(j)
            twins = self._key_slots.get(key)
            if twins:
                excl_base[j] = [self._occ_pos[t] for t in twins]
        excl_batch: Dict[int, Set[int]] = {}
        for members in key_members.values():
            if len(members) > 1:
                for j in members:
                    excl_batch[j] = {i for i in members if i != j}

        # The shared distance blocks, computed against the pre-batch value
        # buffer before any registration mutates it.
        values = [point.values for point in pending]
        if base_count:
            cross = self._metric.cross(values, self._occ_values)
            base_slot_row = np.frombuffer(self._occ_slots, dtype=SLOT_DTYPE).copy()
        else:
            cross = np.zeros((m, 0))
            base_slot_row = np.zeros(0, dtype=SLOT_DTYPE)
        inner = self._metric.pairwise(values) if m > 1 else None

        # Allocate slots in list order (the sequential path pops the same
        # LIFO free-list) and label them up front: the tie repair inside
        # `_ordered_arrays` reads the ``≺`` keys of batch-mates by slot.
        new_slots: List[int] = []
        for _ in range(m):
            if self._free:
                slot = self._free.pop()
            else:
                slot = len(self._points)
                self._points.append(None)
                self._keys.append(None)
                self._dists.append(None)
                self._nbrs.append(None)
                self._occ_pos.append(-1)
            new_slots.append(slot)
        for slot, key in zip(new_slots, keys):
            self._keys[slot] = key
        new_slot_row = np.asarray(new_slots, dtype=SLOT_DTYPE)

        # Without any twin exclusion (the overwhelmingly common case) every
        # pending point's unsorted own row is base distances followed by its
        # batch-mates, so the rows for the whole batch are two matrix writes
        # -- one cross copy, one off-diagonal gather of ``inner`` -- instead
        # of per-point concatenations and fancy-indexed mate picks.
        shared_rows = shared_slots = None
        if not excl_base and not excl_batch and base_count:
            own_width = base_count + m - 1
            shared_rows = np.empty((m, own_width))
            shared_slots = np.empty((m, own_width), dtype=SLOT_DTYPE)
            shared_rows[:, :base_count] = cross
            shared_slots[:, :base_count] = base_slot_row
            if m > 1:
                off_diag = ~np.eye(m, dtype=bool)
                shared_rows[:, base_count:] = inner[off_diag].reshape(m, m - 1)
                shared_slots[:, base_count:] = np.broadcast_to(
                    new_slot_row, (m, m)
                )[off_diag].reshape(m, m - 1)

        block_arrays = (
            None
            if shared_rows is None
            else self._ordered_arrays_block(shared_rows, shared_slots)
        )
        added_records: List[Tuple[int, DataPoint, array, array]] = []
        for j, point in enumerate(pending):
            if block_arrays is not None:
                own_dists, own_nbrs = block_arrays[j]
            else:
                row_parts: List[np.ndarray] = []
                slot_parts: List[np.ndarray] = []
                if base_count:
                    base_row = cross[j]
                    base_slots = base_slot_row
                    dropped = excl_base.get(j)
                    if dropped:
                        keep = np.ones(base_count, dtype=bool)
                        keep[dropped] = False
                        base_row = base_row[keep]
                        base_slots = base_slots[keep]
                    row_parts.append(base_row)
                    slot_parts.append(base_slots)
                if m > 1:
                    drop = excl_batch.get(j, frozenset())
                    mates = [i for i in range(m) if i != j and i not in drop]
                    if mates:
                        row_parts.append(inner[j, mates])
                        slot_parts.append(new_slot_row[mates])
                if row_parts:
                    row = (
                        np.concatenate(row_parts)
                        if len(row_parts) > 1
                        else row_parts[0]
                    )
                    slot_row = (
                        np.concatenate(slot_parts)
                        if len(slot_parts) > 1
                        else slot_parts[0]
                    )
                    own_dists, own_nbrs = self._ordered_arrays(row, slot_row)
                else:
                    own_dists = array("d")
                    own_nbrs = array(SLOT_TYPECODE)
            slot = new_slots[j]
            self._slot_of[point] = slot
            self._points[slot] = point
            self._dists[slot] = own_dists
            self._nbrs[slot] = own_nbrs
            self._occ_pos[slot] = len(self._occ_slots)
            self._occ_slots.append(slot)
            self._occ_values.append(point.values)
            self._key_slots.setdefault(keys[j], set()).add(slot)
            added_records.append((slot, point, own_nbrs, own_dists))

        # Rebuild every pre-existing array exactly once: strip the departed
        # entries (if a block eviction preceded us) and scatter the batch's
        # column in with a single ``searchsorted`` merge, instead of one
        # bisected memmove per (survivor, departing/added point) pair.
        # ``side='right'`` lands each new entry after any equal-distance
        # run, exactly where the sequential splice starts its key-ordered
        # walk-back; the walk-back itself is replayed by
        # :meth:`_repair_tie_runs` on the (rare) arrays containing a tie.
        if base_count:
            col_excl: Dict[int, List[int]] = {}
            for j, positions in excl_base.items():
                for pos in positions:
                    col_excl.setdefault(pos, []).append(j)
            dists_tbl = self._dists
            nbrs_tbl = self._nbrs
            keep_lut = None if strip is None else ~strip
            # One argsort for the whole block: row ``i`` of the transposed
            # sorted matrices is the batch pre-ordered for survivor ``i``'s
            # merge.  Sorting the transpose row-wise keeps every sort and
            # gather contiguous.  Introsort, not a stable sort: any two
            # batch entries with equal distance to a survivor land adjacent
            # in the merged row, where :meth:`_repair_tie_runs` re-sorts
            # the whole run by ``(≺ key, slot)`` -- the pre-merge order of
            # equal entries never reaches the final arrays.
            crossT = np.ascontiguousarray(cross.T)
            orderT = crossT.argsort(axis=1)
            colsT = np.take_along_axis(crossT, orderT, axis=1)
            slotsT = new_slot_row[orderT]
            base_targets = base_slot_row.tolist()
            # Rows of exactly this width are *complete*: unique entries
            # drawn from (survivors ∪ departing) minus the row's own slot,
            # so a full-width row provably holds every departing slot
            # exactly once and the chunked strip can skip its per-row
            # uniformity count.
            n_depart = 0 if strip is None else int(strip.sum())
            full_width = base_count + n_depart - 1
            arange_m = np.arange(m)
            empty_d = np.empty(0)
            empty_n = np.empty(0, dtype=SLOT_DTYPE)

            def splice_row(i: int) -> None:
                """Strip-and-merge one survivor's arrays (scalar path)."""
                dropped = col_excl.get(i)
                if dropped is None:
                    col = colsT[i]
                    scol = slotsT[i]
                    offsets = arange_m
                else:  # twins in the batch -- rare
                    keep = np.ones(m, dtype=bool)
                    keep[dropped] = False
                    keep = keep[orderT[i]]
                    col = colsT[i][keep]
                    scol = slotsT[i][keep]
                    offsets = arange_m[: len(col)]
                    if not len(col):
                        if keep_lut is None:
                            return  # nothing to insert, nothing to strip
                        col = empty_d
                        scol = empty_n
                target = base_targets[i]
                old_d = np.frombuffer(dists_tbl[target])
                old_n = np.frombuffer(nbrs_tbl[target], dtype=SLOT_DTYPE)
                if keep_lut is not None:
                    keep_rows = keep_lut[old_n]
                    old_d = old_d[keep_rows]
                    old_n = old_n[keep_rows]
                pos = old_d.searchsorted(col, side="right")
                targets = pos + offsets
                total = old_d.shape[0] + col.shape[0]
                out_d = np.empty(total)
                out_n = np.empty(total, dtype=SLOT_DTYPE)
                out_d[targets] = col
                out_n[targets] = scol
                gaps = np.ones(total, dtype=bool)
                gaps[targets] = False
                out_d[gaps] = old_d
                out_n[gaps] = old_n
                if total > 1 and (out_d[1:] == out_d[:-1]).any():
                    out_d, out_n = self._repair_tie_runs(out_d, out_n)
                new_dists = array("d")
                new_dists.frombytes(out_d.tobytes())
                new_nbrs = array(SLOT_TYPECODE)
                new_nbrs.frombytes(out_n.tobytes())
                dists_tbl[target] = new_dists
                nbrs_tbl[target] = new_nbrs

            if col_excl:
                for i in range(base_count):
                    splice_row(i)
            else:
                # Chunked rectangular path: survivors whose arrays share a
                # length are rebuilt a cache-sized block of rows at a time,
                # collapsing the per-survivor numpy dispatch into a handful
                # of matrix operations while the working set stays L2-hot.
                # Any chunk that breaks the rectangle (ragged lengths, or a
                # strip that removes different counts per row -- both only
                # happen around ``≺``-key twins) falls back to the scalar
                # splice for its rows; the results are identical.
                lo = 0
                while lo < base_count:
                    hi = min(lo + SPLICE_CHUNK_ROWS, base_count)
                    if not self._splice_chunk(
                        base_targets,
                        colsT,
                        slotsT,
                        keep_lut,
                        lo,
                        hi,
                        m,
                        full_width,
                        n_depart,
                    ):
                        for i in range(lo, hi):
                            splice_row(i)
                    lo = hi
        self._notify_added(added_records, shared_rows, shared_slots)
        return m

    def _splice_chunk(
        self,
        base_targets: List[int],
        colsT: np.ndarray,
        slotsT: np.ndarray,
        keep_lut: Optional[np.ndarray],
        lo: int,
        hi: int,
        m: int,
        full_width: int,
        n_depart: int,
    ) -> bool:
        """Strip-and-merge survivors ``lo..hi`` as one rectangular matrix.

        Requires every row in the chunk to have the same array length and
        (when a strip table is given) to lose the same number of entries --
        true away from ``≺``-key twins, since every survivor then holds
        every departing slot.  Returns ``False`` without mutating anything
        when the rectangle does not hold, so the caller can fall back to
        the scalar splice.  The merged rows are byte-identical to the
        scalar path: same ``side='right'`` searchsorted targets, same
        stable batch order, same tie-run repair.
        """
        dists_tbl = self._dists
        nbrs_tbl = self._nbrs
        rows = base_targets[lo:hi]
        nrows = len(rows)
        width = len(dists_tbl[rows[0]])
        for target in rows:
            if len(dists_tbl[target]) != width:
                return False
        big_d = np.concatenate(
            [np.frombuffer(dists_tbl[t]) for t in rows]
        ).reshape(nrows, width)
        big_n = np.concatenate(
            [np.frombuffer(nbrs_tbl[t], dtype=SLOT_DTYPE) for t in rows]
        ).reshape(nrows, width)
        if keep_lut is not None and width:
            keep = keep_lut[big_n]
            if width == full_width:
                # Complete rows (see caller): every departing slot appears
                # exactly once per row, no uniformity count needed.
                kept = width - n_depart
            else:
                counts = keep.sum(axis=1)
                kept = int(counts[0])
                if not (counts == kept).all():
                    return False
            if kept != width:
                big_d = big_d[keep].reshape(nrows, kept)
                big_n = big_n[keep].reshape(nrows, kept)
                width = kept
        cols = colsT[lo:hi]
        scols = slotsT[lo:hi]
        pos = np.empty((nrows, m), dtype=np.intp)
        for r in range(nrows):
            pos[r] = big_d[r].searchsorted(cols[r], side="right")
        total_row = width + m
        flat_targets = (
            pos + np.arange(m) + (np.arange(nrows) * total_row)[:, None]
        ).ravel()
        out_d = np.empty(nrows * total_row)
        out_n = np.empty(nrows * total_row, dtype=SLOT_DTYPE)
        out_d[flat_targets] = cols.ravel()
        out_n[flat_targets] = scols.ravel()
        gaps = np.ones(nrows * total_row, dtype=bool)
        gaps[flat_targets] = False
        out_d[gaps] = big_d.ravel()
        out_n[gaps] = big_n.ravel()
        out_d = out_d.reshape(nrows, total_row)
        out_n = out_n.reshape(nrows, total_row)
        if total_row > 1:
            ties = out_d[:, 1:] == out_d[:, :-1]
            if ties.any():
                for r in np.nonzero(ties.any(axis=1))[0]:
                    row_d, row_n = self._repair_tie_runs(out_d[r], out_n[r])
                    out_d[r] = row_d
                    out_n[r] = row_n
        out_d_mv = out_d.data.cast("B")
        out_n_mv = out_n.data.cast("B")
        d_stride = total_row * out_d.itemsize
        n_stride = total_row * out_n.itemsize
        for r, target in enumerate(rows):
            new_dists = array("d")
            new_dists.frombytes(out_d_mv[r * d_stride : (r + 1) * d_stride])
            new_nbrs = array(SLOT_TYPECODE)
            new_nbrs.frombytes(out_n_mv[r * n_stride : (r + 1) * n_stride])
            dists_tbl[target] = new_dists
            nbrs_tbl[target] = new_nbrs
        return True

    def _repair_tie_runs(
        self, dists: np.ndarray, slots: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-sort every equal-distance run by ``(≺ key, slot)``.

        Runs that predate a merge already satisfy the invariant, so the
        re-sort is idempotent there; runs containing freshly spliced
        entries are where the repair matters.
        """
        keys = self._keys
        pairs = list(zip(dists.tolist(), slots.tolist()))
        i, count = 0, len(pairs)
        while i < count - 1:
            if pairs[i][0] == pairs[i + 1][0]:
                tied = pairs[i][0]
                j = i + 2
                while j < count and pairs[j][0] == tied:
                    j += 1
                run = pairs[i:j]
                run.sort(key=lambda p: (keys[p[1]], p[1]))
                pairs[i:j] = run
                i = j
            else:
                i += 1
        out_d = np.fromiter((p[0] for p in pairs), dtype=float, count=count)
        out_n = np.fromiter((p[1] for p in pairs), dtype=SLOT_DTYPE, count=count)
        return out_d, out_n

    def _ordered_arrays(
        self, row: np.ndarray, slot_row: np.ndarray
    ) -> Tuple[array, array]:
        """Sort one distance row into a point's own parallel arrays.

        Distance-first order; ties (equal doubles) must then be re-ordered
        by ``(≺ key, slot)`` so the arrays match the brute-force
        ``(distance, ≺)`` order exactly -- ties are rare on continuous
        data, so the common case is a pure C argsort.  Shared by
        :meth:`add` and the batched insertion path.
        """
        own_dists = array("d")
        own_nbrs = array(SLOT_TYPECODE)
        if not len(row):
            return own_dists, own_nbrs
        # Introsort, not a stable sort: without ties the order is unique
        # anyway, and with ties the pairs-based repair below rebuilds the
        # arrays from scratch -- so sort stability buys nothing at ~2x the
        # sort cost.
        order = row.argsort()
        sorted_dists = row[order]
        sorted_slots = slot_row[order]
        if len(row) > 1 and bool((sorted_dists[1:] == sorted_dists[:-1]).any()):
            keys = self._keys
            pairs = sorted(zip(row.tolist(), slot_row.tolist()))
            i, count = 0, len(pairs)
            while i < count - 1:
                if pairs[i][0] == pairs[i + 1][0]:
                    tied = pairs[i][0]
                    j = i + 2
                    while j < count and pairs[j][0] == tied:
                        j += 1
                    run = pairs[i:j]
                    run.sort(key=lambda p: (keys[p[1]], p[1]))
                    pairs[i:j] = run
                    i = j
                else:
                    i += 1
            own_dists.extend(p[0] for p in pairs)
            own_nbrs.extend(p[1] for p in pairs)
        else:
            own_dists.frombytes(sorted_dists.tobytes())
            own_nbrs.frombytes(np.ascontiguousarray(sorted_slots).tobytes())
        return own_dists, own_nbrs

    def _ordered_arrays_block(
        self, rows: np.ndarray, slot_rows: np.ndarray
    ) -> List[Tuple[array, array]]:
        """:meth:`_ordered_arrays` for a whole ``(m, width)`` block at once.

        One axis-1 argsort/gather/serialize for the block instead of ``m``
        dispatch rounds.  Rows with no equal-distance pair have a unique
        order, so the row-wise introsort matches the per-row sort exactly;
        rows containing a tie (detected the same way the scalar path does)
        are handed back to :meth:`_ordered_arrays`, whose pairs-based
        repair rebuilds them -- byte-identical either way.
        """
        m, width = rows.shape
        order = rows.argsort(axis=1)
        sorted_dists = np.take_along_axis(rows, order, axis=1)
        sorted_slots = np.take_along_axis(slot_rows, order, axis=1)
        tie_rows = None
        if width > 1:
            ties = sorted_dists[:, 1:] == sorted_dists[:, :-1]
            if ties.any():
                tie_rows = ties.any(axis=1)
        dists_mv = sorted_dists.data.cast("B")
        slots_mv = sorted_slots.data.cast("B")
        d_stride = width * sorted_dists.itemsize
        n_stride = width * sorted_slots.itemsize
        out: List[Tuple[array, array]] = []
        for j in range(m):
            if tie_rows is not None and tie_rows[j]:
                out.append(self._ordered_arrays(rows[j], slot_rows[j]))
                continue
            own_dists = array("d")
            own_dists.frombytes(dists_mv[j * d_stride : (j + 1) * d_stride])
            own_nbrs = array(SLOT_TYPECODE)
            own_nbrs.frombytes(slots_mv[j * n_stride : (j + 1) * n_stride])
            out.append((own_dists, own_nbrs))
        return out

    def _notify_added(
        self,
        records: Sequence[Tuple[int, DataPoint, array, array]],
        rows_mat: Optional[np.ndarray] = None,
        slots_mat: Optional[np.ndarray] = None,
    ) -> None:
        """Notify observers of a block addition.

        ``rows_mat``/``slots_mat`` are the block's shared (unsorted)
        distance/slot matrices when the twin-free fast path built them --
        row ``j`` holds the same (multi)set of entries as record ``j``'s
        sorted arrays, so set-semantics consumers (dirty marking) can scan
        the matrix in one vectorized pass instead of row by row.
        """
        for observer in self._observers:
            hook = getattr(observer, "points_added_batch", None)
            if hook is not None:
                hook(records, rows_mat, slots_mat)
            else:
                for slot, point, own_nbrs, own_dists in records:
                    observer.point_added(slot, point, own_nbrs, own_dists)

    def _notify_removed(
        self, records: Sequence[Tuple[int, DataPoint, array, array]]
    ) -> None:
        for observer in self._observers:
            hook = getattr(observer, "points_removed_batch", None)
            if hook is not None:
                hook(records)
            else:
                for slot, point, own_nbrs, own_dists in records:
                    observer.point_removed(slot, point, own_nbrs, own_dists)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def row_for(self, point: DataPoint) -> Tuple[Sequence[float], Sequence[int]]:
        """``point``'s parallel neighbor arrays ``(distances, slots)``,
        sorted by ``(distance, ≺)``.

        These are the live internal buffers, exposed for the ranking
        functions' indexed fast paths: callers must treat them as read-only
        and must not hold them across mutations.  External callers should
        prefer :meth:`entries`, which returns an immutable snapshot.
        """
        slot = self._slot_of.get(point)
        if slot is None:
            raise RankingError(f"{point!r} is not indexed")
        return self._dists[slot], self._nbrs[slot]

    def row_at(self, slot: int) -> Tuple[Sequence[float], Sequence[int]]:
        """Slot-addressed variant of :meth:`row_for` (same read-only
        contract)."""
        dists = self._dists[slot]
        if dists is None:  # pragma: no cover - defensive
            raise RankingError(f"slot {slot} is free")
        return dists, self._nbrs[slot]

    def entries(self, point: DataPoint) -> Tuple[NeighborEntry, ...]:
        """``point``'s neighbor list, sorted by ``(distance, ≺)``.

        Returns an immutable snapshot (a fresh tuple of
        :data:`NeighborEntry` triples) built from the internal flat arrays:
        callers cannot corrupt the index through it, and it stays valid --
        as a snapshot -- across later mutations.  Hot paths use the raw
        parallel arrays via :meth:`row_for` instead.
        """
        dists, nbrs = self.row_for(point)
        keys = self._keys
        return tuple((d, keys[s], s) for d, s in zip(dists, nbrs))

    def covers(self, points: Iterable[DataPoint]) -> bool:
        """Whether every point is indexed."""
        return all(p in self._slot_of for p in points)

    def try_subset(
        self, points: Sequence[DataPoint]
    ) -> Tuple[bool, Optional[IndexSubset]]:
        """Prepare a subset mask for scoring against ``points``.

        Returns ``(True, None)`` when ``points`` is exactly the full index
        (the fast full-index query path applies), ``(True, mask)`` when it is
        a proper indexed subset, and ``(False, None)`` when some point is not
        indexed (callers fall back to the brute-force oracle).
        """
        slots = []
        for point in points:
            slot = self._slot_of.get(point)
            if slot is None:
                return False, None
            slots.append(slot)
        distinct = set(slots)
        if len(distinct) == len(self._slot_of):
            return True, None
        mask = bytearray(len(self._points))
        for slot in distinct:
            mask[slot] = 1
        return True, IndexSubset(mask, len(distinct))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeighborhoodIndex(len={len(self)}, dimension={self._dimension}, "
            f"metric={self._metric.name!r})"
        )
