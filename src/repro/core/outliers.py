"""Top-n outlier selection ``O_n(D)`` (Section 4.1).

Given a ranking function ``R`` and a user parameter ``n``, the outliers of a
finite dataset ``D`` are the ``n`` points with the largest ``R(x, D)``; ties
are broken by the fixed total order ``≺`` so that the answer is unique.  When
``|D| < n`` the whole dataset is returned, as the paper specifies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from .errors import ConfigurationError
from .points import DataPoint, sort_key
from .ranking import RankingFunction, UNRESOLVED_SUBSET

__all__ = ["top_n_outliers", "ranked_points", "OutlierQuery"]


def ranked_points(
    ranking: RankingFunction,
    D: Iterable[DataPoint],
    index=None,
    subset=UNRESOLVED_SUBSET,
) -> List[Tuple[float, DataPoint]]:
    """Return ``(score, point)`` pairs for every point of ``D`` scored against
    ``D`` itself, sorted from most to least outlying (ties broken by ``≺``,
    larger key first, so the order is a strict total order).

    When a :class:`~repro.core.index.NeighborhoodIndex` covering ``D`` is
    supplied, scores are read from its cached sorted-neighbor lists instead
    of rebuilding the pairwise-distance matrix; otherwise (or when some point
    of ``D`` is not indexed) the brute-force oracle is used.  Callers that
    already resolved ``D``'s membership mask pass it as ``subset`` (an
    :class:`~repro.core.index.IndexSubset`, or ``None`` for the whole index)
    to skip the ``O(|D|)`` ``try_subset`` rebuild.
    """
    points = list(D)
    scores = None
    if index is not None and points:
        if subset is UNRESOLVED_SUBSET:
            covered, subset = index.try_subset(points)
        else:
            covered = True
        if covered:
            scores = ranking.bulk_scores_indexed(index, points, subset)
    if scores is None:
        scores = ranking.bulk_scores(points)
    # Sort on materialised (score, ≺-key, point) triples: a key-function-free
    # sort is measurably faster on the per-event hot path, and the ordering
    # is identical (the point itself only breaks full ties, where ``≺``
    # comparison falls back to the stable input order either way).
    triples = sorted(
        zip(scores, (sort_key(p) for p in points), points), reverse=True
    )
    return [(score, point) for score, _, point in triples]


def top_n_outliers(
    ranking: RankingFunction,
    D: Iterable[DataPoint],
    n: int,
    index=None,
    subset=UNRESOLVED_SUBSET,
) -> List[DataPoint]:
    """Return ``O_n(D)``: the top ``n`` outliers of ``D`` under ``ranking``.

    The result is ordered from most to least outlying.  If ``D`` has fewer
    than ``n`` points, all of them are returned (still ordered).  ``index``
    and ``subset`` are forwarded to :func:`ranked_points`.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    scored = ranked_points(ranking, D, index=index, subset=subset)
    return [p for _, p in scored[:n]] if n else []


class OutlierQuery:
    """Convenience object bundling a ranking function with the outlier count.

    The detectors take an :class:`OutlierQuery` so that the pair
    ``(R, n)`` -- which every sensor must agree on -- travels together.
    """

    def __init__(self, ranking: RankingFunction, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"number of outliers n must be >= 1, got {n}")
        self.ranking = ranking
        self.n = int(n)

    def outliers(
        self, D: Iterable[DataPoint], index=None, subset=UNRESOLVED_SUBSET
    ) -> List[DataPoint]:
        """``O_n(D)`` as an ordered list (most outlying first)."""
        return top_n_outliers(self.ranking, D, self.n, index=index, subset=subset)

    def outlier_set(self, D: Iterable[DataPoint], index=None) -> Set[DataPoint]:
        """``O_n(D)`` as a set (order-free comparisons)."""
        return set(self.outliers(D, index=index))

    def score(self, x: DataPoint, D: Iterable[DataPoint]) -> float:
        """``R(x, D)`` under the query's ranking function."""
        return self.ranking.score(x, D)

    def support(self, x: DataPoint, P: Iterable[DataPoint]):
        """``[P|x]`` under the query's ranking function."""
        return self.ranking.support(x, P)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OutlierQuery(ranking={self.ranking!r}, n={self.n})"
