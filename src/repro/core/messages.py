"""Protocol messages exchanged between sensors.

Because of the broadcast nature of WSN communication, a sensor cannot send
points to a single immediate neighbor without all other neighbors overhearing
the transmission.  The paper therefore accumulates every point that must reach
*some* neighbor into a single packet ``M`` in which each point is tagged with
the identifiers of its intended recipients.  A neighbor receiving ``M``
extracts the points tagged with its own id and ignores the rest; if none of
the points are tagged for it, the reception is not an event.

:class:`OutlierMessage` models exactly this packet.  The wire-size helpers are
what the energy model uses to translate a message into transmission airtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple

from .points import DataPoint

__all__ = ["OutlierMessage", "POINT_WIRE_BYTES", "TAG_WIRE_BYTES", "HEADER_WIRE_BYTES"]

#: Bytes needed to encode one data point on the wire: three 4-byte floats
#: (value, x, y), a 2-byte origin id, a 2-byte epoch, a 4-byte timestamp and a
#: 1-byte hop counter, rounded up.  The exact constant only scales all energy
#: numbers uniformly; the paper does not publish its encoding.
POINT_WIRE_BYTES = 20

#: Bytes per recipient tag attached to a point.
TAG_WIRE_BYTES = 2

#: Fixed per-packet header (source id, packet type, length, CRC).
HEADER_WIRE_BYTES = 12


@dataclass(frozen=True)
class OutlierMessage:
    """A single broadcast packet carrying recipient-tagged data points.

    Attributes
    ----------
    sender:
        Identifier of the transmitting sensor.
    payloads:
        Mapping from recipient sensor id to the frozen set of points tagged
        for that recipient.  Every set is non-empty.
    """

    sender: int
    payloads: Mapping[int, FrozenSet[DataPoint]]

    def __post_init__(self) -> None:
        cleaned: Dict[int, FrozenSet[DataPoint]] = {
            int(dest): frozenset(points)
            for dest, points in dict(self.payloads).items()
            if points
        }
        object.__setattr__(self, "payloads", cleaned)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def recipients(self) -> Tuple[int, ...]:
        """Recipient ids in deterministic (sorted) order."""
        return tuple(sorted(self.payloads))

    def payload_for(self, node_id: int) -> FrozenSet[DataPoint]:
        """Points tagged for ``node_id`` (empty set when not a recipient)."""
        return self.payloads.get(node_id, frozenset())

    def is_empty(self) -> bool:
        """True when no recipient would extract any point from this packet."""
        return not self.payloads

    def unique_points(self) -> Set[DataPoint]:
        """The distinct points carried by the packet (each transmitted once,
        regardless of how many recipients it is tagged for)."""
        result: Set[DataPoint] = set()
        for points in self.payloads.values():
            result |= points
        return result

    def total_point_entries(self) -> int:
        """Total number of (point, recipient) pairs -- the bookkeeping load."""
        return sum(len(points) for points in self.payloads.values())

    def tag_count(self) -> int:
        """Number of recipient tags on the wire (same as point entries)."""
        return self.total_point_entries()

    def wire_size_bytes(self) -> int:
        """Size of the packet on the wire in bytes.

        Each distinct point is encoded once; each (point, recipient) pair adds
        one recipient tag; a fixed header is always present.
        """
        return (
            HEADER_WIRE_BYTES
            + POINT_WIRE_BYTES * len(self.unique_points())
            + TAG_WIRE_BYTES * self.tag_count()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{dest}:{len(points)}pts" for dest, points in sorted(self.payloads.items())
        )
        return f"OutlierMessage(sender={self.sender}, {{{parts}}})"
