"""Outlier ranking functions ``R(x, Q)``.

Section 4.1 of the paper defines outliers through a *ranking function*
``R`` mapping a point ``x`` and a finite dataset ``Q`` to a non-negative real
number: the larger the value, the more outlying ``x`` is with respect to
``Q``.  The distributed algorithms are correct for every ``R`` that satisfies
two axioms:

* **anti-monotonicity** -- for ``Q1 ⊆ Q2``: ``R(x, Q1) >= R(x, Q2)``
  (adding points can only make ``x`` look *less* outlying);
* **smoothness** -- if ``R(x, Q1) > R(x, Q2)`` for ``Q1 ⊆ Q2`` then some
  single point ``z ∈ Q2 \\ Q1`` already lowers the rating:
  ``R(x, Q1) > R(x, Q1 ∪ {z})``.

This module ships the ranking functions used in the paper's evaluation plus
the distance-to-``α``-neighborhood count variant mentioned in the related-work
discussion:

* :class:`KthNearestNeighborDistance` -- distance to the k-th nearest
  neighbor (``NN`` in the plots is the ``k = 1`` special case,
  :class:`NearestNeighborDistance`);
* :class:`AverageKNNDistance` -- average distance to the k nearest neighbors
  (``KNN`` in the plots);
* :class:`NeighborCountWithinRadius` -- the inverse of the number of
  neighbors within distance ``α`` (Knorr & Ng style distance-based outliers).

Every ranking function also knows how to compute the *minimal support set*
``[P|x]`` required by the distributed protocol (see
:mod:`repro.core.support`).

All three rankings are metric-agnostic: they accept any
:class:`~repro.core.metrics.Metric` (default: Euclidean) and route every
distance -- scalar scoring, the vectorized bulk oracle and the sorted
support-set walks -- through it, so the paper's algorithms run unchanged
over Manhattan, Chebyshev, weighted or Mahalanobis geometry.
"""

from __future__ import annotations

import bisect
import math
from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .errors import ConfigurationError, RankingError
from .metrics import EUCLIDEAN, Metric
from .points import DataPoint, sort_key

__all__ = [
    "RankingFunction",
    "KthNearestNeighborDistance",
    "NearestNeighborDistance",
    "AverageKNNDistance",
    "NeighborCountWithinRadius",
    "DEFICIT_UNIT",
    "INFINITE_SCORE",
    "UNRESOLVED_SUBSET",
    "rank_key",
    "ranking_from_name",
]

#: Penalty unit applied per *missing* neighbor when a point has fewer
#: candidate neighbors than the ranking function requires.  A point with a
#: neighbor deficit is maximally outlying, but a flat ``inf`` score would
#: violate the smoothness axiom (adding one neighbor would not change the
#: score while the deficit persists).  Scoring the deficit as
#: ``(k - available) * DEFICIT_UNIT`` keeps the function anti-monotone *and*
#: smooth: every additional neighbor strictly lowers the score.  The unit is
#: chosen far above any realistic inter-point distance so a deficient point
#: always outranks a non-deficient one.
DEFICIT_UNIT = 1.0e18

#: Backwards-compatible alias: the score of a point with the maximum possible
#: neighbor deficit of 1 (kept for callers that only need "a very large
#: score").
INFINITE_SCORE = DEFICIT_UNIT


def _neighbors(x: DataPoint, Q: Iterable[DataPoint]) -> list[DataPoint]:
    """Candidate neighbors of ``x`` in ``Q``: every point of ``Q`` other than
    ``x`` itself (compared by the ``≺`` key, i.e. by ``rest`` fields)."""
    xkey = sort_key(x)
    return [q for q in Q if sort_key(q) != xkey]


def _sorted_by_distance(
    x: DataPoint, candidates: Sequence[DataPoint], metric: Metric = EUCLIDEAN
) -> list[DataPoint]:
    """Candidates sorted by increasing distance to ``x``; ties broken by the
    fixed total order ``≺`` so that the result is deterministic."""
    dist = metric.distance
    xv = x.values
    return sorted(candidates, key=lambda q: (dist(xv, q.values), sort_key(q)))


#: Sentinel for "no precomputed subset": callers that already resolved a
#: membership mask for the dataset they score against (the detectors cache
#: one per event, see :class:`~repro.core.index.IndexSubset`) pass it to the
#: query layers to skip the ``O(|P|)`` ``try_subset`` rebuild; everyone else
#: leaves the default and the mask is resolved on the spot.
UNRESOLVED_SUBSET = object()


def _nearest_indexed(index, x: DataPoint, k: int, subset) -> list:
    """First ``k`` neighbors of ``x`` from its cached parallel arrays, as
    ``(distance, slot)`` pairs, restricted to ``subset`` when given.

    The arrays are already sorted by ``(distance, ≺)``, so the full-index
    case is a head read and the subset case a short masked walk -- no
    distance is recomputed and the order matches the brute-force
    ``_sorted_by_distance`` exactly.
    """
    dists, slots = index.row_for(x)
    if subset is None:
        count = min(k, len(dists))
        return [(dists[i], slots[i]) for i in range(count)]
    mask = subset.mask
    nearest = []
    for i, slot in enumerate(slots):
        if mask[slot]:
            nearest.append((dists[i], slot))
            if len(nearest) == k:
                break
    return nearest


def _within_indexed(index, x: DataPoint, alpha: float, subset) -> list:
    """Slots of ``x``'s neighbors at distance ``<= alpha`` (members of
    ``subset`` when given), via one ``O(log n)`` bisection on the cached
    distance array."""
    dists, slots = index.row_for(x)
    cut = bisect.bisect_right(dists, alpha)
    if subset is None:
        return list(slots[:cut])
    mask = subset.mask
    return [slot for slot in slots[:cut] if mask[slot]]


class RankingFunction(ABC):
    """Abstract outlier ranking function.

    Concrete subclasses must implement :meth:`score` and :meth:`support`.
    ``score`` is the ``R(x, Q)`` of the paper, ``support`` is the unique
    smallest support set ``[Q|x]``.
    """

    #: Human-readable name used in plots, tables and the CLI.
    name: str = "abstract"

    #: The metric space the ranking scores in.  A class-level default keeps
    #: user-defined subclasses (which may never call a constructor that sets
    #: it) on the historical Euclidean geometry; the built-in rankings
    #: override it per instance from their ``metric=`` constructor argument.
    metric: Metric = EUCLIDEAN

    def _distance(self, x: DataPoint, q: DataPoint) -> float:
        """``dist(x, q)`` under the configured metric."""
        return self.metric.distance(x.values, q.values)

    def _check_index_metric(self, index) -> None:
        """Reject an index whose cached neighbor lists were sorted under a
        *different* metric: the built-in indexed fast paths read distances
        straight out of the cache, so a mismatch would silently return
        scores in the wrong geometry.  The identity check short-circuits
        every internal path (detectors build index and ranking from the same
        metric instance)."""
        metric = getattr(index, "metric", None)
        if metric is None or self.metric.compatible_with(metric):
            return
        raise RankingError(
            f"index is sorted under metric {metric!r} but the ranking "
            f"scores under {self.metric!r}; build the index with the "
            f"ranking's metric"
        )

    @abstractmethod
    def score(self, x: DataPoint, Q: Iterable[DataPoint]) -> float:
        """Return ``R(x, Q)``: the degree to which ``x`` is an outlier with
        respect to the dataset ``Q``.  Larger means more outlying."""

    @abstractmethod
    def support(self, x: DataPoint, P: Iterable[DataPoint]) -> FrozenSet[DataPoint]:
        """Return the unique smallest support set ``[P|x]``.

        The support set is the smallest ``Q1 ⊆ P`` with
        ``R(x, P) == R(x, Q1)``; minimality is with respect to cardinality and
        then the lexicographic extension of ``≺``.
        """

    def frontier_spec(self) -> Optional[Tuple[str, float]]:
        """Describe which neighbors can perturb ``R(x, Q)`` -- the hook the
        dirty-set rescoring engine (:class:`~repro.core.rescoring.ScoreCache`)
        uses to decide whose cached score a data change invalidates.

        Returns ``("knn", k)`` when the score depends only on the ``k``
        nearest neighbors (so a change at distance beyond the current k-th
        neighbor distance leaves it untouched), ``("radius", alpha)`` when it
        depends only on neighbors within a fixed radius, and ``None`` when
        the structure is unknown -- user-defined ranking functions default to
        ``None`` and the detectors fall back to full rescoring, which is
        always correct.
        """
        return None

    # ------------------------------------------------------------------
    # Index-aware fast paths
    #
    # ``index`` is a :class:`repro.core.index.NeighborhoodIndex` caching every
    # point's neighbor list sorted by ``(distance, ≺)``; ``subset`` is the
    # optional :class:`repro.core.index.IndexSubset` membership mask produced
    # by ``index.try_subset`` (``None`` means "against the whole index").
    # The brute-force :meth:`score`/:meth:`support` remain the reference
    # oracle; the default indexed implementations below fall back to them so
    # user-defined ranking functions keep working unchanged, while the
    # built-in rankings override with O(k)-per-point walks over the cached
    # sorted lists.
    # ------------------------------------------------------------------
    def score_indexed(self, index, x: DataPoint, subset=None) -> float:
        """``R(x, Q)`` where ``Q`` is the index content filtered by
        ``subset``.  Default: materialise and defer to :meth:`score`."""
        return self.score(x, self._materialize(index, subset))

    def support_indexed(self, index, x: DataPoint, subset=None) -> FrozenSet[DataPoint]:
        """``[Q|x]`` over the index content filtered by ``subset``."""
        return self.support(x, self._materialize(index, subset))

    def bulk_scores_indexed(
        self, index, points: Sequence[DataPoint], subset=None
    ) -> List[float]:
        """Score each of ``points`` against the index content filtered by
        ``subset`` (each point must itself be indexed)."""
        return [self.score_indexed(index, p, subset) for p in points]

    @staticmethod
    def _materialize(index, subset) -> List[DataPoint]:
        if subset is None:
            return list(index.points())
        return [
            index.point_at(slot)
            for slot, member in enumerate(subset.mask)
            if member
        ]

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def scores(self, Q: Iterable[DataPoint]) -> dict[DataPoint, float]:
        """Score every point of ``Q`` against ``Q`` itself."""
        pts = list(Q)
        return dict(zip(pts, self.bulk_scores(pts)))

    def bulk_scores(self, Q: Sequence[DataPoint]) -> List[float]:
        """Score every point of ``Q`` against ``Q`` itself, in order.

        Subclasses override this with a vectorised implementation; the
        default simply loops over :meth:`score`.  Semantically equivalent to
        ``[self.score(p, Q) for p in Q]``.
        """
        return [self.score(p, Q) for p in Q]

    def _pairwise_distances(self, Q: Sequence[DataPoint]) -> "np.ndarray":
        """All-pairs distance matrix over the value vectors, under the
        configured metric's :meth:`~repro.core.metrics.Metric.pairwise`
        kernel.

        Every metric guarantees its kernel is bit-identical to its scalar
        ``distance`` -- the same floats the :meth:`score`/:meth:`support`
        paths and the incremental
        :class:`~repro.core.index.NeighborhoodIndex` see -- because a
        last-ulp disagreement is enough to flip a tie-break and
        desynchronise the indexed and brute-force answers on quantised
        sensor readings (see :mod:`repro.core.metrics`).

        The diagonal and all entries between points that share the same
        ``≺`` key (i.e. copies of the same observation) are set to ``+inf``
        so they are never counted as each other's neighbors, mirroring the
        candidate-exclusion rule of :func:`_neighbors`.
        """
        matrix = self.metric.pairwise([q.values for q in Q])
        np.fill_diagonal(matrix, np.inf)
        # Copies of the same observation (identical ``≺`` keys, e.g. hop
        # variants) must not count as each other's neighbors either.
        groups: dict = {}
        for index, q in enumerate(Q):
            groups.setdefault(sort_key(q), []).append(index)
        for indices in groups.values():
            if len(indices) > 1:
                block = np.ix_(indices, indices)
                matrix[block] = np.inf
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class KthNearestNeighborDistance(RankingFunction):
    """``R(x, Q)`` = distance from ``x`` to its k-th nearest neighbor in ``Q``.

    This is the classic distance-based outlier definition of Ramaswamy et
    al. / Bay & Schwabacher.  If ``Q`` contains fewer than ``k`` candidate
    neighbors the score is the deficit penalty
    ``(k - available) * DEFICIT_UNIT`` (see :data:`DEFICIT_UNIT`).

    *Anti-monotone*: adding points can only bring the k-th neighbor closer (or
    shrink the deficit).  *Smooth*: whenever enlarging the dataset lowered the
    score, one of the new points must itself be a closer neighbor (or shrink
    the deficit), and adding that point alone already lowers the score.
    """

    def __init__(self, k: int = 1, metric: Optional[Metric] = None) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = "NN" if self.k == 1 else f"{self.k}-NN"
        self.metric = EUCLIDEAN if metric is None else metric

    def score(self, x: DataPoint, Q: Iterable[DataPoint]) -> float:
        candidates = _neighbors(x, Q)
        if len(candidates) < self.k:
            return (self.k - len(candidates)) * DEFICIT_UNIT
        dists = sorted(self._distance(x, q) for q in candidates)
        return dists[self.k - 1]

    def bulk_scores(self, Q: Sequence[DataPoint]) -> List[float]:
        if len(Q) <= 1:
            return [self.k * DEFICIT_UNIT for _ in Q]
        matrix = self._pairwise_distances(Q)
        ordered = np.sort(matrix, axis=1)
        scores: List[float] = []
        for row in ordered:
            finite = int(np.isfinite(row).sum())
            if finite < self.k:
                scores.append((self.k - finite) * DEFICIT_UNIT)
            else:
                scores.append(float(row[self.k - 1]))
        return scores

    def support(self, x: DataPoint, P: Iterable[DataPoint]) -> FrozenSet[DataPoint]:
        candidates = _sorted_by_distance(x, _neighbors(x, P), self.metric)
        if len(candidates) < self.k:
            # Every candidate is needed to certify that the k-th neighbor does
            # not exist (score stays infinite only if *no* subset has k
            # neighbors, and the smallest such certifying set is all of them).
            return frozenset(candidates)
        return frozenset(candidates[: self.k])

    def score_indexed(self, index, x: DataPoint, subset=None) -> float:
        self._check_index_metric(index)
        if subset is None:
            dists, _ = index.row_for(x)
            if len(dists) < self.k:
                return (self.k - len(dists)) * DEFICIT_UNIT
            return dists[self.k - 1]
        distances = _nearest_indexed(index, x, self.k, subset)
        if len(distances) < self.k:
            return (self.k - len(distances)) * DEFICIT_UNIT
        return distances[-1][0]

    def bulk_scores_indexed(
        self, index, points: Sequence[DataPoint], subset=None
    ) -> List[float]:
        self._check_index_metric(index)
        if subset is not None:
            return [self.score_indexed(index, p, subset) for p in points]
        k, row_for, deficit = self.k, index.row_for, DEFICIT_UNIT
        return [
            dists[k - 1]
            if len(dists := row_for(p)[0]) >= k
            else (k - len(dists)) * deficit
            for p in points
        ]

    def support_indexed(self, index, x: DataPoint, subset=None) -> FrozenSet[DataPoint]:
        self._check_index_metric(index)
        nearest = _nearest_indexed(index, x, self.k, subset)
        return frozenset(index.point_at(slot) for _, slot in nearest)

    def frontier_spec(self) -> Tuple[str, float]:
        return ("knn", self.k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KthNearestNeighborDistance(k={self.k})"


class NearestNeighborDistance(KthNearestNeighborDistance):
    """Distance to the nearest neighbor (``NN`` in the paper's plots)."""

    def __init__(self, metric: Optional[Metric] = None) -> None:
        super().__init__(k=1, metric=metric)


class AverageKNNDistance(RankingFunction):
    """``R(x, Q)`` = average distance from ``x`` to its k nearest neighbors.

    This is the ``KNN`` ranking function of the paper's evaluation (Angiulli &
    Pizzuti).  If fewer than ``k`` candidate neighbors exist the score is the
    deficit penalty ``(k - available) * DEFICIT_UNIT``.
    """

    def __init__(self, k: int = 4, metric: Optional[Metric] = None) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = f"KNN(k={self.k})"
        self.metric = EUCLIDEAN if metric is None else metric

    def score(self, x: DataPoint, Q: Iterable[DataPoint]) -> float:
        candidates = _neighbors(x, Q)
        if len(candidates) < self.k:
            return (self.k - len(candidates)) * DEFICIT_UNIT
        dists = sorted(self._distance(x, q) for q in candidates)
        return sum(dists[: self.k]) / self.k

    def bulk_scores(self, Q: Sequence[DataPoint]) -> List[float]:
        if len(Q) <= 1:
            return [self.k * DEFICIT_UNIT for _ in Q]
        matrix = self._pairwise_distances(Q)
        ordered = np.sort(matrix, axis=1)
        scores: List[float] = []
        for row in ordered:
            finite = int(np.isfinite(row).sum())
            if finite < self.k:
                scores.append((self.k - finite) * DEFICIT_UNIT)
            else:
                # Left-to-right Python summation, not numpy mean(): numpy
                # switches to pairwise summation at >= 8 elements, which can
                # differ in the last ulp from the scalar oracle's
                # ``sum(dists[:k]) / k`` and desynchronise tie-breaks.
                scores.append(sum(row[: self.k].tolist()) / self.k)
        return scores

    def support(self, x: DataPoint, P: Iterable[DataPoint]) -> FrozenSet[DataPoint]:
        candidates = _sorted_by_distance(x, _neighbors(x, P), self.metric)
        if len(candidates) < self.k:
            return frozenset(candidates)
        return frozenset(candidates[: self.k])

    def score_indexed(self, index, x: DataPoint, subset=None) -> float:
        self._check_index_metric(index)
        if subset is None:
            dists, _ = index.row_for(x)
            if len(dists) < self.k:
                return (self.k - len(dists)) * DEFICIT_UNIT
            # Ascending left-to-right sum over the head of the distance
            # array, matching the scalar oracle bit-for-bit.
            return sum(dists[: self.k]) / self.k
        nearest = _nearest_indexed(index, x, self.k, subset)
        if len(nearest) < self.k:
            return (self.k - len(nearest)) * DEFICIT_UNIT
        return sum(dist for dist, _ in nearest) / self.k

    def bulk_scores_indexed(
        self, index, points: Sequence[DataPoint], subset=None
    ) -> List[float]:
        self._check_index_metric(index)
        if subset is not None:
            return [self.score_indexed(index, p, subset) for p in points]
        k, row_for, deficit = self.k, index.row_for, DEFICIT_UNIT
        return [
            sum(dists[:k]) / k
            if len(dists := row_for(p)[0]) >= k
            else (k - len(dists)) * deficit
            for p in points
        ]

    def support_indexed(self, index, x: DataPoint, subset=None) -> FrozenSet[DataPoint]:
        self._check_index_metric(index)
        nearest = _nearest_indexed(index, x, self.k, subset)
        return frozenset(index.point_at(slot) for _, slot in nearest)

    def frontier_spec(self) -> Tuple[str, float]:
        return ("knn", self.k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AverageKNNDistance(k={self.k})"


class NeighborCountWithinRadius(RankingFunction):
    """``R(x, Q)`` = ``1 / (1 + |{q ∈ Q : dist(x, q) <= α}|)``.

    The inverse of the number of neighbors within distance ``α`` (Knorr & Ng
    distance-based outliers).  The ``1 +`` in the denominator keeps the score
    finite for isolated points while preserving the ordering.

    *Anti-monotone*: the neighbor count can only grow as ``Q`` grows, so the
    score can only shrink.  *Smooth*: if the score dropped, some new point is
    within ``α`` of ``x`` and adding it alone already drops the score.
    """

    def __init__(self, alpha: float, metric: Optional[Metric] = None) -> None:
        if not (alpha > 0 and math.isfinite(alpha)):
            raise ConfigurationError(f"alpha must be a positive finite number, got {alpha}")
        self.alpha = float(alpha)
        self.name = f"COUNT(alpha={self.alpha:g})"
        self.metric = EUCLIDEAN if metric is None else metric

    def _within(self, x: DataPoint, Q: Iterable[DataPoint]) -> list[DataPoint]:
        return [q for q in _neighbors(x, Q) if self._distance(x, q) <= self.alpha]

    def score(self, x: DataPoint, Q: Iterable[DataPoint]) -> float:
        return 1.0 / (1.0 + len(self._within(x, Q)))

    def bulk_scores(self, Q: Sequence[DataPoint]) -> List[float]:
        if len(Q) <= 1:
            return [1.0 for _ in Q]
        matrix = self._pairwise_distances(Q)
        within = (matrix <= self.alpha).sum(axis=1)
        return [1.0 / (1.0 + int(count)) for count in within]

    def support(self, x: DataPoint, P: Iterable[DataPoint]) -> FrozenSet[DataPoint]:
        # The score depends only on the set of within-α neighbors, and every
        # support set must contain all of them (dropping any one changes the
        # count), so the minimal support set is exactly that set.
        return frozenset(self._within(x, P))

    def score_indexed(self, index, x: DataPoint, subset=None) -> float:
        self._check_index_metric(index)
        if subset is None:
            dists, _ = index.row_for(x)
            return 1.0 / (1.0 + bisect.bisect_right(dists, self.alpha))
        return 1.0 / (1.0 + len(_within_indexed(index, x, self.alpha, subset)))

    def support_indexed(self, index, x: DataPoint, subset=None) -> FrozenSet[DataPoint]:
        self._check_index_metric(index)
        return frozenset(
            index.point_at(slot)
            for slot in _within_indexed(index, x, self.alpha, subset)
        )

    def frontier_spec(self) -> Tuple[str, float]:
        return ("radius", self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NeighborCountWithinRadius(alpha={self.alpha!r})"


def rank_key(
    ranking: RankingFunction, x: DataPoint, Q: Iterable[DataPoint]
) -> Tuple[float, Tuple]:
    """Strict total-order key used to select the top-n outliers.

    The primary key is the score ``R(x, Q)``; ties are broken by the fixed
    total order ``≺`` on the data space, exactly as the paper assumes.  Keys
    compare *descending*: callers sort with ``reverse=True`` (or negate).
    """
    return (ranking.score(x, Q), sort_key(x))


_RANKING_FACTORIES = {
    "nn": lambda k=1, alpha=None, metric=None: NearestNeighborDistance(metric=metric),
    "knn": lambda k=4, alpha=None, metric=None: AverageKNNDistance(k=k, metric=metric),
    "kth-nn": lambda k=4, alpha=None, metric=None: KthNearestNeighborDistance(
        k=k, metric=metric
    ),
    "count": lambda k=None, alpha=1.0, metric=None: NeighborCountWithinRadius(
        alpha=alpha, metric=metric
    ),
}


def ranking_from_name(
    name: str, k: int = 4, alpha: float = 1.0, metric: Optional[Metric] = None
) -> RankingFunction:
    """Build a ranking function from a short name.

    Recognised names (case-insensitive): ``"nn"``, ``"knn"``, ``"kth-nn"``,
    ``"count"``.  ``k`` applies to the k-NN family, ``alpha`` to ``"count"``.
    ``metric`` selects the metric space the ranking scores in (default:
    Euclidean, see :mod:`repro.core.metrics`).
    """
    try:
        factory = _RANKING_FACTORIES[name.strip().lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown ranking function {name!r}; expected one of "
            f"{sorted(_RANKING_FACTORIES)}"
        ) from None
    return factory(k=k, alpha=alpha, metric=metric)
