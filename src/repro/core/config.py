"""Configuration objects shared by the detectors, the simulator and the
experiment harness.

A :class:`DetectionConfig` captures the user-facing parameters of the paper's
evaluation: which ranking function to use (``NN`` / ``KNN`` / ``COUNT``), the
number of reported outliers ``n``, the neighbor count ``k``, the sliding
window length ``w`` and -- for the semi-global algorithm -- the hop diameter
``epsilon``.  All values are validated eagerly so that misconfiguration fails
fast rather than deep inside a simulation run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Tuple

from .errors import ConfigurationError
from .metrics import Metric, metric_from_name
from .outliers import OutlierQuery
from .ranking import RankingFunction, ranking_from_name

__all__ = ["DetectionConfig", "Algorithm"]

#: Canonical encoding of a metric's keyword parameters: a tuple of
#: ``(name, value)`` pairs sorted by name, with every numeric leaf coerced
#: to ``float`` and every sequence to a tuple.  This form is hashable (the
#: configs are dict keys in the orchestrator's memory cache) and stable
#: under a JSON round-trip (JSON turns tuples into lists; re-freezing on
#: decode restores equality with the original).
MetricParams = Tuple[Tuple[str, Any], ...]


def _freeze_param_value(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_param_value(v) for v in value)
    if isinstance(value, bool) or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    raise ConfigurationError(
        f"metric parameter values must be numbers, strings or nested "
        f"sequences thereof, got {value!r}"
    )


def _freeze_metric_params(params: Any) -> MetricParams:
    if isinstance(params, Mapping):
        items = list(params.items())
    else:
        try:
            items = [(key, value) for key, value in params]
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"metric_params must be a mapping or an iterable of "
                f"(name, value) pairs, got {params!r}"
            ) from None
    return tuple(sorted((str(key), _freeze_param_value(value)) for key, value in items))


class Algorithm:
    """Names of the algorithms compared in the paper's evaluation."""

    GLOBAL = "global"
    SEMI_GLOBAL = "semi-global"
    CENTRALIZED = "centralized"

    ALL = (GLOBAL, SEMI_GLOBAL, CENTRALIZED)


@dataclass(frozen=True)
class DetectionConfig:
    """Parameters of one outlier-detection deployment.

    Attributes
    ----------
    algorithm:
        One of :attr:`Algorithm.GLOBAL`, :attr:`Algorithm.SEMI_GLOBAL`,
        :attr:`Algorithm.CENTRALIZED`.
    ranking:
        Short name of the ranking function (``"nn"``, ``"knn"``, ``"kth-nn"``
        or ``"count"``).
    metric / metric_params:
        Registry name of the metric space the ranking scores in (see
        :func:`~repro.core.metrics.metric_from_name`; default
        ``"euclidean"``) plus its keyword parameters as ``(name, value)``
        pairs -- e.g. ``(("weights", (1.0, 0.5, 0.1)),)`` for
        ``"weighted-euclidean"`` or ``(("cov", ...),)`` for
        ``"mahalanobis"``.  Both are validated eagerly; the parameters are
        frozen into a canonical hashable tuple form that survives the JSON
        round-trip of the persistent result store.
    n_outliers:
        Number of outliers to report (the paper's ``n``).
    k:
        Neighbor count for the k-NN family of ranking functions.
    alpha:
        Radius for the neighbor-count ranking function.
    window_length:
        Sliding window length ``w`` in sampling periods.
    hop_diameter:
        Spatial extent ``epsilon`` of the semi-global algorithm (ignored by
        the other algorithms).
    semiglobal_variant:
        ``"refined"`` or ``"paper"`` -- see
        :class:`~repro.core.semiglobal_detector.SemiGlobalOutlierDetector`.
    indexed:
        When ``True`` (default) every detector and the centralized sink
        maintain an incremental
        :class:`~repro.core.index.NeighborhoodIndex` (the hot-path engine);
        ``False`` runs the full-recompute reference implementations.  The
        two settings produce identical results -- the flag only trades CPU
        for the ability to cross-check against the oracle.
    batched:
        When ``True`` (default) each protocol event's additions, evictions
        and hop relabels are applied to the index as one
        :class:`~repro.core.batch.EventBatch`
        (:meth:`~repro.core.index.NeighborhoodIndex.apply_batch`), which
        amortizes the distance-kernel and dirty-marking dispatch over the
        event; ``False`` keeps the per-point index mutations as the
        selectable oracle.  Ignored when ``indexed`` is ``False``.  Like
        ``indexed``, the flag changes no result -- transcripts are
        byte-identical either way.
    """

    algorithm: str = Algorithm.GLOBAL
    ranking: str = "nn"
    n_outliers: int = 4
    k: int = 4
    alpha: float = 1.0
    window_length: int = 20
    hop_diameter: int = 1
    semiglobal_variant: str = "refined"
    indexed: bool = True
    batched: bool = True
    metric: str = "euclidean"
    metric_params: MetricParams = ()

    def __post_init__(self) -> None:
        if self.algorithm not in Algorithm.ALL:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; expected one of {Algorithm.ALL}"
            )
        if self.n_outliers < 1:
            raise ConfigurationError(
                f"n_outliers must be >= 1, got {self.n_outliers}"
            )
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        # NaN slips through a plain ``<= 0`` comparison (every comparison
        # with NaN is false) and an infinite radius makes COUNT degenerate;
        # both used to surface deep inside a run instead of here.
        if not (self.alpha > 0 and math.isfinite(self.alpha)):
            raise ConfigurationError(
                f"alpha must be a positive finite number, got {self.alpha}"
            )
        if self.window_length < 1:
            raise ConfigurationError(
                f"window_length must be >= 1, got {self.window_length}"
            )
        if self.hop_diameter < 1:
            raise ConfigurationError(
                f"hop_diameter must be >= 1, got {self.hop_diameter}"
            )
        if self.semiglobal_variant not in ("refined", "paper"):
            raise ConfigurationError(
                f"semiglobal_variant must be 'refined' or 'paper', "
                f"got {self.semiglobal_variant!r}"
            )
        # Freeze the metric parameters into their canonical hashable form
        # (lists from a JSON decode become tuples, numbers become floats),
        # then instantiate the ranking + metric eagerly so that unknown
        # names and invalid parameters fail here, not deep inside a run.
        object.__setattr__(
            self, "metric_params", _freeze_metric_params(self.metric_params)
        )
        self.make_ranking()

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def make_metric(self) -> Metric:
        """Instantiate the configured metric space."""
        return metric_from_name(self.metric, **dict(self.metric_params))

    def make_ranking(self) -> RankingFunction:
        """Instantiate the configured ranking function (with its metric)."""
        return ranking_from_name(
            self.ranking, k=self.k, alpha=self.alpha, metric=self.make_metric()
        )

    def make_query(self) -> OutlierQuery:
        """Bundle the ranking function with ``n`` into an
        :class:`~repro.core.outliers.OutlierQuery`."""
        return OutlierQuery(self.make_ranking(), n=self.n_outliers)

    def with_window(self, window_length: int) -> "DetectionConfig":
        """Copy of this configuration with a different window length."""
        return replace(self, window_length=window_length)

    def with_outliers(self, n_outliers: int) -> "DetectionConfig":
        """Copy of this configuration with a different ``n``."""
        return replace(self, n_outliers=n_outliers)

    def with_hop_diameter(self, hop_diameter: int) -> "DetectionConfig":
        """Copy of this configuration with a different ``epsilon``."""
        return replace(self, hop_diameter=hop_diameter)

    def with_indexed(self, indexed: bool) -> "DetectionConfig":
        """Copy of this configuration toggling the incremental index."""
        return replace(self, indexed=indexed)

    def with_batched(self, batched: bool) -> "DetectionConfig":
        """Copy of this configuration toggling batched event application."""
        return replace(self, batched=batched)

    def with_metric(self, metric: str, **metric_params: Any) -> "DetectionConfig":
        """Copy of this configuration under a different metric space."""
        return replace(
            self, metric=metric, metric_params=tuple(metric_params.items())
        )

    def label(self) -> str:
        """Plot label matching the paper's naming convention."""
        if self.algorithm == Algorithm.CENTRALIZED:
            return "Centralized"
        ranking = "NN" if self.ranking == "nn" else "KNN"
        if self.algorithm == Algorithm.GLOBAL:
            return f"Global-{ranking}"
        return f"Semi-global, epsilon={self.hop_diameter}"
