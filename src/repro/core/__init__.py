"""Core library: the paper's outlier-detection model and distributed
protocols, free of any simulation concerns.

The public surface re-exported here is everything a downstream user needs to
run in-network outlier detection over their own transport:

* data model: :class:`DataPoint`, :func:`make_point`, :func:`distance`;
* metric spaces: :class:`Metric` and the registry
  (:func:`metric_from_name`) of concrete metrics -- Euclidean (default),
  Manhattan, Chebyshev, weighted Euclidean, Mahalanobis -- each bundling a
  pointwise ``distance`` with vectorized ``rows``/``pairwise`` kernels that
  agree bitwise, so every detector, index and ranking function runs
  unchanged over a pluggable geometry;
* ranking functions: :class:`NearestNeighborDistance`,
  :class:`KthNearestNeighborDistance`, :class:`AverageKNNDistance`,
  :class:`NeighborCountWithinRadius`;
* queries and reference answers: :class:`OutlierQuery`,
  :func:`top_n_outliers`, :func:`global_reference`,
  :func:`semi_global_reference`;
* the incremental hot-path engine: :class:`NeighborhoodIndex`, a persistent
  per-sensor structure caching every point's neighbor list sorted by
  ``(distance, ≺)``.  Detectors update it per event with ``O(Δ·n)``
  distance computations (plus C-level sorted-list maintenance) instead of
  rebuilding an ``O(n²·d)`` pairwise-distance matrix, and every scoring,
  support-set and sufficient-set computation accepts an optional ``index``
  to run against the cache; results are bit-identical to the brute-force
  reference paths, which remain available as the testing oracle;
* the distributed detectors: :class:`GlobalOutlierDetector`,
  :class:`SemiGlobalOutlierDetector` and their shared
  :class:`OutlierMessage` packet type;
* supporting pieces: :class:`SlidingWindow`, :class:`DetectionConfig`,
  :class:`InMemoryNetwork`.
"""

from .batch import EventBatch
from .config import Algorithm, DetectionConfig
from .errors import (
    ConfigurationError,
    DatasetError,
    ExperimentError,
    ProtocolError,
    RankingError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from .global_detector import GlobalOutlierDetector
from .index import IndexSubset, NeighborhoodIndex
from .inmemory import DeliveryLog, InMemoryNetwork
from .interfaces import DetectorStatistics, OutlierDetector
from .messages import OutlierMessage
from .metrics import (
    EUCLIDEAN,
    ChebyshevMetric,
    EuclideanMetric,
    MahalanobisMetric,
    ManhattanMetric,
    Metric,
    WeightedEuclideanMetric,
    metric_from_name,
    registered_metrics,
)
from .outliers import OutlierQuery, ranked_points, top_n_outliers
from .rescoring import ScoreCache
from .points import (
    DataPoint,
    distance,
    make_point,
    min_hop_merge,
    restrict_by_hop,
    sort_key,
)
from .ranking import (
    DEFICIT_UNIT,
    INFINITE_SCORE,
    AverageKNNDistance,
    KthNearestNeighborDistance,
    NearestNeighborDistance,
    NeighborCountWithinRadius,
    RankingFunction,
    ranking_from_name,
)
from .reference import (
    global_reference,
    hop_distances,
    semi_global_reference,
    semi_global_reference_all,
)
from .semiglobal_detector import SemiGlobalOutlierDetector
from .sliding_window import SlidingWindow
from .sufficient import compute_sufficient_set, satisfies_sufficiency
from .support import is_support_set, support_of_set, support_set

__all__ = [
    # configuration
    "Algorithm",
    "DetectionConfig",
    # errors
    "ReproError",
    "ConfigurationError",
    "RankingError",
    "ProtocolError",
    "TopologyError",
    "SimulationError",
    "RoutingError",
    "DatasetError",
    "ExperimentError",
    # data model
    "DataPoint",
    "make_point",
    "distance",
    "sort_key",
    "min_hop_merge",
    "restrict_by_hop",
    # metric spaces
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "WeightedEuclideanMetric",
    "MahalanobisMetric",
    "EUCLIDEAN",
    "metric_from_name",
    "registered_metrics",
    # ranking
    "RankingFunction",
    "NearestNeighborDistance",
    "KthNearestNeighborDistance",
    "AverageKNNDistance",
    "NeighborCountWithinRadius",
    "ranking_from_name",
    "DEFICIT_UNIT",
    "INFINITE_SCORE",
    # queries / reference answers
    "OutlierQuery",
    "top_n_outliers",
    "ranked_points",
    "global_reference",
    "semi_global_reference",
    "semi_global_reference_all",
    "hop_distances",
    # incremental hot-path engine
    "NeighborhoodIndex",
    "IndexSubset",
    "EventBatch",
    "ScoreCache",
    # support / sufficiency
    "support_set",
    "support_of_set",
    "is_support_set",
    "compute_sufficient_set",
    "satisfies_sufficiency",
    # detectors
    "OutlierDetector",
    "DetectorStatistics",
    "GlobalOutlierDetector",
    "SemiGlobalOutlierDetector",
    "OutlierMessage",
    # execution helpers
    "SlidingWindow",
    "InMemoryNetwork",
    "DeliveryLog",
]
