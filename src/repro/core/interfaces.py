"""Abstract interface shared by the distributed outlier detectors.

Both :class:`~repro.core.global_detector.GlobalOutlierDetector` and
:class:`~repro.core.semiglobal_detector.SemiGlobalOutlierDetector` are
*sans-IO* protocol state machines: they never touch a network or a clock.
Every public method corresponds to one of the four event types of the paper
(initialisation, local data change, message reception, neighborhood change)
and returns either an :class:`~repro.core.messages.OutlierMessage` to be
broadcast or ``None`` when the sensor has nothing to say.

Keeping the protocol free of IO lets the same detector code run under the
discrete-event simulator, inside unit tests that drive events by hand, and in
the property-based convergence tests that explore arbitrary event orderings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .messages import OutlierMessage
from .outliers import OutlierQuery
from .points import DataPoint

__all__ = ["DetectorStatistics", "OutlierDetector"]


@dataclass
class DetectorStatistics:
    """Counters describing the work a detector has performed so far.

    These are protocol-level statistics (independent of any radio or energy
    model); the simulator layers its own energy accounting on top.
    """

    events_processed: int = 0
    messages_built: int = 0
    messages_received: int = 0
    points_sent: int = 0
    points_received: int = 0
    points_ignored: int = 0
    local_points_added: int = 0
    points_evicted: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view, convenient for report tables."""
        return {
            "events_processed": self.events_processed,
            "messages_built": self.messages_built,
            "messages_received": self.messages_received,
            "points_sent": self.points_sent,
            "points_received": self.points_received,
            "points_ignored": self.points_ignored,
            "local_points_added": self.local_points_added,
            "points_evicted": self.points_evicted,
        }


class OutlierDetector(ABC):
    """Common API of the global and semi-global detectors."""

    #: Optional :class:`~repro.core.index.NeighborhoodIndex` over ``P_i``;
    #: concrete detectors that maintain one set this in their constructor so
    #: the shared query helpers below can use the incremental fast path.
    _index = None

    def __init__(
        self,
        sensor_id: int,
        query: OutlierQuery,
        neighbors: Iterable[int] = (),
    ) -> None:
        self.sensor_id = int(sensor_id)
        self.query = query
        self._neighbors: Set[int] = {int(j) for j in neighbors}
        if self.sensor_id in self._neighbors:
            raise ValueError("a sensor cannot be its own neighbor")
        self.stats = DetectorStatistics()

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def neighbors(self) -> Set[int]:
        """Current immediate neighborhood ``Γ_i`` (copy)."""
        return set(self._neighbors)

    def is_neighbor(self, sensor_id: int) -> bool:
        """Membership test without copying the neighbor set (hot path)."""
        return sensor_id in self._neighbors

    @property
    @abstractmethod
    def holdings(self) -> Set[DataPoint]:
        """``P_i``: every point the sensor currently holds."""

    @property
    @abstractmethod
    def local_data(self) -> Set[DataPoint]:
        """``D_i``: the points that originated at this sensor."""

    @property
    def indexed(self) -> bool:
        """Whether this detector maintains an incremental neighborhood
        index (the hot path) or recomputes from scratch (the oracle)."""
        return self._index is not None

    def estimate(self) -> List[DataPoint]:
        """The sensor's current outlier estimate ``O_n(P_i)`` (ordered)."""
        return self.query.outliers(self.holdings, index=self._index)

    def estimate_set(self) -> Set[DataPoint]:
        """The sensor's current outlier estimate as a set."""
        return set(self.estimate())

    # ------------------------------------------------------------------
    # Protocol events
    # ------------------------------------------------------------------
    @abstractmethod
    def initialize(self) -> Optional[OutlierMessage]:
        """Event (i): the algorithm is initialised on this sensor."""

    @abstractmethod
    def add_local_points(
        self, points: Iterable[DataPoint]
    ) -> Optional[OutlierMessage]:
        """Event (ii): new locally-sampled points are appended to ``D_i``."""

    @abstractmethod
    def evict_points(self, points: Iterable[DataPoint]) -> Optional[OutlierMessage]:
        """Event (ii): points leave the sliding window and are deleted from
        ``P_i`` regardless of where they originated."""

    @abstractmethod
    def handle_message(
        self, sender: int, points: Iterable[DataPoint]
    ) -> Optional[OutlierMessage]:
        """Event (iii): the points tagged for this sensor in a neighbor's
        broadcast packet are delivered."""

    @abstractmethod
    def neighborhood_changed(
        self, neighbors: Iterable[int]
    ) -> Optional[OutlierMessage]:
        """Event (iv): a link went up or down; ``neighbors`` is the new
        immediate neighborhood ``Γ_i``."""

    @abstractmethod
    def update_local_data(
        self,
        added: Iterable[DataPoint],
        evicted: Iterable[DataPoint],
    ) -> Optional[OutlierMessage]:
        """Event (ii) combined form: one sampling round both appends newly
        sampled points and expires old ones; treating the two changes as a
        single event avoids building two packets per round."""

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def expired_holdings(self, cutoff: float) -> List[DataPoint]:
        """Held points whose timestamp is strictly below ``cutoff`` -- the
        sliding-window deletion rule of Section 5.3, applied to *every* held
        point regardless of where it originated."""
        return [p for p in self.holdings if p.timestamp < cutoff]

    def evict_older_than(self, cutoff: float) -> Optional[OutlierMessage]:
        """Evict every held point whose timestamp is strictly below
        ``cutoff`` (the sliding-window deletion rule of Section 5.3)."""
        expired = self.expired_holdings(cutoff)
        if not expired:
            return None
        return self.evict_points(expired)

    def receive(self, message: OutlierMessage) -> Optional[OutlierMessage]:
        """Deliver a full broadcast packet.

        Only the points tagged for this sensor are extracted; if there are
        none the packet is not an event and ``None`` is returned without any
        processing, exactly as the paper specifies.
        """
        payload = message.payload_for(self.sensor_id)
        if not payload:
            return None
        return self.handle_message(message.sender, payload)
