"""In-memory, loss-free execution of the distributed protocol.

The discrete-event simulator (:mod:`repro.simulator`) is what the energy
experiments use, but for correctness work -- unit tests, property-based
convergence tests, quick what-if analyses -- it is convenient to run the
protocol over a perfect network with no radios at all.  This module provides
that: an :class:`InMemoryNetwork` holds one detector per sensor, delivers
broadcast packets instantly and reliably, and drains the message queue until
the protocol is quiescent.

Message ordering is configurable (FIFO by default, or randomised with a seed)
so the convergence tests can explore many asynchronous schedules.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from .errors import ProtocolError, TopologyError
from .interfaces import OutlierDetector
from .messages import OutlierMessage
from .points import DataPoint

__all__ = ["InMemoryNetwork", "DeliveryLog"]


class DeliveryLog:
    """Record of protocol traffic observed while draining the network."""

    def __init__(self) -> None:
        self.messages: List[OutlierMessage] = []

    def record(self, message: OutlierMessage) -> None:
        self.messages.append(message)

    @property
    def message_count(self) -> int:
        return len(self.messages)

    @property
    def point_transmissions(self) -> int:
        """Total number of distinct points placed on the wire, summed over
        packets (a point tagged for several recipients is counted once per
        packet, as it is transmitted once thanks to broadcast)."""
        return sum(len(m.unique_points()) for m in self.messages)

    @property
    def point_entries(self) -> int:
        """Total number of (point, recipient) pairs."""
        return sum(m.total_point_entries() for m in self.messages)

    @property
    def bytes_on_air(self) -> int:
        return sum(m.wire_size_bytes() for m in self.messages)


class InMemoryNetwork:
    """Drives a set of detectors over an instantaneous, reliable network.

    Parameters
    ----------
    detectors:
        Mapping from sensor id to its detector.  Each detector's neighbor set
        must be consistent with ``adjacency``.
    adjacency:
        Mapping from sensor id to the iterable of its neighbors.  Treated as
        undirected.
    seed:
        When given, pending packets are delivered in a pseudo-random order
        driven by this seed instead of FIFO, which exercises asynchronous
        schedules.
    """

    def __init__(
        self,
        detectors: Mapping[int, OutlierDetector],
        adjacency: Mapping[int, Iterable[int]],
        seed: Optional[int] = None,
    ) -> None:
        self.detectors: Dict[int, OutlierDetector] = dict(detectors)
        self.adjacency: Dict[int, Set[int]] = self._symmetrise(adjacency)
        unknown = set(self.adjacency) - set(self.detectors)
        if unknown:
            raise TopologyError(f"adjacency mentions unknown sensors: {sorted(unknown)}")
        for sensor_id, detector in self.detectors.items():
            expected = self.adjacency.get(sensor_id, set())
            if detector.neighbors != expected:
                detector.neighborhood_changed(expected)
        self._rng = random.Random(seed) if seed is not None else None
        self._queue: deque = deque()
        self.log = DeliveryLog()

    @staticmethod
    def _symmetrise(adjacency: Mapping[int, Iterable[int]]) -> Dict[int, Set[int]]:
        graph: Dict[int, Set[int]] = {node: set() for node in adjacency}
        for node, neighbors in adjacency.items():
            for other in neighbors:
                if other == node:
                    raise TopologyError(f"sensor {node} cannot neighbor itself")
                graph.setdefault(node, set()).add(other)
                graph.setdefault(other, set()).add(node)
        return graph

    # ------------------------------------------------------------------
    # Driving the protocol
    # ------------------------------------------------------------------
    def _enqueue(self, message: Optional[OutlierMessage]) -> None:
        if message is None or message.is_empty():
            return
        self.log.record(message)
        self._queue.append(message)

    def submit(self, message: Optional[OutlierMessage]) -> None:
        """Queue a message produced outside the network's own delivery loop
        (e.g. by driving a detector's event methods directly)."""
        self._enqueue(message)

    def initialize_all(self) -> None:
        """Fire the initialisation event on every sensor."""
        for sensor_id in sorted(self.detectors):
            self._enqueue(self.detectors[sensor_id].initialize())

    def inject_local_data(
        self, datasets: Mapping[int, Iterable[DataPoint]]
    ) -> None:
        """Feed locally sampled points to their sensors (data-change events)."""
        for sensor_id in sorted(datasets):
            detector = self.detectors.get(sensor_id)
            if detector is None:
                raise ProtocolError(f"no detector registered for sensor {sensor_id}")
            self._enqueue(detector.add_local_points(datasets[sensor_id]))

    def evict(self, datasets: Mapping[int, Iterable[DataPoint]]) -> None:
        """Evict points from the given sensors (sliding-window deletions)."""
        for sensor_id in sorted(datasets):
            detector = self.detectors[sensor_id]
            self._enqueue(detector.evict_points(datasets[sensor_id]))

    def _pop_next(self) -> OutlierMessage:
        if self._rng is None:
            return self._queue.popleft()
        index = self._rng.randrange(len(self._queue))
        self._queue.rotate(-index)
        message = self._queue.popleft()
        self._queue.rotate(index)
        return message

    def deliver_one(self) -> bool:
        """Deliver a single pending broadcast packet to all its neighbors.

        Returns ``False`` when no packet was pending.
        """
        if not self._queue:
            return False
        message = self._pop_next()
        neighbors = self.adjacency.get(message.sender, set())
        for neighbor in sorted(neighbors):
            detector = self.detectors[neighbor]
            reply = detector.receive(message)
            self._enqueue(reply)
        return True

    def run_to_quiescence(self, max_deliveries: int = 1_000_000) -> int:
        """Deliver packets until none are pending; returns deliveries made.

        Raises :class:`ProtocolError` if the bound is exceeded, which in a
        static network would indicate a termination bug.
        """
        deliveries = 0
        while self._queue:
            if deliveries >= max_deliveries:
                raise ProtocolError(
                    f"protocol did not quiesce within {max_deliveries} deliveries"
                )
            self.deliver_one()
            deliveries += 1
        return deliveries

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of packets waiting to be delivered."""
        return len(self._queue)

    def estimates(self) -> Dict[int, Set[DataPoint]]:
        """Every sensor's current outlier estimate (as sets)."""
        return {
            sensor_id: detector.estimate_set()
            for sensor_id, detector in self.detectors.items()
        }

    def estimates_agree(self) -> bool:
        """True when every sensor currently reports the same estimate,
        compared on the ``rest`` fields (hop counters are ignored)."""
        normalised = [
            frozenset(p.rest for p in estimate)
            for estimate in self.estimates().values()
        ]
        return len(set(normalised)) <= 1
