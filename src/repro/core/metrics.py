"""Pluggable metric spaces: the distance function under every detector.

The paper (Section 4.1) defines its detectors over an abstract data space
``D`` equipped with *any* distance function; the distance-based ranking
family it instantiates (k-th-NN distance, average-kNN, count-within-radius)
only ever looks at the data through ``dist(x, q)``.  This module makes that
metric a first-class component: a :class:`Metric` bundles the pointwise
``distance(a, b)`` with two vectorized kernels -- ``rows(x, X)`` (one
distance row) and ``pairwise(X)`` (the full distance matrix) -- and a name
registry (:func:`metric_from_name`) so configurations can select a metric by
string.  Metrics operate on raw value vectors (tuples or arrays of floats),
never on :class:`~repro.core.points.DataPoint` objects, so this module sits
below every other layer of :mod:`repro.core`.

Bit-exactness contract
----------------------
The detectors' correctness proofs assume every sensor computes ``O_n(P_i)``
*exactly*, and the incremental :class:`~repro.core.index.NeighborhoodIndex`
is validated against the brute-force oracle by bitwise comparison -- so a
metric must return the *same float* for the same pair on every code path.
A single last-ulp disagreement on a mathematically tied distance flips the
``≺`` tie-break and desynchronises indexed and brute-force transcripts.
Each metric therefore fixes one canonical arithmetic:

* :class:`EuclideanMetric` computes every entry with :func:`math.dist` --
  the function the seed implementation used on all paths -- so the default
  metric is bit-identical to the historical behavior.  Its "kernels" are
  scalar loops by design: a vectorised ``sqrt(((a-b)**2).sum())`` differs
  from ``math.dist`` (which scales to avoid overflow) in the last ulp.
* Every other metric derives from :class:`VectorizedMetric`, whose three
  entry points all reshape their differences into one shared reduction over
  a C-contiguous ``(rows, dimension)`` array.  Because numpy's
  pairwise-summation cutover depends only on the reduction length, the
  pointwise, row and matrix paths produce identical floats by construction.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from functools import partial
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .errors import ConfigurationError, RankingError

__all__ = [
    "Metric",
    "VectorizedMetric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "WeightedEuclideanMetric",
    "MahalanobisMetric",
    "EUCLIDEAN",
    "metric_from_name",
    "registered_metrics",
]

#: A value vector: the ``values`` tuple of a data point (or any float row).
Vector = Sequence[float]


class Metric(ABC):
    """A distance function over value vectors, with vectorized kernels.

    Concrete metrics guarantee that :meth:`distance`, :meth:`rows` and
    :meth:`pairwise` agree *bitwise* on identical pairs (see the module
    docstring); callers may mix the scalar and kernel paths freely.
    """

    #: Registry name (what :func:`metric_from_name` takes).
    name: str = "abstract"

    @abstractmethod
    def distance(self, a: Vector, b: Vector) -> float:
        """``dist(a, b)``: the distance between two value vectors."""

    @abstractmethod
    def rows(self, x: Vector, X: Sequence[Vector]) -> np.ndarray:
        """One distance row: ``[dist(x, q) for q in X]`` as a 1-d array."""

    @abstractmethod
    def pairwise(self, X: Sequence[Vector]) -> np.ndarray:
        """The full ``(n, n)`` distance matrix over ``X`` (zero diagonal)."""

    def cross(self, A: Sequence[Vector], B: Sequence[Vector]) -> np.ndarray:
        """The ``(len(A), len(B))`` distance block between two vector sets.

        This is the batched-insertion kernel: one call yields the distances
        from every point of an arrival batch ``A`` to every held point
        ``B``.  The default stacks one :meth:`rows` call per left-hand
        vector, so the block path is bitwise-identical to the row path by
        construction; vectorized metrics override it with a single shared
        reduction (same guarantee, one kernel dispatch).
        """
        block = [self.rows(a, B) for a in A]
        if not block:
            return np.zeros((0, len(B)))
        return np.stack(block)

    def params(self) -> Tuple[Tuple[str, object], ...]:
        """Canonical ``(name, value)`` parameter pairs of this instance."""
        return ()

    def validate_dimension(self, dimension: int) -> None:
        """Raise :class:`~repro.core.errors.RankingError` when this metric
        cannot measure ``dimension``-dimensional vectors (a parameterised
        metric whose weights/covariance are sized differently).  The default
        accepts any dimension.  Configuration layers that know their
        workload's dimensionality call this eagerly so the mismatch fails at
        construction time instead of mid-run."""

    def compatible_with(self, other: "Metric") -> bool:
        """Whether two metric instances define the same distance function
        (same registry name and parameters)."""
        return other is self or (
            self.name == other.name and self.params() == other.params()
        )

    @staticmethod
    def _check_dimensions(da: int, db: int) -> None:
        if da != db:
            raise RankingError(f"dimension mismatch: {da} != {db}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params())
        return f"{type(self).__name__}({rendered})"


class EuclideanMetric(Metric):
    """Euclidean distance, computed entry-by-entry with :func:`math.dist`.

    This is the repository's historical (and default) metric.  The kernels
    are deliberately scalar loops: ``math.dist`` uses a scaled algorithm
    whose rounding a vectorised numpy recipe cannot reproduce exactly, and
    the default metric must stay bit-identical to the seed implementation so
    that every existing figure table, stored sweep result and tie-break is
    unchanged.
    """

    name = "euclidean"

    def distance(self, a: Vector, b: Vector) -> float:
        self._check_dimensions(len(a), len(b))
        return math.dist(a, b)

    def rows(self, x: Vector, X: Sequence[Vector]) -> np.ndarray:
        # ``fromiter(map(...))`` runs the whole row at C level; the floats
        # are the very same ``math.dist`` results the seed produced.
        try:
            return np.fromiter(
                map(partial(math.dist, x), X), dtype=float, count=len(X)
            )
        except ValueError as error:  # math.dist's dimension mismatch
            raise RankingError(str(error)) from None

    def pairwise(self, X: Sequence[Vector]) -> np.ndarray:
        points = list(X)
        size = len(points)
        matrix = np.zeros((size, size))
        dist = math.dist
        try:
            for i in range(size):
                row = points[i]
                for j in range(i + 1, size):
                    d = dist(row, points[j])
                    matrix[i, j] = d
                    matrix[j, i] = d
        except ValueError as error:  # math.dist's dimension mismatch
            raise RankingError(str(error)) from None
        return matrix


class VectorizedMetric(Metric):
    """Base class for metrics defined by one shared numpy reduction.

    Subclasses implement :meth:`_reduce`, mapping a C-contiguous
    ``(rows, dimension)`` difference array to a 1-d array of distances.
    ``distance``, ``rows`` and ``pairwise`` all funnel through that single
    reduction (reshaping as needed), which is what makes the three paths
    bitwise-identical regardless of batch shape.
    """

    @abstractmethod
    def _reduce(self, diffs: np.ndarray) -> np.ndarray:
        """Distances for each row of a ``(rows, dimension)`` array."""

    def distance(self, a: Vector, b: Vector) -> float:
        self._check_dimensions(len(a), len(b))
        self.validate_dimension(len(a))
        diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        return float(self._reduce(np.ascontiguousarray(diff.reshape(1, -1)))[0])

    def rows(self, x: Vector, X: Sequence[Vector]) -> np.ndarray:
        others = np.asarray(list(X), dtype=float)
        if others.size == 0:
            return np.zeros(0)
        self._check_dimensions(len(x), others.shape[1])
        self.validate_dimension(others.shape[1])
        diffs = np.asarray(x, dtype=float)[None, :] - others
        return self._reduce(np.ascontiguousarray(diffs))

    def pairwise(self, X: Sequence[Vector]) -> np.ndarray:
        points = np.asarray(list(X), dtype=float)
        size = len(points)
        if size == 0:
            return np.zeros((0, 0))
        dimension = points.shape[1]
        self.validate_dimension(dimension)
        diffs = points[:, None, :] - points[None, :, :]
        flat = np.ascontiguousarray(diffs.reshape(size * size, dimension))
        return self._reduce(flat).reshape(size, size)

    def cross(self, A: Sequence[Vector], B: Sequence[Vector]) -> np.ndarray:
        left = np.asarray(list(A), dtype=float)
        right = np.asarray(list(B), dtype=float)
        if left.size == 0 or right.size == 0:
            return np.zeros((len(left), len(right)))
        self._check_dimensions(left.shape[1], right.shape[1])
        self.validate_dimension(left.shape[1])
        diffs = left[:, None, :] - right[None, :, :]
        flat = np.ascontiguousarray(
            diffs.reshape(len(left) * len(right), left.shape[1])
        )
        return self._reduce(flat).reshape(len(left), len(right))


class ManhattanMetric(VectorizedMetric):
    """L1 (city-block) distance: ``sum_i |a_i - b_i|``."""

    name = "manhattan"

    def _reduce(self, diffs: np.ndarray) -> np.ndarray:
        return np.abs(diffs).sum(axis=1)


class ChebyshevMetric(VectorizedMetric):
    """L-infinity distance: ``max_i |a_i - b_i|``."""

    name = "chebyshev"

    def _reduce(self, diffs: np.ndarray) -> np.ndarray:
        return np.abs(diffs).max(axis=1)


class WeightedEuclideanMetric(VectorizedMetric):
    """Anisotropic Euclidean distance: ``sqrt(sum_i w_i (a_i - b_i)^2)``.

    The weights rescale each attribute's contribution -- e.g. emphasising
    the sensed reading over the deployment coordinates, or normalising
    channels with very different physical units.  All weights must be
    positive and finite (a zero weight would collapse the metric to a
    pseudometric and break the identity axiom the support-set minimality
    argument relies on).
    """

    name = "weighted-euclidean"

    def __init__(self, weights: Iterable[float]) -> None:
        frozen = tuple(float(w) for w in weights)
        if not frozen:
            raise ConfigurationError("weighted-euclidean needs at least one weight")
        for weight in frozen:
            if not (weight > 0 and math.isfinite(weight)):
                raise ConfigurationError(
                    f"weights must be positive finite numbers, got {frozen}"
                )
        self.weights = frozen
        self._w = np.asarray(frozen)

    def params(self) -> Tuple[Tuple[str, object], ...]:
        return (("weights", self.weights),)

    def validate_dimension(self, dimension: int) -> None:
        if dimension != len(self.weights):
            raise RankingError(
                f"weighted-euclidean has {len(self.weights)} weight(s) but the "
                f"points are {dimension}-dimensional"
            )

    def _reduce(self, diffs: np.ndarray) -> np.ndarray:
        return np.sqrt((diffs * diffs * self._w).sum(axis=1))


class MahalanobisMetric(VectorizedMetric):
    """Mahalanobis distance: ``sqrt((a-b)^T C^{-1} (a-b))``.

    ``cov`` must be a symmetric positive-definite matrix (validated eagerly
    via a Cholesky factorisation); its inverse is precomputed once.  The
    quadratic form is evaluated as an elementwise outer-product expansion
    reduced by one ``sum(axis=1)`` over a contiguous ``(rows, d*d)`` array:
    unlike ``einsum``/BLAS contractions (whose accumulation interleaving
    varies with the batch size in the last ulp), that reduction's per-row
    summation order depends only on ``d``, preserving the bit-exactness
    contract.
    """

    name = "mahalanobis"

    def __init__(self, cov: Sequence[Sequence[float]]) -> None:
        frozen = tuple(tuple(float(v) for v in row) for row in cov)
        matrix = np.asarray(frozen)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1] or not matrix.size:
            raise ConfigurationError(
                f"cov must be a non-empty square matrix, got shape {matrix.shape}"
            )
        if not np.isfinite(matrix).all() or not np.array_equal(matrix, matrix.T):
            raise ConfigurationError("cov must be finite and symmetric")
        try:
            np.linalg.cholesky(matrix)
        except np.linalg.LinAlgError:
            raise ConfigurationError("cov must be positive definite") from None
        self.cov = frozen
        self._vi_flat = np.ascontiguousarray(np.linalg.inv(matrix).reshape(-1))

    def params(self) -> Tuple[Tuple[str, object], ...]:
        return (("cov", self.cov),)

    def validate_dimension(self, dimension: int) -> None:
        if dimension != len(self.cov):
            raise RankingError(
                f"mahalanobis covariance is {len(self.cov)}x{len(self.cov)} but "
                f"the points are {dimension}-dimensional"
            )

    def _reduce(self, diffs: np.ndarray) -> np.ndarray:
        rows, dimension = diffs.shape
        outer = (diffs[:, :, None] * diffs[:, None, :]).reshape(
            rows, dimension * dimension
        )
        quad = (outer * self._vi_flat).sum(axis=1)
        # Rounding can push a mathematically-zero quadratic form a few ulps
        # negative; clamp so sqrt never produces NaN.
        return np.sqrt(np.maximum(quad, 0.0))


#: Module-level singleton: the default metric of every ranking function,
#: index and configuration (and the only one the seed implementation had).
EUCLIDEAN = EuclideanMetric()

_MANHATTAN = ManhattanMetric()
_CHEBYSHEV = ChebyshevMetric()

_METRIC_FACTORIES = {
    "euclidean": lambda: EUCLIDEAN,
    "manhattan": lambda: _MANHATTAN,
    "chebyshev": lambda: _CHEBYSHEV,
    "weighted-euclidean": WeightedEuclideanMetric,
    "mahalanobis": MahalanobisMetric,
}


def registered_metrics() -> List[str]:
    """Names accepted by :func:`metric_from_name`, sorted."""
    return sorted(_METRIC_FACTORIES)


def metric_from_name(name: str, **params: object) -> Metric:
    """Build a metric from a registry name plus keyword parameters.

    Recognised names (case-insensitive): ``"euclidean"``, ``"manhattan"``,
    ``"chebyshev"``, ``"weighted-euclidean"`` (requires ``weights``) and
    ``"mahalanobis"`` (requires ``cov``).  Unknown names, missing or
    unexpected parameters, and invalid parameter values all raise
    :class:`~repro.core.errors.ConfigurationError` -- misconfiguration fails
    at construction time, never deep inside a run.
    """
    try:
        factory = _METRIC_FACTORIES[name.strip().lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown metric {name!r}; expected one of {registered_metrics()}"
        ) from None
    try:
        return factory(**params)
    except TypeError:
        raise ConfigurationError(
            f"invalid parameters for metric {name!r}: {params!r}"
        ) from None
