"""Spatial neighbor index: a uniform grid over flat coordinate arrays.

Scenario setup used to be the quadratic wall of this repository: building the
unit-disk graph compared all O(n^2) node pairs, and ``random_layout``
re-scanned every placed node for each candidate.  This module provides the
sub-quadratic primitives both now run on:

* :class:`GridIndex` -- a uniform grid (cell size chosen near the query
  radius, typically the transmission range) over flat numpy ``xs``/``ys``
  arrays.  Points are bucketed by cell with one stable ``argsort`` over the
  cell keys (O(n log n)); the grid then answers

  - :meth:`GridIndex.pairs_within_radius` -- every unordered point pair at
    Euclidean distance <= radius, computed as per-cell block distance
    kernels (one vectorized pass per forward cell offset), the kernel
    :class:`~repro.network.topology.Topology` builds its edge set from;
  - :meth:`GridIndex.query_radius` -- all indexed points within a radius of
    an arbitrary query position;
  - :meth:`GridIndex.k_nearest` -- the k nearest indexed points, by
    expanding cell rings until the k-th candidate provably cannot be beaten
    by any unvisited cell.

* :func:`brute_force_pairs` -- the scalar O(n^2) double loop, kept as the
  **oracle**: it mirrors, call for call, the comparison the original
  ``Topology._build_graph`` made (``math.hypot(dx, dy) <= radius``).

Bit-identical edge sets
-----------------------
The oracle's membership test is CPython's ``math.hypot``, which is
correctly rounded (error <= 0.5 ulp) and does *not* agree to the last bit
with ``sqrt(dx*dx + dy*dy)`` or ``numpy.hypot``.  The grid kernels therefore
never decide membership from a vectorized distance alone.  Candidates are
classified by their squared distance against a guard band around
``radius**2``:

* ``sq <= r2 * (1 - _EXACT_BAND)``  -- accepted outright (the true distance
  is certainly below the radius, so the oracle would accept too);
* ``sq >  r2 * (1 + _EXACT_BAND)``  -- rejected outright (symmetrically);
* inside the band -- re-tested with the *same scalar expression the oracle
  uses*, ``math.hypot(xs[a] - xs[b], ys[a] - ys[b]) <= radius``.

``_EXACT_BAND`` (1e-9, relative) exceeds the worst-case relative error of
the vectorized squared distance (a few ulp, ~1e-15) by six orders of
magnitude, so no pair can be mis-classified by the fast path; pairs near the
boundary -- including the adversarial "distance exactly equal to the
transmission range" case -- always reach the scalar oracle expression.
``tests/test_spatial.py`` enforces the equivalence across every registered
layout generator.

Cell-reach safety
-----------------
A pair at distance <= r can span at most ``ceil(r / cell)`` cells per axis
in exact arithmetic, but the floating-point cell assignment
(``floor(x / cell)``) can push a boundary-straddling point one cell further.
Queries therefore scan ``reach = floor(r / (cell * (1 - 1e-9))) + 1`` cells
in each direction: any pair separated by more than ``reach`` cells has
coordinate distance > ``reach * cell * (1 - 1e-9)`` >= r even after
worst-case assignment error, so it cannot be within the radius.  With
``cell == r`` this makes ``reach = 2`` (a 5x5 neighborhood) -- slightly
wider than the textbook 3x3, in exchange for provable exactness.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from .errors import ConfigurationError

__all__ = ["GridIndex", "brute_force_pairs"]

#: Relative half-width of the squared-distance guard band around
#: ``radius**2``; candidates inside the band fall back to the scalar
#: ``math.hypot`` oracle expression (see module docstring).
_EXACT_BAND = 1e-9


def brute_force_pairs(
    xs: np.ndarray, ys: np.ndarray, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    """All unordered index pairs within ``radius``, by the O(n^2) oracle.

    This is, deliberately, the scalar double loop the original topology
    builder ran: every pair is tested with ``math.hypot(dx, dy) <= radius``.
    It stays selectable (``Topology(..., builder="brute")``) as the ground
    truth the grid kernel is validated against.
    """
    xs_list = [float(value) for value in xs]
    ys_list = [float(value) for value in ys]
    count = len(xs_list)
    first: List[int] = []
    second: List[int] = []
    for i in range(count):
        xi = xs_list[i]
        yi = ys_list[i]
        for j in range(i + 1, count):
            if math.hypot(xi - xs_list[j], yi - ys_list[j]) <= radius:
                first.append(i)
                second.append(j)
    return (
        np.asarray(first, dtype=np.int64),
        np.asarray(second, dtype=np.int64),
    )


class GridIndex:
    """Uniform-grid spatial index over flat ``xs``/``ys`` coordinate arrays.

    Parameters
    ----------
    xs, ys:
        Point coordinates (equal-length 1-d arrays; any float sequence).
        Point *indices* (positions in these arrays) are what every query
        returns.
    cell_size:
        Grid cell side length in the same unit as the coordinates.  Choose
        it near the dominant query radius (the transmission range): much
        smaller cells inflate the bucket count, much larger cells inflate
        the candidate blocks.
    """

    def __init__(self, xs, ys, cell_size: float) -> None:
        if cell_size <= 0:
            raise ConfigurationError(
                f"cell_size must be positive, got {cell_size}"
            )
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        if xs.ndim != 1 or xs.shape != ys.shape:
            raise ConfigurationError(
                "xs and ys must be 1-d arrays of equal length, got shapes "
                f"{xs.shape} and {ys.shape}"
            )
        self._xs = xs
        self._ys = ys
        self._cell = float(cell_size)
        count = xs.size
        if count == 0:
            self._order = np.empty(0, dtype=np.int64)
            self._cell_keys = np.empty(0, dtype=np.int64)
            self._cell_cx = np.empty(0, dtype=np.int64)
            self._cell_cy = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.int64)
            self._counts = np.empty(0, dtype=np.int64)
            self._cx0 = 0
            self._cy0 = 0
            self._ncy = 1
            return
        cx = np.floor(xs / self._cell).astype(np.int64)
        cy = np.floor(ys / self._cell).astype(np.int64)
        self._cx0 = int(cx.min())
        self._cy0 = int(cy.min())
        cx -= self._cx0
        cy -= self._cy0
        #: Row stride of the (collision-checked) linear cell key.
        self._ncy = int(cy.max()) + 1
        keys = cx * self._ncy + cy
        order = np.argsort(keys, kind="stable")
        self._order = order.astype(np.int64)
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        self._starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), boundaries)
        )
        stops = np.concatenate((boundaries, np.array([count], dtype=np.int64)))
        self._counts = stops - self._starts
        self._cell_keys = sorted_keys[self._starts]
        self._cell_cx = cx[order][self._starts]
        self._cell_cy = cy[order][self._starts]

    def __len__(self) -> int:
        return int(self._xs.size)

    @property
    def cell_size(self) -> float:
        return self._cell

    @property
    def occupied_cells(self) -> int:
        """Number of non-empty grid cells (empty cells are never stored)."""
        return int(self._cell_keys.size)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reach(self, radius: float) -> int:
        """Cells to scan per axis so no pair within ``radius`` is missed."""
        return int(math.floor(radius / (self._cell * (1.0 - 1e-9)))) + 1

    def _cell_slot(self, cx: int, cy: int) -> int:
        """Slot of cell ``(cx, cy)`` in the sorted cell table, or -1."""
        if not 0 <= cy < self._ncy or cx < 0:
            return -1
        key = cx * self._ncy + cy
        slot = int(np.searchsorted(self._cell_keys, key))
        if slot < self._cell_keys.size and int(self._cell_keys[slot]) == key:
            return slot
        return -1

    def _within_mask(
        self, first: np.ndarray, second: np.ndarray, radius: float
    ) -> np.ndarray:
        """Exact membership mask for candidate index pairs (see module doc)."""
        xs = self._xs
        ys = self._ys
        dx = xs[first] - xs[second]
        dy = ys[first] - ys[second]
        sq = dx * dx + dy * dy
        r2 = radius * radius
        keep = sq <= r2 * (1.0 - _EXACT_BAND)
        band = np.flatnonzero(~keep & (sq <= r2 * (1.0 + _EXACT_BAND)))
        for position in band.tolist():
            a = int(first[position])
            b = int(second[position])
            keep[position] = math.hypot(xs[a] - xs[b], ys[a] - ys[b]) <= radius
        return keep

    def _point_within_mask(
        self, x: float, y: float, candidates: np.ndarray, radius: float
    ) -> np.ndarray:
        """Exact membership mask for candidates around a query position."""
        xs = self._xs
        ys = self._ys
        dx = x - xs[candidates]
        dy = y - ys[candidates]
        sq = dx * dx + dy * dy
        r2 = radius * radius
        keep = sq <= r2 * (1.0 - _EXACT_BAND)
        band = np.flatnonzero(~keep & (sq <= r2 * (1.0 + _EXACT_BAND)))
        for position in band.tolist():
            index = int(candidates[position])
            keep[position] = (
                math.hypot(x - xs[index], y - ys[index]) <= radius
            )
        return keep

    def _window_candidates(
        self, cx: int, cy: int, reach: int
    ) -> np.ndarray:
        """Point indices in the ``(2*reach+1)^2`` cell window around a cell."""
        blocks: List[np.ndarray] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                slot = self._cell_slot(cx + dx, cy + dy)
                if slot < 0:
                    continue
                start = int(self._starts[slot])
                blocks.append(self._order[start : start + int(self._counts[slot])])
        if not blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(blocks)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pairs_within_radius(
        self, radius: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Every unordered index pair at distance <= ``radius``.

        Returns two equally long int64 arrays ``(first, second)`` with
        ``first < second``, sorted lexicographically -- byte-identical in
        content to :func:`brute_force_pairs` on the same inputs.

        The kernel visits each non-empty cell once: intra-cell pairs come
        from one upper-triangle block per multi-occupancy cell, and
        inter-cell pairs from one globally vectorized pass per *forward*
        cell offset (so each cell pair is enumerated exactly once).
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be >= 0, got {radius}")
        count = self._xs.size
        if count < 2:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        reach = self._reach(radius)
        first_blocks: List[np.ndarray] = []
        second_blocks: List[np.ndarray] = []

        # Intra-cell pairs: upper triangle of each multi-occupancy cell.
        multi = np.flatnonzero(self._counts >= 2)
        for slot in multi.tolist():
            start = int(self._starts[slot])
            block = self._order[start : start + int(self._counts[slot])]
            iu, ju = np.triu_indices(block.size, k=1)
            first_blocks.append(block[iu])
            second_blocks.append(block[ju])

        # Inter-cell pairs: one vectorized pass per forward cell offset.
        ncells = self._cell_keys.size
        slot_of_point = np.repeat(np.arange(ncells, dtype=np.int64), self._counts)
        for dx in range(0, reach + 1):
            for dy in range(-reach, reach + 1):
                if dx == 0 and dy <= 0:
                    continue
                target_cx = self._cell_cx + dx
                target_cy = self._cell_cy + dy
                geometric = (target_cy >= 0) & (target_cy < self._ncy)
                target_keys = target_cx * self._ncy + target_cy
                positions = np.searchsorted(self._cell_keys, target_keys)
                clipped = np.minimum(positions, ncells - 1)
                found = geometric & (self._cell_keys[clipped] == target_keys)
                if not found.any():
                    continue
                # Per *source point*: how many points live in its matched
                # neighbor cell, and where that cell's block starts.
                per_cell_count = np.where(found, self._counts[clipped], 0)
                per_cell_start = self._starts[clipped]
                point_count = per_cell_count[slot_of_point]
                point_start = per_cell_start[slot_of_point]
                total = int(point_count.sum())
                if total == 0:
                    continue
                source_positions = np.repeat(
                    np.arange(count, dtype=np.int64), point_count
                )
                run_starts = np.cumsum(point_count) - point_count
                target_positions = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(run_starts, point_count)
                    + np.repeat(point_start, point_count)
                )
                first_blocks.append(self._order[source_positions])
                second_blocks.append(self._order[target_positions])

        if not first_blocks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        first = np.concatenate(first_blocks)
        second = np.concatenate(second_blocks)
        keep = self._within_mask(first, second, radius)
        first = first[keep]
        second = second[keep]
        low = np.minimum(first, second)
        high = np.maximum(first, second)
        order = np.lexsort((high, low))
        return low[order], high[order]

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of all points at distance <= ``radius`` from ``(x, y)``.

        Returned in ascending index order.  The query position need not be
        an indexed point.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be >= 0, got {radius}")
        if self._xs.size == 0:
            return np.empty(0, dtype=np.int64)
        reach = self._reach(radius)
        cx = int(math.floor(x / self._cell)) - self._cx0
        cy = int(math.floor(y / self._cell)) - self._cy0
        candidates = self._window_candidates(cx, cy, reach)
        if candidates.size == 0:
            return candidates
        keep = self._point_within_mask(float(x), float(y), candidates, radius)
        return np.sort(candidates[keep])

    def k_nearest(self, x: float, y: float, k: int) -> np.ndarray:
        """Indices of the ``k`` nearest points to ``(x, y)``.

        Ordered by ascending distance, ties broken by ascending index (a
        total, deterministic order).  Returns all points when ``k`` exceeds
        the index size.  The search expands the cell window ring by ring and
        stops once the current k-th distance provably beats every unvisited
        cell: a point outside a window of half-width ``w`` cells is at
        coordinate distance > ``(w - 1) * cell`` from the query.
        """
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        count = self._xs.size
        if count == 0:
            return np.empty(0, dtype=np.int64)
        k = min(k, count)
        cx = int(math.floor(x / self._cell)) - self._cx0
        cy = int(math.floor(y / self._cell)) - self._cy0
        max_cx = int(self._cell_cx.max())
        max_cy = int(self._cell_cy.max())
        # A window this wide covers every occupied cell from any query cell.
        max_reach = max(
            cx, max_cx - cx, cy, max_cy - cy, 1
        )
        reach = 1
        while True:
            candidates = self._window_candidates(cx, cy, reach)
            if candidates.size >= k or reach >= max_reach:
                dx = float(x) - self._xs[candidates]
                dy = float(y) - self._ys[candidates]
                distances = np.sqrt(dx * dx + dy * dy)
                ranking = np.lexsort((candidates, distances))
                selected = candidates[ranking[:k]]
                chosen = distances[ranking[:k]]
                guaranteed = (reach - 1) * self._cell
                if (
                    reach >= max_reach
                    or (selected.size == k and chosen[-1] <= guaranteed)
                ):
                    return selected
            reach += 1
