"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to discriminate between configuration problems, protocol violations
and simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid.

    Examples include a non-positive number of outliers ``n``, a sliding window
    of zero length, or an unknown ranking-function name.
    """


class RankingError(ReproError):
    """Raised when a ranking function is evaluated on invalid input."""


class ProtocolError(ReproError):
    """Raised when the distributed protocol is driven incorrectly.

    For instance, delivering a message from a sensor that is not a neighbor of
    the receiving sensor, or handing the detector a point whose origin field
    does not match the local sensor id.
    """


class TopologyError(ReproError):
    """Raised for invalid network topologies (e.g. a disconnected network
    where connectivity is required, or duplicate node identifiers)."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is misused.

    Examples include scheduling an event in the past or running a simulation
    that was already finalised.
    """


class RoutingError(ReproError):
    """Raised by the routing substrate (e.g. no route can be established to
    the requested destination in a connected component)."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or loaded as requested."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is configured inconsistently."""


class CheckpointError(ReproError):
    """Raised when a runtime checkpoint cannot be written, read or restored
    (missing snapshot, digest mismatch, incompatible checkpoint schema)."""
