"""Semi-global ("localized") distributed outlier detection (Algorithm 2).

Each sensor ``p_i`` converges to ``O_n(D_i^{<=d})``: the top-n outliers over
the data sampled by sensors within *hop distance* ``d`` of ``p_i`` (``d`` is
the ``epsilon`` of the paper's plots).  Setting ``d = ∞`` recovers the global
algorithm.

Every data point carries a ``hop`` field, set to 0 at birth and incremented
each time the point is forwarded.  A sensor partitions its holdings by hop
level and, for each neighbor, runs the sufficient-set computation of the
global algorithm *per hop level* ``h = 0 .. d-1`` (a point at hop ``h`` may
still influence sensors up to ``d - h`` hops away, so only levels below ``d``
may propagate further).  The per-level sets are merged with the ``[·]^min``
operator (keep the smallest hop per distinct point) and filtered against what
the neighbor is already known to hold at an equal-or-smaller hop.

Each sensor's estimate ``O_n(P_i)`` is taken over everything it holds, i.e.
over points that originated at most ``d`` hops away.

Unlike the global algorithm, the paper gives no exactness theorem for the
semi-global variant, and indeed exact convergence to ``O_n(D_i^{<=d})`` is
not always attainable: a point originating ``d`` hops away from ``p_i`` may
need to be refuted by data the refuting sensor can never learn ``p_i`` holds
(the refutation would have to travel further than the hop budget allows the
triggering point to be advertised).  The algorithm is therefore a
communication-efficient heuristic; the paper reports (and our accuracy
experiments confirm) that on spatially-correlated sensor data over
reasonably dense topologies the estimates are correct for the vast majority
of sensors, while the worst cases occur on sparse chain-like topologies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .batch import EventBatch
from .errors import ConfigurationError, ProtocolError
from .index import NeighborhoodIndex
from .interfaces import OutlierDetector
from .messages import OutlierMessage
from .outliers import OutlierQuery
from .points import DataPoint, RestKey
from .ranking import UNRESOLVED_SUBSET
from .rescoring import ScoreCache
from .sufficient import compute_sufficient_set
from .support import support_of_set

__all__ = ["SemiGlobalOutlierDetector"]


class SemiGlobalOutlierDetector(OutlierDetector):
    """Sans-IO implementation of the paper's Algorithm 2.

    Parameters
    ----------
    sensor_id:
        Identifier of this sensor.
    query:
        The ``(R, n)`` outlier query, shared by every sensor in the network.
    hop_diameter:
        The spatial extent ``d`` (``epsilon``): outliers are computed over the
        data of sensors at hop distance at most ``d``.
    neighbors:
        Initial immediate neighborhood ``Γ_i``.
    variant:
        ``"refined"`` (default) or ``"paper"``.  The paper's pseudo-code
        restricts the shared-knowledge set ``D_{i,j} ∪ D_{j,i}`` of the
        level-``h`` sufficiency fixpoint to entries whose *recorded* hop is at
        most ``h``.  Recorded hops are always at least 1 (points are
        incremented before they are recorded as sent, and arrive already
        incremented), so at the lowest levels that restriction leaves the
        shared set empty and the fixpoint can never ask a sensor to forward
        the points that would refute a neighbor's wrong estimate.  The
        ``"refined"`` variant keeps the per-level candidate generation (a
        point at hop ``h`` is still only forwarded by levels ``>= h``) but
        lets the fixpoint see the whole shared set, which restores the
        refutation path and markedly improves accuracy at no change in
        message complexity.  ``"paper"`` reproduces the literal pseudo-code.
    indexed:
        When ``True`` (default) the detector maintains an incremental
        :class:`~repro.core.index.NeighborhoodIndex` over its holdings.  The
        ``[·]^min`` merge is index-aware: replacing a held copy by a
        smaller-hop copy of the same observation relabels the index slot in
        ``O(1)`` without invalidating any cached distance (the geometry only
        depends on the ``rest`` fields), and the per-hop-level estimates of
        Algorithm 2 become masked walks over the cached sorted-neighbor
        lists.  ``False`` selects the brute-force reference path.
    batched:
        When ``True`` (default) each protocol event's additions, evictions
        and hop relabels are applied to the index as one
        :class:`~repro.core.batch.EventBatch`; the per-hop-level rescoring
        caches then see one batch mark per event instead of one per point.
        ``False`` keeps the per-point mutations (the batch path's oracle).
        Ignored when ``indexed`` is ``False``; transcripts are identical
        either way.
    """

    VARIANTS = ("refined", "paper")

    def __init__(
        self,
        sensor_id: int,
        query: OutlierQuery,
        hop_diameter: int,
        neighbors: Iterable[int] = (),
        variant: str = "refined",
        indexed: bool = True,
        batched: bool = True,
    ) -> None:
        super().__init__(sensor_id, query, neighbors)
        if hop_diameter < 1:
            raise ConfigurationError(
                f"hop_diameter must be >= 1, got {hop_diameter}"
            )
        if variant not in self.VARIANTS:
            raise ConfigurationError(
                f"variant must be one of {self.VARIANTS}, got {variant!r}"
            )
        self.hop_diameter = int(hop_diameter)
        self.variant = variant
        # All maps are keyed by the point's ``rest`` fields; the stored value
        # is the copy with the smallest known hop for that key.
        self._local: Dict[RestKey, DataPoint] = {}
        self._holdings: Dict[RestKey, DataPoint] = {}
        self._sent: Dict[int, Dict[RestKey, DataPoint]] = {
            j: {} for j in self._neighbors
        }
        self._received: Dict[int, Dict[RestKey, DataPoint]] = {
            j: {} for j in self._neighbors
        }
        # The index must sort its neighbor lists under the same metric the
        # query's ranking function scores in.
        self._index = (
            NeighborhoodIndex(metric=query.ranking.metric) if indexed else None
        )
        # One dirty-set rescoring cache per hop level: level ``h`` maintains
        # the (score, ≺) order over the sub-population with ``hop <= h``
        # together with its membership mask, so each per-level estimate of
        # Algorithm 2 is a tail read and the sufficient-set fixpoints reuse
        # the mask instead of rebuilding it per neighbor via try_subset.
        self._caches: Optional[List[ScoreCache]] = None
        if self._index is not None:
            caches = [
                ScoreCache.if_supported(self._index, query.ranking, max_hop=level)
                for level in range(self.hop_diameter)
            ]
            if None not in caches:
                self._caches = caches
        self._batched = bool(batched) and self._index is not None

    # ------------------------------------------------------------------
    # Index maintenance (min-hop-merge aware)
    # ------------------------------------------------------------------
    def _index_put(
        self,
        previous: Optional[DataPoint],
        point: DataPoint,
        batch: Optional[EventBatch] = None,
    ) -> None:
        """Record that ``holdings[point.rest]`` changed from ``previous`` to
        ``point``.  A hop-only change relabels the slot in O(1); a genuinely
        new observation is inserted incrementally.  With ``batch`` the
        change is staged instead of applied (``stage_put`` keeps the
        add-vs-relabel distinction)."""
        if self._index is None:
            return
        if batch is not None:
            batch.stage_put(previous, point)
        elif previous is None:
            self._index.add(point)
        else:
            self._index.replace(previous, point)

    def _new_batch(self) -> Optional[EventBatch]:
        """A fresh per-event batch on the batched path, else ``None`` (the
        appliers then mutate the index point by point, preserving the
        per-event oracle verbatim)."""
        return EventBatch() if self._batched else None

    def _commit_batch(self, batch: Optional[EventBatch]) -> None:
        if batch:
            self._index.apply_batch(batch)

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def holdings(self) -> Set[DataPoint]:
        return set(self._holdings.values())

    @property
    def local_data(self) -> Set[DataPoint]:
        return set(self._local.values())

    def sent_to(self, neighbor: int) -> Set[DataPoint]:
        """``D_{i,j}``: points sent to ``neighbor`` (with the hop they carried
        on the wire)."""
        return set(self._sent.get(neighbor, {}).values())

    def received_from(self, neighbor: int) -> Set[DataPoint]:
        """``D_{j,i}``: points received from ``neighbor``."""
        return set(self._received.get(neighbor, {}).values())

    # ------------------------------------------------------------------
    # Protocol events
    # ------------------------------------------------------------------
    def initialize(self) -> Optional[OutlierMessage]:
        self.stats.events_processed += 1
        return self._process()

    def add_local_points(
        self, points: Iterable[DataPoint]
    ) -> Optional[OutlierMessage]:
        batch = self._new_batch()
        changed = self._apply_local_additions(points, batch)
        self._commit_batch(batch)
        if not changed:
            return None
        self.stats.events_processed += 1
        return self._process()

    def evict_points(self, points: Iterable[DataPoint]) -> Optional[OutlierMessage]:
        batch = self._new_batch()
        changed = self._apply_evictions(points, batch)
        self._commit_batch(batch)
        if not changed:
            return None
        self.stats.events_processed += 1
        return self._process()

    def update_local_data(
        self,
        added: Iterable[DataPoint],
        evicted: Iterable[DataPoint],
    ) -> Optional[OutlierMessage]:
        # One batch for the whole tick: evictions and arrivals share a
        # single index application (apply_batch evicts first, exactly like
        # the sequential order below).
        batch = self._new_batch()
        changed_evict = self._apply_evictions(evicted, batch)
        changed_add = self._apply_local_additions(added, batch)
        self._commit_batch(batch)
        if not (changed_evict or changed_add):
            return None
        self.stats.events_processed += 1
        return self._process()

    def _apply_local_additions(
        self, points: Iterable[DataPoint], batch: Optional[EventBatch] = None
    ) -> bool:
        added = False
        for point in points:
            if point.hop != 0:
                raise ProtocolError(
                    f"locally sampled points must have hop 0, got {point!r}"
                )
            previous = self._holdings.get(point.rest)
            if previous is not None and previous.hop == 0:
                continue
            self._local[point.rest] = point
            self._holdings[point.rest] = point
            self._index_put(previous, point, batch)
            self.stats.local_points_added += 1
            added = True
        return added

    def _apply_evictions(
        self, points: Iterable[DataPoint], batch: Optional[EventBatch] = None
    ) -> bool:
        keys = {point.rest for point in points}
        if not keys:
            return False
        evicted = False
        for key in keys:
            previous = self._holdings.pop(key, None)
            if previous is not None:
                self._local.pop(key, None)
                if batch is not None:
                    batch.evicts.append(previous)
                elif self._index is not None:
                    self._index.discard(previous)
                evicted = True
                self.stats.points_evicted += 1
        # One batched pass per bucket instead of one scan per evicted point.
        for bucket in self._sent.values():
            for key in keys:
                bucket.pop(key, None)
        for bucket in self._received.values():
            for key in keys:
                bucket.pop(key, None)
        return evicted

    def handle_message(
        self, sender: int, points: Iterable[DataPoint]
    ) -> Optional[OutlierMessage]:
        if sender not in self._neighbors:
            raise ProtocolError(
                f"sensor {self.sensor_id} received points from non-neighbor {sender}"
            )
        self.stats.messages_received += 1
        changed = False
        batch = self._new_batch()
        for point in points:
            key = point.rest
            current = self._holdings.get(key)
            if current is None:
                self._holdings[key] = point
                self._index_put(None, point, batch)
                self._record_received(sender, point)
                self.stats.points_received += 1
                changed = True
            elif point.hop < current.hop:
                # A shorter path to the same observation: replace the held
                # copy (it may now influence more distant hop levels).  The
                # index slot is relabelled in O(1) -- the geometry is
                # untouched by a hop change.
                self._holdings[key] = point
                self._index_put(current, point, batch)
                self._record_received(sender, point)
                self.stats.points_received += 1
                changed = True
            else:
                self.stats.points_ignored += 1
        self._commit_batch(batch)
        if not changed:
            return None
        self.stats.events_processed += 1
        return self._process()

    def neighborhood_changed(
        self, neighbors: Iterable[int]
    ) -> Optional[OutlierMessage]:
        new_neighbors = {int(j) for j in neighbors}
        if self.sensor_id in new_neighbors:
            raise ProtocolError("a sensor cannot be its own neighbor")
        if new_neighbors == self._neighbors:
            return None
        for gone in self._neighbors - new_neighbors:
            self._sent.pop(gone, None)
            self._received.pop(gone, None)
        for fresh in new_neighbors - self._neighbors:
            self._sent.setdefault(fresh, {})
            self._received.setdefault(fresh, {})
        self._neighbors = new_neighbors
        self.stats.events_processed += 1
        return self._process()

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _record_received(self, sender: int, point: DataPoint) -> None:
        bucket = self._received[sender]
        current = bucket.get(point.rest)
        if current is None or point.hop < current.hop:
            bucket[point.rest] = point

    def _canonical(self, points: Iterable[DataPoint]) -> List[DataPoint]:
        """Map points to the locally-held copy of the same observation.

        The ranking function only looks at the ``rest`` fields, but the
        sufficiency fixpoint manipulates sets of :class:`DataPoint`, whose
        equality includes the hop counter.  To avoid a single observation
        appearing twice (once with the hop it was sent at, once with the hop
        it is held at) every point is replaced by the holdings copy when one
        exists, and duplicates are collapsed to the smallest hop otherwise.
        """
        best: Dict[RestKey, DataPoint] = {}
        for point in points:
            held = self._holdings.get(point.rest)
            candidate = held if held is not None else point
            current = best.get(point.rest)
            if current is None or candidate.hop < current.hop:
                best[point.rest] = candidate
        return list(best.values())

    def _known_hop(self, neighbor: int, key: RestKey) -> Optional[int]:
        """Smallest recorded hop for ``key`` in ``D_{i,j} ∪ D_{j,i}``.

        This is the ``y.hop`` of the paper's redundancy filter: a candidate
        ``x`` is not transmitted when the bookkeeping already contains a copy
        of the same observation with ``y.hop <= x.hop``.
        """
        hops = []
        sent = self._sent[neighbor].get(key)
        if sent is not None:
            hops.append(sent.hop)
        received = self._received[neighbor].get(key)
        if received is not None:
            hops.append(received.hop)
        return min(hops) if hops else None

    # ------------------------------------------------------------------
    # Core: the nested for-loops of Algorithm 2
    # ------------------------------------------------------------------
    def _process(self) -> Optional[OutlierMessage]:
        payloads: Dict[int, frozenset] = {}
        if not self._neighbors:
            return None
        level_data = self._level_estimates()
        for neighbor in sorted(self._neighbors):
            outgoing = self._sufficient_for_neighbor(neighbor, level_data)
            if outgoing:
                payloads[neighbor] = frozenset(outgoing)
                bucket = self._sent[neighbor]
                for point in outgoing:
                    current = bucket.get(point.rest)
                    if current is None or point.hop < current.hop:
                        bucket[point.rest] = point
                self.stats.points_sent += len(outgoing)
        if not payloads:
            return None
        self.stats.messages_built += 1
        return OutlierMessage(sender=self.sensor_id, payloads=payloads)

    def _level_estimates(self) -> List[tuple]:
        """Per hop level: ``(holdings, estimate, estimate_support, subset)``.

        These depend only on ``P_i``, so they are computed once per event and
        reused for every neighbor; ``subset`` is the level's resolved
        membership mask (also per event -- the per-neighbor sufficient-set
        fixpoints share it instead of rebuilding it via ``try_subset``).
        """
        data = []
        ranking = self.query.ranking
        index = self._index
        for level in range(self.hop_diameter):
            cache = self._caches[level] if self._caches is not None else None
            if cache is not None and not cache.degraded:
                level_holdings = cache.member_points()
                if not level_holdings:
                    data.append((level_holdings, [], set(), UNRESOLVED_SUBSET))
                    continue
                subset = cache.subset()
                estimate = cache.top_n(self.query.n)
                estimate_support = support_of_set(
                    ranking, estimate, level_holdings, index=index, subset=subset
                )
                data.append((level_holdings, estimate, estimate_support, subset))
                continue
            level_holdings = [p for p in self._holdings.values() if p.hop <= level]
            if not level_holdings:
                data.append((level_holdings, [], set(), UNRESOLVED_SUBSET))
                continue
            subset = UNRESOLVED_SUBSET
            if index is not None:
                covered, mask = index.try_subset(level_holdings)
                if covered:
                    subset = mask
            if subset is UNRESOLVED_SUBSET:
                estimate = self.query.outliers(level_holdings, index=index)
                estimate_support = support_of_set(
                    ranking, estimate, level_holdings, index=index
                )
            else:
                estimate = self.query.outliers(
                    level_holdings, index=index, subset=subset
                )
                estimate_support = support_of_set(
                    ranking, estimate, level_holdings, index=index, subset=subset
                )
            data.append((level_holdings, estimate, estimate_support, subset))
        return data

    def _sufficient_for_neighbor(
        self, neighbor: int, level_data: List[tuple]
    ) -> List[DataPoint]:
        sent_bucket = self._sent[neighbor]
        recv_bucket = self._received[neighbor]
        merged: Dict[RestKey, DataPoint] = {}

        all_shared = list(sent_bucket.values()) + list(recv_bucket.values())
        for level in range(self.hop_diameter):
            level_holdings, estimate, estimate_support, subset = level_data[level]
            if not level_holdings:
                continue
            if self.variant == "paper":
                shared_raw = [p for p in all_shared if p.hop <= level]
            else:
                shared_raw = all_shared
            shared = self._canonical(shared_raw)
            sufficient = compute_sufficient_set(
                self.query,
                level_holdings,
                shared,
                estimate=estimate,
                estimate_support=estimate_support,
                index=self._index,
                holdings_subset=subset,
            )
            for point in sufficient:
                forwarded = point.incremented()
                current = merged.get(forwarded.rest)
                if current is None or forwarded.hop < current.hop:
                    merged[forwarded.rest] = forwarded

        outgoing: List[DataPoint] = []
        for key, point in merged.items():
            known = self._known_hop(neighbor, key)
            if known is not None and known <= point.hop:
                continue
            outgoing.append(point)
        return sorted(outgoing, key=lambda p: (p.values, p.origin, p.epoch))
