"""Offline reference (ground-truth) computations.

The accuracy experiments compare every sensor's converged estimate with the
answer an omniscient observer would compute: ``O_n(D)`` for the global
algorithm and ``O_n(D_i^{<=d})`` for the semi-global one.  This module
computes those answers directly from the per-sensor datasets and the
communication graph, without running any protocol, so it also serves as the
test oracle for the convergence theorems.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Sequence, Set

from .index import NeighborhoodIndex
from .outliers import OutlierQuery
from .points import DataPoint

__all__ = [
    "global_reference",
    "hop_distances",
    "semi_global_reference",
    "semi_global_reference_all",
]


def global_reference(
    query: OutlierQuery, datasets: Mapping[int, Iterable[DataPoint]]
) -> List[DataPoint]:
    """``O_n(D)`` over the union of all sensors' datasets."""
    union: Set[DataPoint] = set()
    for points in datasets.values():
        union |= {p.with_hop(0) for p in points}
    return query.outliers(union)


def hop_distances(
    adjacency: Mapping[int, Iterable[int]], source: int
) -> Dict[int, int]:
    """Breadth-first hop distance from ``source`` to every reachable node.

    ``adjacency`` maps node id to an iterable of neighbor ids; the graph is
    treated as undirected (an edge is used in both directions even if it is
    only listed once).
    """
    undirected: Dict[int, Set[int]] = {node: set() for node in adjacency}
    for node, neighbors in adjacency.items():
        for other in neighbors:
            undirected.setdefault(node, set()).add(other)
            undirected.setdefault(other, set()).add(node)

    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in undirected.get(node, ()):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def semi_global_reference(
    query: OutlierQuery,
    datasets: Mapping[int, Iterable[DataPoint]],
    adjacency: Mapping[int, Iterable[int]],
    sensor_id: int,
    hop_diameter: int,
) -> List[DataPoint]:
    """``O_n(D_i^{<=d})`` for one sensor.

    The relevant dataset is the union of ``D_j`` over every sensor ``j``
    whose hop distance from ``sensor_id`` is at most ``hop_diameter``.
    """
    distances = hop_distances(adjacency, sensor_id)
    relevant: Set[DataPoint] = set()
    for other, points in datasets.items():
        if distances.get(other, float("inf")) <= hop_diameter:
            relevant |= {p.with_hop(0) for p in points}
    return query.outliers(relevant)


def semi_global_reference_all(
    query: OutlierQuery,
    datasets: Mapping[int, Iterable[DataPoint]],
    adjacency: Mapping[int, Iterable[int]],
    hop_diameter: int,
    shared_index: bool = False,
) -> Dict[int, List[DataPoint]]:
    """``O_n(D_i^{<=d})`` for every sensor, keyed by sensor id.

    The per-sensor relevant datasets overlap heavily (every sensor within
    ``d`` hops shares most of its neighborhood), so with
    ``shared_index=True`` one :class:`~repro.core.index.NeighborhoodIndex`
    is built over the union of all datasets and each sensor's answer is a
    masked query against it, instead of re-sorting a fresh pairwise-distance
    matrix per sensor.  The default stays brute-force: this module is the
    ground truth the accuracy experiments validate the detectors (and their
    indexes) against, so by default it must not share code with the
    subsystem under test.
    """
    if not shared_index:
        return {
            sensor_id: semi_global_reference(
                query, datasets, adjacency, sensor_id, hop_diameter
            )
            for sensor_id in datasets
        }

    normalized = {
        sensor_id: [p.with_hop(0) for p in points]
        for sensor_id, points in datasets.items()
    }
    index = NeighborhoodIndex(metric=query.ranking.metric)
    for points in normalized.values():
        for point in points:
            index.add(point)

    results: Dict[int, List[DataPoint]] = {}
    for sensor_id in normalized:
        distances = hop_distances(adjacency, sensor_id)
        relevant: Set[DataPoint] = set()
        for other, points in normalized.items():
            if distances.get(other, float("inf")) <= hop_diameter:
                relevant.update(points)
        results[sensor_id] = query.outliers(relevant, index=index)
    return results
