"""Support-set computations ``[P|x]`` and ``[P|Q]`` (Section 5.2).

A *support set* of ``x`` over ``P`` is any ``Q1 ⊆ P`` with
``R(x, P) = R(x, Q1)``: the remaining points of ``P`` can be discarded
without changing how outlying ``x`` looks.  The paper uses the unique
*smallest* support set, written ``[P|x]`` (cardinality first, then the
lexicographic extension of the tie-break order ``≺``), and extends it to sets
of query points: ``[P|Q] = ∪_{x∈Q} [P|x]``.

The heavy lifting is delegated to the ranking function (each concrete
``R`` knows its own minimal support set in closed form); this module provides
the set-level wrappers plus a generic validity check used by the test-suite.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

from .points import DataPoint
from .ranking import RankingFunction, UNRESOLVED_SUBSET

__all__ = ["support_set", "support_of_set", "is_support_set"]


def support_set(
    ranking: RankingFunction, x: DataPoint, P: Iterable[DataPoint], index=None
) -> FrozenSet[DataPoint]:
    """Return the unique smallest support set ``[P|x]``.

    With a covering :class:`~repro.core.index.NeighborhoodIndex` the support
    is read off the cached sorted-neighbor list in ``O(k)`` instead of
    re-sorting every candidate.
    """
    if index is not None and x in index:
        P_list = list(P)
        covered, subset = index.try_subset(P_list)
        if covered:
            return ranking.support_indexed(index, x, subset)
        return ranking.support(x, P_list)
    return ranking.support(x, P)


def support_of_set(
    ranking: RankingFunction,
    Q: Iterable[DataPoint],
    P: Iterable[DataPoint],
    index=None,
    subset=UNRESOLVED_SUBSET,
) -> Set[DataPoint]:
    """Return ``[P|Q] = ∪_{x∈Q} [P|x]``.

    ``P`` is materialised once so that it may be any iterable.  When
    ``index`` covers both ``Q`` and ``P`` the membership mask over ``P`` is
    built once and every per-point support is a short walk over precomputed
    ranks.  Callers that already hold the resolved mask for ``P`` (the
    detectors cache one per event) pass it as ``subset`` -- an
    :class:`~repro.core.index.IndexSubset`, or ``None`` when ``P`` is the
    whole index -- and the ``O(|P|)`` ``try_subset`` rebuild is skipped.
    """
    P_list = list(P)
    Q_list = list(Q)
    if index is not None and Q_list:
        if subset is UNRESOLVED_SUBSET:
            covered, subset = index.try_subset(P_list)
        else:
            covered = True
        if covered and index.covers(Q_list):
            result: Set[DataPoint] = set()
            for x in Q_list:
                result |= ranking.support_indexed(index, x, subset)
            return result
    result = set()
    for x in Q_list:
        result |= ranking.support(x, P_list)
    return result


def is_support_set(
    ranking: RankingFunction,
    x: DataPoint,
    candidate: Iterable[DataPoint],
    P: Iterable[DataPoint],
) -> bool:
    """Check whether ``candidate ⊆ P`` is a (not necessarily minimal) support
    set of ``x`` over ``P``: ``R(x, P) == R(x, candidate)``.

    Used by the property-based tests to validate the closed-form supports
    returned by the ranking functions.
    """
    cand = set(candidate)
    P_set = set(P)
    if not cand <= P_set:
        return False
    return ranking.score(x, P_set) == ranking.score(x, cand)
