"""repro: in-network outlier detection for wireless sensor networks.

A production-quality reproduction of Branch, Giannella, Szymanski, Wolff and
Kargupta, *"In-Network Outlier Detection in Wireless Sensor Networks"*
(ICDCS 2006 / extended journal version), including:

* the generic distributed outlier-detection protocol (global and semi-global
  variants) as a reusable, transport-agnostic library (:mod:`repro.core`);
* a discrete-event wireless-sensor-network simulator with a broadcast MAC,
  free-space propagation, AODV routing and a Crossbow-mote energy model
  (:mod:`repro.simulator`, :mod:`repro.network`, :mod:`repro.routing`);
* a centralized baseline (:mod:`repro.baselines`);
* an Intel-Lab-style synthetic sensor-data generator (:mod:`repro.datasets`);
* the application layer binding detectors to simulated sensors and the
  scenario runner (:mod:`repro.wsn`);
* analysis utilities and the experiment harness regenerating every figure of
  the paper's evaluation (:mod:`repro.analysis`, :mod:`repro.experiments`).
"""

from .core import (
    AverageKNNDistance,
    DataPoint,
    DetectionConfig,
    GlobalOutlierDetector,
    InMemoryNetwork,
    KthNearestNeighborDistance,
    NearestNeighborDistance,
    NeighborCountWithinRadius,
    OutlierMessage,
    OutlierQuery,
    SemiGlobalOutlierDetector,
    SlidingWindow,
    make_point,
    top_n_outliers,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DataPoint",
    "make_point",
    "OutlierQuery",
    "top_n_outliers",
    "NearestNeighborDistance",
    "KthNearestNeighborDistance",
    "AverageKNNDistance",
    "NeighborCountWithinRadius",
    "GlobalOutlierDetector",
    "SemiGlobalOutlierDetector",
    "OutlierMessage",
    "SlidingWindow",
    "InMemoryNetwork",
    "DetectionConfig",
]
