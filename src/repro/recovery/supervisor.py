"""Supervision: crash/hang detection, restart-from-checkpoint, replay.

Two supervisors share the :class:`RecoveryConfig` knobs:

* :class:`ShardSupervisor` drives the sharded bus's lockstep epoch loop
  (it *is* the bus's process manager).  It heartbeats workers through a
  ``poll`` timeout, detects a crashed worker by pipe EOF and a hung one by
  heartbeat silence, and restarts the dead worker from its latest
  checkpoint with bounded exponential backoff.  Determinism makes the
  replay protocol exact rather than best-effort: the supervisor journals
  every epoch message ``(epoch index, grant, inbox)`` it has sent since the
  worker's last announced checkpoint, and on restart it regenerates the
  worker's position by discarding the barriers the merged run already
  consumed while re-sending the journalled grants.  The restored worker
  then produces byte-for-byte the messages the never-crashed worker would
  have -- the merged transcript cannot tell a recovery happened.

* :class:`SweepSupervisor` replaces the ``multiprocessing.Pool`` in the
  sweep executor (a ``Pool`` deadlocks when a worker is SIGKILLed
  mid-task).  It dispatches one scenario per worker at a time, applies a
  per-scenario timeout, retries a failed scenario with backoff on another
  incarnation, and quarantines a scenario that keeps failing as *poison*
  -- recorded, never silently dropped.  Scenarios are pure functions of
  their config, so a retried scenario lands the identical result bytes.

Replay invariants (what makes recovery byte-exact):

1. A worker checkpoints at the top of its barrier loop -- *before* peeking
   its queue or draining its outbox -- so a restored worker regenerates the
   exact barrier message the original sent after that capture.
2. A worker that consumed ``e`` epoch grants is about to send barrier
   ``e``; the supervisor has consumed barriers ``0..processed-1`` and sent
   grants ``0..sent-1``, with ``processed ∈ {sent, sent+1}``.  After
   restoring from the checkpoint taken at barrier ``c``, the supervisor
   discards regenerated barriers ``c..processed-1`` (re-sending the
   journalled grant after each one that has one) -- the next barrier the
   worker produces is exactly the one the live loop is waiting for.
3. Journalled inboxes are re-sent verbatim and replayed outboxes are
   *not* re-routed (their crossings were already delivered), so no
   crossing is ever duplicated or lost across a restart.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import ConfigurationError, ExperimentError, SimulationError
from .chaos import ChaosPlan
from .checkpoint import CheckpointPolicy

__all__ = [
    "RecoveryConfig",
    "ShardSupervisor",
    "SweepSupervisor",
    "sweep_worker_main",
]

_INFINITY = float("inf")


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the supervision-and-recovery layer.

    Attributes
    ----------
    checkpoint_every:
        Shard workers snapshot their runtime every this many bus epochs.
    directory:
        Checkpoint store directory; ``None`` uses a per-run temporary
        directory (snapshots live exactly as long as the run needs them).
    heartbeat_timeout:
        Seconds of barrier silence after which a shard worker is declared
        hung and killed.  ``None`` disables hang detection (crashes are
        still caught via pipe EOF).
    max_restarts:
        Restart budget per shard worker; exceeding it fails the run.
    backoff_base / backoff_cap:
        Restart delay: ``min(cap, base * 2**(attempt-1))`` seconds.
    scenario_timeout:
        Sweep-side: seconds one scenario may run in a pool worker before
        the worker is killed and the scenario retried.  ``None`` disables.
    max_retries:
        Sweep-side: how many times a failed scenario is retried before it
        is quarantined as poison.
    """

    checkpoint_every: int = 16
    directory: Optional[str] = None
    heartbeat_timeout: Optional[float] = 600.0
    max_restarts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    scenario_timeout: Optional[float] = None
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout must be positive, got {self.heartbeat_timeout}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.scenario_timeout is not None and self.scenario_timeout <= 0:
            raise ConfigurationError(
                f"scenario_timeout must be positive, got {self.scenario_timeout}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def backoff(self, attempt: int) -> float:
        """Restart delay before the ``attempt``-th restart (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** max(0, attempt - 1)))


class _WorkerDown(Exception):
    """Internal: a worker process crashed or went silent (the message is the
    human-readable reason)."""


# ======================================================================
# Shard supervision
# ======================================================================
class ShardSupervisor:
    """Own the shard worker processes and drive the lockstep epoch loop.

    With ``recovery=None`` this is behaviourally the plain bus of PR 8: a
    dead worker fails the run with the worker's traceback.  With a
    :class:`RecoveryConfig` the loop survives worker kills and hangs, and
    with a :class:`~repro.recovery.chaos.ChaosPlan` it inflicts them --
    deterministically, keyed on per-shard epoch-grant counts.
    """

    def __init__(
        self,
        scenario,
        dataset,
        topology,
        plan,
        *,
        recovery: Optional[RecoveryConfig] = None,
        chaos: Optional[ChaosPlan] = None,
        worker_main=None,
        lookahead: float = 1e-3,
    ) -> None:
        if worker_main is None:
            from ..shard.runtime import shard_worker_main as worker_main
        if chaos is not None and chaos.has("shard") and recovery is None:
            raise ConfigurationError(
                "chaos against shard workers requires recovery to be enabled"
            )
        if (
            chaos is not None
            and chaos.has("shard", "hang")
            and (recovery is None or recovery.heartbeat_timeout is None)
        ):
            raise ConfigurationError(
                "hang chaos needs a heartbeat_timeout to be detectable"
            )
        self.scenario = scenario
        self.dataset = dataset
        self.topology = topology
        self.plan = plan
        self.recovery = recovery
        self.chaos = chaos
        self.worker_main = worker_main
        self.lookahead = lookahead

        k = plan.shard_count
        self.context = multiprocessing.get_context()
        self.processes: List[Optional[multiprocessing.Process]] = [None] * k
        self.connections: List[Optional[object]] = [None] * k
        #: Epoch messages sent since each shard's last checkpoint:
        #: ``(epoch index, grant, inbox)``.
        self.journals: List[List[Tuple[int, float, list]]] = [[] for _ in range(k)]
        #: Latest checkpoint announcement per shard (``None`` = none yet).
        self.ckpt: List[Optional[dict]] = [None] * k
        #: Barriers consumed / epoch grants sent per shard.
        self.processed = [0] * k
        self.sent = [0] * k
        self.restart_counts = [0] * k
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._policy: Optional[CheckpointPolicy] = None
        self.stats: Dict[str, object] = {
            "enabled": recovery is not None,
            "checkpoint_every": recovery.checkpoint_every if recovery else None,
            "epochs": 0,
            "checkpoints": [],
            "restarts": [],
            "chaos": [],
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> List[dict]:
        """Spawn the workers, drive the epoch loop, return the per-shard
        finalisation payloads (in shard order)."""
        try:
            if self.recovery is not None:
                directory = self.recovery.directory
                if directory is None:
                    self._tempdir = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
                    directory = self._tempdir.name
                self._policy = CheckpointPolicy(
                    directory=str(directory), every=self.recovery.checkpoint_every
                )
            for shard in range(self.plan.shard_count):
                self._spawn(shard, resume_from=None)
            return self._drive()
        finally:
            self._shutdown()

    def _drive(self) -> List[dict]:
        shard_count = self.plan.shard_count
        inboxes: List[list] = [[] for _ in range(shard_count)]
        owner = self.plan.owner_map()
        clocks = [0.0] * shard_count
        while True:
            effective_next = [_INFINITY] * shard_count
            for shard in range(shard_count):
                next_time, now, outbox = self._barrier(shard)
                clocks[shard] = now
                if next_time is not None:
                    effective_next[shard] = next_time
                for record in outbox:
                    inboxes[owner[record.dst]].append(record)
            for shard in range(shard_count):
                for record in inboxes[shard]:
                    effective_next[shard] = min(
                        effective_next[shard], record.deliver_time
                    )
            horizon = min(effective_next)
            if horizon == _INFINITY:
                break
            grant = horizon + self.lookahead
            self.stats["epochs"] += 1
            for shard in range(shard_count):
                self._send_epoch(shard, grant, inboxes[shard])
                inboxes[shard] = []

        duration = max(self.scenario.duration, max(clocks))
        return [
            self._request_result(shard, duration) for shard in range(shard_count)
        ]

    def _shutdown(self) -> None:
        for conn in self.connections:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        for process in self.processes:
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                # ``kill`` (SIGKILL) also reaps a SIGSTOPped worker, which
                # ``terminate`` (SIGTERM) cannot wake.
                process.kill()
                process.join()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _spawn(self, shard: int, resume_from: Optional[str]) -> None:
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=self.worker_main,
            args=(
                child_conn,
                self.scenario,
                self.dataset,
                self.topology,
                self.plan.members[shard],
                self.plan.boundaries[shard],
                self._policy,
                resume_from,
            ),
            name=f"repro-shard-{shard}",
        )
        process.start()
        child_conn.close()
        self.connections[shard] = parent_conn
        self.processes[shard] = process

    def _reap(self, shard: int) -> None:
        process = self.processes[shard]
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join()
        conn = self.connections[shard]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self.processes[shard] = None
        self.connections[shard] = None

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _recv(self, shard: int) -> tuple:
        """One message from a worker, or :class:`_WorkerDown`."""
        conn = self.connections[shard]
        process = self.processes[shard]
        timeout = self.recovery.heartbeat_timeout if self.recovery else None
        if timeout is not None and not conn.poll(timeout):
            raise _WorkerDown(
                f"went silent (no heartbeat for {timeout:g}s; killed as hung)"
            )
        try:
            message = conn.recv()
        except (EOFError, OSError):
            raise _WorkerDown(
                f"exited unexpectedly (exit code {process.exitcode})"
            ) from None
        if message[0] == "error":
            # A worker-side exception is deterministic -- restarting would
            # only replay it -- so it is fatal regardless of recovery.
            raise SimulationError(
                f"shard worker {process.name} failed:\n{message[1]}"
            )
        return message

    def _send(self, shard: int, message: tuple) -> None:
        try:
            self.connections[shard].send(message)
        except (BrokenPipeError, OSError):
            process = self.processes[shard]
            raise _WorkerDown(
                f"exited unexpectedly (exit code {process.exitcode})"
            ) from None

    def _barrier(self, shard: int) -> Tuple[Optional[float], float, list]:
        """The next live barrier from ``shard``, recovering as needed."""
        while True:
            try:
                message = self._recv(shard)
            except _WorkerDown as down:
                self._recover(shard, str(down))
                continue
            kind, next_time, now, outbox, ckpt = message
            if kind != "barrier":  # pragma: no cover - defensive
                raise SimulationError(f"unexpected worker message {kind!r}")
            self._note_checkpoint(shard, ckpt)
            self.processed[shard] += 1
            return next_time, now, outbox

    def _send_epoch(self, shard: int, grant: float, inbox: list) -> None:
        # Journal first: once the supervisor decides to send a grant it is
        # committed -- a crash during the send is recovered by replaying
        # the journal, which now includes this grant.
        self.journals[shard].append((self.sent[shard], grant, inbox))
        self.sent[shard] += 1
        try:
            self._send(shard, ("epoch", grant, inbox))
        except _WorkerDown as down:
            # The replay inside ``_recover`` re-sends every journalled
            # grant up to ``sent``, including this one.
            self._recover(shard, str(down))
        self._fire_chaos(shard)

    def _request_result(self, shard: int, duration: float) -> dict:
        while True:
            try:
                self._send(shard, ("finalize", duration))
                message = self._recv(shard)
            except _WorkerDown as down:
                self._recover(shard, str(down))
                continue
            kind, payload = message
            if kind != "result":  # pragma: no cover - defensive
                raise SimulationError(f"unexpected worker message {kind!r}")
            return payload

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _note_checkpoint(self, shard: int, ckpt: Optional[dict]) -> None:
        if ckpt is None:
            return
        self.ckpt[shard] = ckpt
        epoch = ckpt["epoch"]
        # Grants before the checkpointed barrier can never need replaying.
        self.journals[shard] = [
            entry for entry in self.journals[shard] if entry[0] >= epoch
        ]
        self.stats["checkpoints"].append(
            {
                "shard": shard,
                "epoch": epoch,
                "key": ckpt["key"],
                "write_seconds": ckpt["write_seconds"],
                "bytes": ckpt["bytes"],
            }
        )

    def _fire_chaos(self, shard: int) -> None:
        if self.chaos is None:
            return
        action = self.chaos.take("shard", shard, self.sent[shard])
        if action is None:
            return
        process = self.processes[shard]
        if process is not None and process.pid is not None:
            action.apply(process.pid)
            self.stats["chaos"].append(action.describe())

    def _recover(self, shard: int, reason: str) -> None:
        """Restart ``shard`` from its last checkpoint and replay it back to
        parity with the live loop."""
        process_name = f"repro-shard-{shard}"
        if self.recovery is None:
            raise SimulationError(f"shard worker {process_name} {reason}")
        while True:
            self.restart_counts[shard] += 1
            attempt = self.restart_counts[shard]
            if attempt > self.recovery.max_restarts:
                raise SimulationError(
                    f"shard worker {process_name} {reason}; restart budget "
                    f"exhausted ({self.recovery.max_restarts} restarts)"
                )
            downtime_started = time.perf_counter()
            self._reap(shard)
            delay = self.recovery.backoff(attempt)
            if delay > 0:
                time.sleep(delay)
            checkpoint = self.ckpt[shard]
            resume_epoch = checkpoint["epoch"] if checkpoint is not None else 0
            self._spawn(
                shard,
                resume_from=checkpoint["key"] if checkpoint is not None else None,
            )
            try:
                # Regenerate the barriers the merged run already consumed:
                # the restored worker is about to send barrier
                # ``resume_epoch``; barriers ``resume_epoch..processed-1``
                # are duplicates of consumed ones (their outboxes were
                # already routed -- discard, never re-route), and each one
                # with a journalled grant gets that grant re-sent verbatim.
                replayed = 0
                for number in range(resume_epoch, self.processed[shard]):
                    message = self._recv(shard)
                    if message[0] != "barrier":  # pragma: no cover - defensive
                        raise SimulationError(
                            f"unexpected worker message {message[0]!r} during replay"
                        )
                    self._note_checkpoint(shard, message[4])
                    entry = next(
                        (e for e in self.journals[shard] if e[0] == number), None
                    )
                    if entry is not None:
                        self._send(shard, ("epoch", entry[1], entry[2]))
                    replayed += 1
            except _WorkerDown as again:
                reason = str(again)
                continue
            self.stats["restarts"].append(
                {
                    "shard": shard,
                    "reason": reason,
                    "attempt": attempt,
                    "resumed_from_epoch": resume_epoch,
                    "replayed_epochs": replayed,
                    "downtime_seconds": time.perf_counter() - downtime_started,
                }
            )
            return


# ======================================================================
# Sweep supervision
# ======================================================================
def sweep_worker_main(conn, task) -> None:
    """Entry point of one supervised sweep worker process.

    Protocol: supervisor sends ``("task", tag, scenario)`` or ``("stop",)``;
    the worker answers ``("result", tag, result)`` or
    ``("error", tag, formatted_traceback)``.
    """
    try:
        while True:
            message = conn.recv()
            if message[0] == "task":
                _, tag, scenario = message
                try:
                    result = task(scenario)
                except BaseException:
                    conn.send(("error", tag, traceback.format_exc()))
                else:
                    conn.send(("result", tag, result))
            elif message[0] == "stop":
                return
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


class SweepSupervisor:
    """A chaos-tolerant replacement for the sweep executor's process pool.

    One scenario is dispatched per worker at a time; a worker that crashes,
    hangs past ``scenario_timeout``, or raises hands its scenario back for
    a retry (with backoff) until ``max_retries`` is exhausted, after which
    the scenario is quarantined in :attr:`poisoned`.  Results are yielded
    in *completion* order -- the caller keys by scenario.
    """

    def __init__(
        self,
        task,
        workers: int,
        *,
        recovery: Optional[RecoveryConfig] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self.task = task
        self.workers = workers
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        self.chaos = chaos
        if (
            chaos is not None
            and chaos.has("worker", "hang")
            and self.recovery.scenario_timeout is None
        ):
            raise ConfigurationError(
                "hang chaos needs a scenario_timeout to be detectable"
            )
        self.context = multiprocessing.get_context()
        self.processes: List[Optional[multiprocessing.Process]] = [None] * workers
        self.connections: List[Optional[object]] = [None] * workers
        #: ``(scenario index, scenario, deadline)`` per busy worker.
        self.busy: List[Optional[Tuple[int, object, float]]] = [None] * workers
        self.dispatch_counts = [0] * workers
        self.restart_counts = [0] * workers
        #: Quarantined scenarios: ``{"scenario", "reason", "attempts"}``.
        self.poisoned: List[dict] = []
        self.stats: Dict[str, object] = {"restarts": 0, "retries": 0, "chaos": []}

    # ------------------------------------------------------------------
    def run(self, scenarios) -> Iterator[Tuple[object, object]]:
        """Yield ``(scenario, result)`` pairs in completion order."""
        pending = deque(enumerate(scenarios))
        attempts: Dict[int, int] = {}
        try:
            while pending or any(slot is not None for slot in self.busy):
                self._dispatch(pending, attempts)
                yield from self._collect(pending, attempts)
        finally:
            self.close()

    def close(self) -> None:
        """Stop and reap every worker (idempotent)."""
        for worker, conn in enumerate(self.connections):
            if conn is None:
                continue
            if self.busy[worker] is None:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for worker, process in enumerate(self.processes):
            if process is None:
                continue
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join()
            self.processes[worker] = None
        for worker, conn in enumerate(self.connections):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                self.connections[worker] = None

    # ------------------------------------------------------------------
    def _spawn(self, worker: int) -> None:
        if self.restart_counts[worker]:
            delay = self.recovery.backoff(self.restart_counts[worker])
            if delay > 0:
                time.sleep(delay)
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=sweep_worker_main,
            args=(child_conn, self.task),
            name=f"repro-sweep-{worker}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.processes[worker] = process
        self.connections[worker] = parent_conn

    def _dispatch(self, pending, attempts: Dict[int, int]) -> None:
        for worker in range(self.workers):
            if not pending or self.busy[worker] is not None:
                continue
            process = self.processes[worker]
            if process is None or not process.is_alive():
                self._spawn(worker)
            index, scenario = pending.popleft()
            self.dispatch_counts[worker] += 1
            deadline = (
                time.monotonic() + self.recovery.scenario_timeout
                if self.recovery.scenario_timeout is not None
                else _INFINITY
            )
            try:
                self.connections[worker].send(("task", index, scenario))
            except (BrokenPipeError, OSError):
                self.busy[worker] = (index, scenario, deadline)
                self._fail(
                    worker,
                    pending,
                    attempts,
                    "worker pipe closed before dispatch",
                )
                continue
            self.busy[worker] = (index, scenario, deadline)
            self._fire_chaos(worker)

    def _collect(self, pending, attempts: Dict[int, int]):
        live = {
            self.connections[worker]: worker
            for worker in range(self.workers)
            if self.busy[worker] is not None and self.connections[worker] is not None
        }
        if not live:
            return
        nearest = min(slot[2] for slot in self.busy if slot is not None)
        timeout = None if nearest == _INFINITY else max(0.0, nearest - time.monotonic())
        ready = _connection_wait(list(live), timeout)
        if not ready:
            now = time.monotonic()
            for worker in range(self.workers):
                slot = self.busy[worker]
                if slot is not None and slot[2] <= now:
                    self._fail(
                        worker,
                        pending,
                        attempts,
                        f"scenario exceeded the {self.recovery.scenario_timeout:g}s "
                        f"timeout (worker killed)",
                    )
            return
        for conn in ready:
            worker = live[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                process = self.processes[worker]
                self._fail(
                    worker,
                    pending,
                    attempts,
                    f"worker exited unexpectedly (exit code {process.exitcode})",
                )
                continue
            kind, tag, payload = message
            index, scenario, _ = self.busy[worker]
            assert tag == index, (tag, index)
            self.busy[worker] = None
            if kind == "result":
                yield scenario, payload
            else:  # "error": the task raised -- worker itself is fine
                self._retry_or_poison(
                    index, scenario, pending, attempts,
                    f"scenario raised:\n{payload}",
                )

    def _fail(self, worker: int, pending, attempts: Dict[int, int], reason: str) -> None:
        """A worker died or hung while running a scenario: reap it and put
        the scenario back (or quarantine it)."""
        index, scenario, _ = self.busy[worker]
        self.busy[worker] = None
        process = self.processes[worker]
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join()
        conn = self.connections[worker]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self.processes[worker] = None
        self.connections[worker] = None
        self.restart_counts[worker] += 1
        self.stats["restarts"] = int(self.stats["restarts"]) + 1
        self._retry_or_poison(index, scenario, pending, attempts, reason)

    def _retry_or_poison(
        self, index: int, scenario, pending, attempts: Dict[int, int], reason: str
    ) -> None:
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] > self.recovery.max_retries:
            self.poisoned.append(
                {
                    "scenario": scenario,
                    "reason": reason,
                    "attempts": attempts[index],
                }
            )
        else:
            self.stats["retries"] = int(self.stats["retries"]) + 1
            pending.appendleft((index, scenario))

    def _fire_chaos(self, worker: int) -> None:
        if self.chaos is None:
            return
        action = self.chaos.take("worker", worker, self.dispatch_counts[worker])
        if action is None:
            return
        process = self.processes[worker]
        if process is not None and process.pid is not None:
            action.apply(process.pid)
            self.stats["chaos"].append(action.describe())
