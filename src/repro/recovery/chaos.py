"""Deterministic process-level fault injection.

A chaos plan is a comma-separated schedule of faults against real worker
processes, parsed from the ``--chaos`` CLI flag::

    kill:shard1@epoch3      SIGKILL shard worker 1 right after the bus
                            sends it its 3rd epoch grant
    hang:shard0@epoch2      SIGSTOP shard worker 0 after its 2nd grant
                            (the supervisor's heartbeat timeout detects it)
    kill:worker0@task2      SIGKILL sweep pool worker 0 right after its
                            2nd scenario dispatch
    hang:worker1            SIGSTOP sweep pool worker 1 after its 1st
                            dispatch (``@...`` defaults to 1)

Indices are the runtime's own 0-based shard / pool-worker indices; trigger
counts are 1-based ("the Nth grant/dispatch").  Each action fires exactly
once, at a point keyed to the deterministic message schedule rather than to
wall-clock, so a chaos run is as reproducible as the simulation itself --
which is what lets CI assert the recovered transcript byte-for-byte.
"""

from __future__ import annotations

import os
import re
import signal
from dataclasses import dataclass
from typing import List, Optional

from ..core.errors import ConfigurationError

__all__ = ["ChaosAction", "ChaosPlan"]

#: ``kind:target index [@ counter count]``
_ENTRY_RE = re.compile(
    r"^(?P<kind>kill|hang):(?P<target>shard|worker)(?P<index>\d+)"
    r"(?:@(?P<counter>epoch|task)(?P<at>\d+))?$"
)

#: The trigger-counter word each target type uses.
_COUNTER_FOR = {"shard": "epoch", "worker": "task"}


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault against one worker process."""

    kind: str  # "kill" (SIGKILL) or "hang" (SIGSTOP)
    target: str  # "shard" (bus worker) or "worker" (sweep pool worker)
    index: int  # 0-based shard / pool-worker index
    at: int  # 1-based trigger count (epoch grants / task dispatches)

    def describe(self) -> str:
        return f"{self.kind}:{self.target}{self.index}@{_COUNTER_FOR[self.target]}{self.at}"

    def apply(self, pid: int) -> None:
        """Deliver the fault to the live process ``pid``.

        ``kill`` is immediate and unblockable; ``hang`` stops the process
        cold (it stops heartbeating but holds its pipes open), which is
        exactly the failure mode a supervisor can only catch via timeout.
        """
        os.kill(pid, signal.SIGKILL if self.kind == "kill" else signal.SIGSTOP)


class ChaosPlan:
    """The pending fault schedule; actions are consumed as they fire."""

    def __init__(self, actions: List[ChaosAction]) -> None:
        self._pending: List[ChaosAction] = list(actions)
        #: Actions already fired, in firing order (for reporting).
        self.fired: List[ChaosAction] = []

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse a ``--chaos`` specification string."""
        actions = []
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            match = _ENTRY_RE.match(token)
            if match is None:
                raise ConfigurationError(
                    f"bad chaos entry {token!r}; expected "
                    f"'kill|hang:shardI[@epochN]' or 'kill|hang:workerI[@taskN]'"
                )
            target = match.group("target")
            counter = match.group("counter")
            if counter is not None and counter != _COUNTER_FOR[target]:
                raise ConfigurationError(
                    f"bad chaos entry {token!r}: {target} targets count "
                    f"{_COUNTER_FOR[target]}s, not {counter}s"
                )
            at = int(match.group("at")) if match.group("at") is not None else 1
            if at < 1:
                raise ConfigurationError(
                    f"bad chaos entry {token!r}: trigger counts are 1-based"
                )
            actions.append(
                ChaosAction(
                    kind=match.group("kind"),
                    target=target,
                    index=int(match.group("index")),
                    at=at,
                )
            )
        if not actions:
            raise ConfigurationError(f"empty chaos specification {spec!r}")
        return cls(actions)

    def take(self, target: str, index: int, count: int) -> Optional[ChaosAction]:
        """Pop and return the pending action scheduled for the ``count``-th
        trigger of ``target`` ``index``, or ``None``.  Each action fires once.
        """
        for position, action in enumerate(self._pending):
            if action.target == target and action.index == index and action.at == count:
                self.fired.append(self._pending.pop(position))
                return self.fired[-1]
        return None

    def has(self, target: str, kind: Optional[str] = None) -> bool:
        """Whether any pending action aims at ``target`` (and ``kind``)."""
        return any(
            action.target == target and (kind is None or action.kind == kind)
            for action in self._pending
        )

    def pending(self) -> List[ChaosAction]:
        return list(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChaosPlan({[a.describe() for a in self._pending]})"
