"""Fault-tolerant execution: checkpoints, supervision, replay, chaos.

This package makes the distributed execution paths (the sharded bus of
:mod:`repro.shard` and the sweep executor of :mod:`repro.orchestrator`)
survive worker crashes and hangs without giving up determinism:

* :mod:`repro.recovery.store` -- durable content-addressed snapshot files.
* :mod:`repro.recovery.checkpoint` -- snapshot (de)serialization and the
  checkpoint cadence policy.
* :mod:`repro.recovery.supervisor` -- heartbeat monitoring, restart with
  bounded backoff, byte-exact epoch replay, retry/poison quarantine.
* :mod:`repro.recovery.chaos` -- deterministic process-level fault
  injection (``--chaos 'kill:shard1@epoch3,hang:worker2'``).
"""

from .chaos import ChaosAction, ChaosPlan
from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointPolicy,
    capture_state,
    restore_state,
)
from .store import CheckpointStore
from .supervisor import (
    RecoveryConfig,
    ShardSupervisor,
    SweepSupervisor,
    sweep_worker_main,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "ChaosAction",
    "ChaosPlan",
    "CheckpointPolicy",
    "CheckpointStore",
    "RecoveryConfig",
    "ShardSupervisor",
    "SweepSupervisor",
    "capture_state",
    "restore_state",
    "sweep_worker_main",
]
