"""Durable, content-addressed checkpoint store.

The checkpoint store is the recovery layer's durability primitive, built on
the same idioms as the orchestrator's result store
(:mod:`repro.orchestrator.store`): a flat directory of files whose names are
the SHA-256 digest of their contents, written atomically (temp file +
``fsync`` + ``os.replace``) so a worker killed mid-write can never leave a
half-written snapshot under a final key.

Content addressing buys two properties the supervisor relies on:

* **self-verification** -- a read re-hashes the bytes and compares against
  the key, so silent disk corruption is *detected* at restore time instead
  of resurrecting a worker from garbage.  A corrupt snapshot is quarantined
  to ``<key>.corrupt`` (with a log line) and the read raises
  :class:`~repro.core.errors.CheckpointError`; the supervisor then falls
  back to an older snapshot or a from-scratch replay.
* **idempotent writes** -- re-capturing identical state (a replayed worker
  passing through the same epoch) lands on the same key and is a no-op.
"""

from __future__ import annotations

import hashlib
import logging
import os
from pathlib import Path
from typing import List, Union

from ..core.errors import CheckpointError

__all__ = ["CheckpointStore"]

logger = logging.getLogger("repro.recovery")

#: Extension of a durable snapshot file.
_SUFFIX = ".ckpt"


class CheckpointStore:
    """A directory of content-addressed runtime snapshots."""

    def __init__(self, root: Union[str, Path]) -> None:
        # Construction is cheap on purpose (workers rebuild one per process);
        # the directory is created lazily on the first write.
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def put(self, payload: bytes) -> str:
        """Durably persist ``payload`` and return its content key.

        The bytes are flushed and fsynced *before* the atomic rename, so
        once ``put`` returns the snapshot survives both a process kill and
        a power cut -- the supervisor may promise a restarting worker this
        snapshot exists.
        """
        key = hashlib.sha256(payload).hexdigest()
        path = self.path_for(key)
        if path.exists():
            # Content-addressed: identical bytes are already durable.
            return key
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return key

    def get(self, key: str) -> bytes:
        """The snapshot bytes under ``key``.

        Raises :class:`CheckpointError` when the snapshot is missing or its
        digest no longer matches the key (the corrupt file is quarantined
        to ``<key>.corrupt`` rather than deleted, so disk faults stay
        observable).
        """
        path = self.path_for(key)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(f"checkpoint {key} not found in {self.root}") from None
        if hashlib.sha256(payload).hexdigest() != key:
            quarantined = path.with_suffix(".corrupt")
            os.replace(path, quarantined)
            logger.warning(
                "quarantined corrupt checkpoint %s -> %s", path, quarantined
            )
            raise CheckpointError(
                f"checkpoint {key} failed digest verification "
                f"(quarantined to {quarantined.name})"
            )
        return payload

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Keys of every snapshot currently on disk (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob(f"*{_SUFFIX}"))

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every snapshot; returns how many files were removed."""
        removed = 0
        for key in self.keys():
            self.path_for(key).unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.root)!r}, snapshots={len(self)})"
