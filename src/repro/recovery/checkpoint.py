"""Snapshot serialization: capture and restore a runtime's full state.

A checkpoint is a self-describing byte string::

    REPRO-CKPT\\n{"meta":{...},"schema":1}\\n<pickle blob>

The one-line JSON header carries the schema version and caller metadata
(epoch index, shard index); the blob is a :mod:`pickle` of the live object
graph.  Pickling captures *everything* transitively reachable -- the
simulator's event heap with lineage keys (events hold bound-method
callbacks into the nodes/apps, which pickle by reference into the same
restored object graph), the per-node detector state including the
neighborhood index's compact ``array`` buffers and score caches, the
recording energy-meter folds, and every named ``random.Random`` stream --
so ``restore_state(capture_state(x))`` is a deep copy frozen at a single
instant.

Why this is byte-exact across a process boundary: the only process-local
state in the stack is the events' ``sequence`` tie-break counter, and in
lineage mode (``Simulator(lineage=True)``, which every shard worker uses)
the ``(gen, pkey, idx)`` lineage triple is unique per event, so the
``sequence`` field is never reached by a comparison.  A restored worker
therefore replays the exact event order of the original -- the invariant
the recovery tests and the chaos-smoke CI job pin byte-for-byte.

Capture is only legal *between* events: :class:`~repro.simulator.engine.
Simulator` refuses to pickle while it is running or mid-event, because a
half-fired callback is not reconstructible.  The shard worker captures at
the epoch barrier, before draining its outbox, which is exactly such a
quiescent point.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.errors import CheckpointError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointPolicy",
    "capture_state",
    "restore_state",
]

#: Bumped whenever the snapshot layout changes incompatibly; restoring a
#: snapshot written under a different schema raises instead of resurrecting
#: a worker from bytes the current code misinterprets.
CHECKPOINT_SCHEMA = 1

_MAGIC = b"REPRO-CKPT"


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where a worker snapshots itself.

    ``every`` counts epoch barriers: the worker captures its state at every
    ``every``-th barrier (epoch 0 -- the freshly built slice -- is never
    captured, it is reconstructible from the scenario alone).
    """

    directory: str
    every: int

    def __post_init__(self) -> None:
        if self.every < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1 epoch, got {self.every}"
            )

    def due(self, epoch: int) -> bool:
        return epoch > 0 and epoch % self.every == 0


def capture_state(state: Any, meta: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialise ``state`` (any picklable object graph) into checkpoint bytes."""
    header = json.dumps(
        {"schema": CHECKPOINT_SCHEMA, "meta": dict(meta or {})},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    try:
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise CheckpointError(f"state is not checkpointable: {error}") from error
    return _MAGIC + b"\n" + header + b"\n" + blob


def restore_state(payload: bytes) -> Tuple[Any, Dict[str, Any]]:
    """Rebuild ``(state, meta)`` from checkpoint bytes."""
    magic, _, rest = payload.partition(b"\n")
    if magic != _MAGIC:
        raise CheckpointError("not a repro checkpoint (bad magic)")
    header_bytes, _, blob = rest.partition(b"\n")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise CheckpointError(f"unreadable checkpoint header: {error}") from error
    schema = header.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {schema!r} is not supported "
            f"(this code reads schema {CHECKPOINT_SCHEMA})"
        )
    try:
        state = pickle.loads(blob)
    except Exception as error:
        raise CheckpointError(f"checkpoint blob failed to restore: {error}") from error
    return state, header.get("meta", {})
