"""Routing substrate: AODV (used by the centralized baseline) and static
shortest-path routing (tests and ablations)."""

from .aodv import AodvAgent, RouteEntry, RREP_SIZE_BYTES, RREQ_SIZE_BYTES
from .static import StaticRoutingAgent, install_shortest_path_routes

__all__ = [
    "AodvAgent",
    "RouteEntry",
    "RREQ_SIZE_BYTES",
    "RREP_SIZE_BYTES",
    "StaticRoutingAgent",
    "install_shortest_path_routes",
]
