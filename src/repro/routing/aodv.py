"""Ad-hoc On-demand Distance Vector (AODV) routing.

The centralized baseline of the paper ships every node's sliding window to a
sink over multi-hop routes established with AODV (Perkins & Royer, 1999).
This module implements the subset of AODV the evaluation needs:

* route discovery by flooding route requests (RREQ) with duplicate
  suppression,
* reverse-route installation at every node a RREQ traverses,
* route replies (RREP) unicast hop-by-hop back along the reverse route,
  installing forward routes,
* hop-by-hop forwarding of data packets along installed routes,
* buffering of data packets while discovery for their destination is in
  flight.

Route maintenance (RERR, timeouts, sequence-number-driven refreshes) is not
required because the evaluation uses static, connected topologies; stale
routes therefore never arise.  The structures are nevertheless in place
(sequence numbers are tracked and monotone) so the protocol behaves correctly
if discovery is re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import RoutingError
from ..network.node import SimNode
from ..network.packet import BROADCAST_ADDRESS, Packet, PacketKind
from ..simulator.rng import RandomStreams

__all__ = ["AodvAgent", "RouteEntry", "RREQ_SIZE_BYTES", "RREP_SIZE_BYTES"]

#: On-the-wire sizes of AODV control packets (RFC 3561 formats, rounded).
RREQ_SIZE_BYTES = 24
RREP_SIZE_BYTES = 20


@dataclass(frozen=True)
class RreqPayload:
    """Route request: flooded until it reaches the target."""

    originator: int
    originator_seq: int
    request_id: int
    target: int
    hop_count: int


@dataclass(frozen=True)
class RrepPayload:
    """Route reply: unicast back towards the originator of the request."""

    originator: int
    target: int
    target_seq: int
    hop_count: int


@dataclass
class RouteEntry:
    """One row of the routing table."""

    destination: int
    next_hop: int
    hop_count: int
    destination_seq: int = 0


class AodvAgent:
    """AODV routing agent attached to a :class:`SimNode`.

    The agent registers itself as the node's first packet handler: it consumes
    AODV control traffic and relays data packets for which this node is an
    intermediate hop; data packets that terminate here are left to the
    application handlers further down the stack.
    """

    def __init__(
        self,
        node: SimNode,
        streams: Optional[RandomStreams] = None,
        rreq_jitter: float = 0.005,
    ) -> None:
        self.node = node
        self._rng = (streams or RandomStreams(node.node_id)).stream(
            f"aodv-{node.node_id}"
        )
        self.rreq_jitter = float(rreq_jitter)
        self.sequence_number = 0
        self.request_id = 0
        self.routing_table: Dict[int, RouteEntry] = {}
        self._seen_requests: set = set()
        self._pending: Dict[int, List[Packet]] = {}
        # Statistics, used by the experiments to split routing overhead from
        # application traffic.
        self.control_packets_sent = 0
        self.data_packets_forwarded = 0
        node.add_handler(self.handle_packet)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    def has_route(self, destination: int) -> bool:
        return destination in self.routing_table or destination == self.node_id

    def route(self, destination: int) -> RouteEntry:
        try:
            return self.routing_table[destination]
        except KeyError:
            raise RoutingError(
                f"node {self.node_id} has no route to {destination}"
            ) from None

    def send_data(self, packet: Packet) -> None:
        """Send (or queue pending route discovery) an end-to-end data packet
        originated by this node."""
        if packet.destination == self.node_id:
            raise RoutingError("refusing to route a packet addressed to its own source")
        if packet.destination == BROADCAST_ADDRESS:
            raise RoutingError("AODV does not route link-layer broadcasts")
        self._forward_or_discover(packet)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def handle_packet(self, node: SimNode, packet: Packet) -> bool:
        if packet.kind == PacketKind.AODV_RREQ:
            self._handle_rreq(packet)
            return True
        if packet.kind == PacketKind.AODV_RREP:
            self._handle_rrep(packet)
            return True
        if packet.destination == self.node_id:
            # Terminates here: the application handler will take it.
            return False
        if packet.is_broadcast:
            # Application broadcasts are none of AODV's business.
            return False
        # Unicast data packet addressed elsewhere but link-delivered to us:
        # we are an intermediate hop and must relay it.
        self._relay(packet)
        return True

    # ------------------------------------------------------------------
    # Data forwarding
    # ------------------------------------------------------------------
    def _forward_or_discover(self, packet: Packet) -> None:
        destination = packet.destination
        entry = self.routing_table.get(destination)
        if entry is not None:
            hop_packet = packet.next_hop_copy(self.node_id, entry.next_hop)
            self.node.send(hop_packet)
            return
        self._pending.setdefault(destination, []).append(packet)
        self._start_discovery(destination)

    def _relay(self, packet: Packet) -> None:
        destination = packet.destination
        entry = self.routing_table.get(destination)
        if entry is None:
            # No route (e.g. we never saw the RREP).  Re-discover and queue;
            # in a static connected network discovery always succeeds.
            self._pending.setdefault(destination, []).append(packet)
            self._start_discovery(destination)
            return
        self.data_packets_forwarded += 1
        hop_packet = packet.next_hop_copy(self.node_id, entry.next_hop)
        self.node.send(hop_packet)

    # ------------------------------------------------------------------
    # Route discovery
    # ------------------------------------------------------------------
    def _start_discovery(self, destination: int) -> None:
        self.sequence_number += 1
        self.request_id += 1
        payload = RreqPayload(
            originator=self.node_id,
            originator_seq=self.sequence_number,
            request_id=self.request_id,
            target=destination,
            hop_count=0,
        )
        self._seen_requests.add((self.node_id, self.request_id))
        self._broadcast_rreq(payload)

    def _broadcast_rreq(self, payload: RreqPayload) -> None:
        packet = Packet(
            kind=PacketKind.AODV_RREQ,
            source=payload.originator,
            destination=BROADCAST_ADDRESS,
            size_bytes=RREQ_SIZE_BYTES,
            payload=payload,
            link_source=self.node_id,
            link_destination=BROADCAST_ADDRESS,
        )
        self.control_packets_sent += 1
        # A small random jitter de-synchronises the flood so neighboring nodes
        # do not all rebroadcast at the exact same instant.
        delay = self._rng.uniform(0.0, self.rreq_jitter)
        self.node.simulator.schedule(delay, self.node.send, packet, name="rreq")

    def _handle_rreq(self, packet: Packet) -> None:
        payload: RreqPayload = packet.payload
        key = (payload.originator, payload.request_id)
        if payload.originator == self.node_id or key in self._seen_requests:
            return
        self._seen_requests.add(key)
        hops_to_origin = payload.hop_count + 1
        self._update_route(payload.originator, packet.link_source, hops_to_origin,
                           payload.originator_seq)
        if payload.target == self.node_id:
            self.sequence_number += 1
            reply = RrepPayload(
                originator=payload.originator,
                target=self.node_id,
                target_seq=self.sequence_number,
                hop_count=0,
            )
            self._send_rrep(reply)
            return
        forwarded = RreqPayload(
            originator=payload.originator,
            originator_seq=payload.originator_seq,
            request_id=payload.request_id,
            target=payload.target,
            hop_count=hops_to_origin,
        )
        self._broadcast_rreq(forwarded)

    def _send_rrep(self, payload: RrepPayload) -> None:
        entry = self.routing_table.get(payload.originator)
        if entry is None:
            raise RoutingError(
                f"node {self.node_id} generated a RREP without a reverse route "
                f"to {payload.originator}"
            )
        packet = Packet(
            kind=PacketKind.AODV_RREP,
            source=payload.target,
            destination=payload.originator,
            size_bytes=RREP_SIZE_BYTES,
            payload=payload,
            link_source=self.node_id,
            link_destination=entry.next_hop,
        )
        self.control_packets_sent += 1
        self.node.send(packet)

    def _handle_rrep(self, packet: Packet) -> None:
        payload: RrepPayload = packet.payload
        hops_to_target = payload.hop_count + 1
        self._update_route(payload.target, packet.link_source, hops_to_target,
                           payload.target_seq)
        if payload.originator == self.node_id:
            self._flush_pending(payload.target)
            return
        entry = self.routing_table.get(payload.originator)
        if entry is None:
            # The reverse route evaporated (should not happen on static
            # networks); drop the reply and let the originator retry.
            return
        forwarded = RrepPayload(
            originator=payload.originator,
            target=payload.target,
            target_seq=payload.target_seq,
            hop_count=hops_to_target,
        )
        out = Packet(
            kind=PacketKind.AODV_RREP,
            source=payload.target,
            destination=payload.originator,
            size_bytes=RREP_SIZE_BYTES,
            payload=forwarded,
            link_source=self.node_id,
            link_destination=entry.next_hop,
        )
        self.control_packets_sent += 1
        self.node.send(out)

    # ------------------------------------------------------------------
    # Routing table maintenance
    # ------------------------------------------------------------------
    def _update_route(
        self, destination: int, next_hop: int, hop_count: int, seq: int
    ) -> None:
        if destination == self.node_id:
            return
        current = self.routing_table.get(destination)
        if (
            current is None
            or seq > current.destination_seq
            or (seq == current.destination_seq and hop_count < current.hop_count)
        ):
            self.routing_table[destination] = RouteEntry(
                destination=destination,
                next_hop=next_hop,
                hop_count=hop_count,
                destination_seq=seq,
            )

    def _flush_pending(self, destination: int) -> None:
        waiting = self._pending.pop(destination, [])
        for packet in waiting:
            self._forward_or_discover(packet)
