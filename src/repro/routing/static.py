"""Static shortest-path routing.

A zero-overhead alternative to AODV used (a) in unit tests of the forwarding
substrate and (b) in the ablation benchmark that isolates how much of the
centralized baseline's energy bill is route-discovery overhead versus data
relaying.  Routes are computed offline from the topology (next-hop tables of
the shortest-path tree towards each destination) and installed directly in
the agents.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.errors import RoutingError
from ..network.node import SimNode
from ..network.packet import BROADCAST_ADDRESS, Packet
from ..network.topology import Topology

__all__ = ["StaticRoutingAgent", "install_shortest_path_routes"]


class StaticRoutingAgent:
    """Hop-by-hop forwarder driven by a precomputed next-hop table."""

    def __init__(self, node: SimNode) -> None:
        self.node = node
        self.next_hop: Dict[int, int] = {}
        self.data_packets_forwarded = 0
        node.add_handler(self.handle_packet)

    @property
    def node_id(self) -> int:
        return self.node.node_id

    def set_route(self, destination: int, next_hop: int) -> None:
        if destination == self.node_id:
            raise RoutingError("a node does not need a route to itself")
        self.next_hop[destination] = next_hop

    def has_route(self, destination: int) -> bool:
        return destination in self.next_hop or destination == self.node_id

    def send_data(self, packet: Packet) -> None:
        """Originate an end-to-end unicast data packet from this node."""
        if packet.destination == BROADCAST_ADDRESS:
            raise RoutingError("static routing does not handle broadcasts")
        self._forward(packet)

    def handle_packet(self, node: SimNode, packet: Packet) -> bool:
        if packet.is_broadcast or packet.destination == self.node_id:
            return False
        self.data_packets_forwarded += 1
        self._forward(packet)
        return True

    def _forward(self, packet: Packet) -> None:
        try:
            hop = self.next_hop[packet.destination]
        except KeyError:
            raise RoutingError(
                f"node {self.node_id} has no static route to {packet.destination}"
            ) from None
        self.node.send(packet.next_hop_copy(self.node_id, hop))


def install_shortest_path_routes(
    agents: Dict[int, StaticRoutingAgent],
    topology: Topology,
    sink: int,
) -> None:
    """Install next-hop entries towards ``sink`` (and from the sink back to
    every node) in all agents, following shortest paths in ``topology``."""
    topology.require_connected()
    towards_sink = topology.shortest_path_tree(sink)
    for node_id, agent in agents.items():
        if node_id == sink:
            continue
        next_hop = towards_sink[node_id]
        if next_hop is None:
            raise RoutingError(f"node {node_id} has no path to the sink {sink}")
        agent.set_route(sink, next_hop)
    # Reverse direction: the sink replies to every node along the *same*
    # tree.  Each node's parent chain to the sink is walked once (no
    # per-destination BFS): on the sink -> node path, every hop's next step
    # towards the node is the chain predecessor, i.e. for the chain
    # node = c0 -> c1 -> ... -> sink, agent(c_{i+1}) routes the destination
    # ``node`` via c_i.
    for node_id in topology.node_ids:
        if node_id == sink:
            continue
        step = node_id
        parent = towards_sink[node_id]
        while parent is not None:
            # ``agents`` may cover only a subset of the topology (a shard's
            # local nodes); the chain is still walked in full so every local
            # hop on the path learns its route.
            agent = agents.get(parent)
            if agent is not None:
                agent.set_route(node_id, step)
            step = parent
            parent = towards_sink[parent]
