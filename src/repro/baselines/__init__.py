"""Baseline algorithms the paper compares against."""

from .centralized import CentralizedAggregator

__all__ = ["CentralizedAggregator"]
