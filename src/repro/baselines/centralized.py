"""Centralized outlier detection (the paper's comparison baseline).

In the centralized configuration every sensor periodically ships its entire
sliding-window contents to a single collection point (the *sink*), which
computes the top-n outliers over the union of all windows and sends the
result back to the sensors.  The transport (multi-hop AODV routing with
end-to-end acknowledgements) lives in :mod:`repro.wsn.centralized_app`; this
module holds the transport-free aggregation logic so it can also be used as
an offline reference implementation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..core.outliers import OutlierQuery
from ..core.points import DataPoint

__all__ = ["CentralizedAggregator"]


class CentralizedAggregator:
    """Sink-side state of the centralized baseline.

    The aggregator keeps the most recent window reported by every sensor and
    recomputes the global outlier set on demand.
    """

    def __init__(self, query: OutlierQuery) -> None:
        self.query = query
        self._windows: Dict[int, Set[DataPoint]] = {}
        self.updates_received = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_window(self, node_id: int, points: Iterable[DataPoint]) -> None:
        """Replace the stored window of ``node_id`` with ``points``."""
        self._windows[int(node_id)] = {p for p in points}
        self.updates_received += 1

    def forget(self, node_id: int) -> None:
        """Drop a sensor's contribution (e.g. when it leaves the network)."""
        self._windows.pop(int(node_id), None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def reporting_nodes(self) -> List[int]:
        """Sensors that have reported at least one window."""
        return sorted(self._windows)

    def union(self) -> Set[DataPoint]:
        """The union of the most recent windows of every reporting sensor."""
        result: Set[DataPoint] = set()
        for points in self._windows.values():
            result |= points
        return result

    def window_of(self, node_id: int) -> Set[DataPoint]:
        return set(self._windows.get(int(node_id), set()))

    def compute_outliers(self) -> List[DataPoint]:
        """``O_n`` over the union of all reported windows (ordered)."""
        return self.query.outliers(self.union())

    def total_points(self) -> int:
        """Number of distinct points currently known to the sink."""
        return len(self.union())
