"""Centralized outlier detection (the paper's comparison baseline).

In the centralized configuration every sensor periodically ships its entire
sliding-window contents to a single collection point (the *sink*), which
computes the top-n outliers over the union of all windows and sends the
result back to the sensors.  The transport (multi-hop AODV routing with
end-to-end acknowledgements) lives in :mod:`repro.wsn.centralized_app`; this
module holds the transport-free aggregation logic so it can also be used as
an offline reference implementation.

Although each upload *replaces* a sensor's stored window wholesale, the
windows slide by one or two samples per round, so the aggregator diffs the
old and new contents and maintains a reference-counted
:class:`~repro.core.index.NeighborhoodIndex` over the union incrementally:
per round the sink pays ``O(Δ · N)`` for the few points that actually
entered or left the union instead of an ``O(N² · d)`` rebuild at every
outlier computation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set

from ..core.batch import EventBatch
from ..core.index import NeighborhoodIndex
from ..core.outliers import OutlierQuery
from ..core.points import DataPoint
from ..core.rescoring import ScoreCache

__all__ = ["CentralizedAggregator"]


class CentralizedAggregator:
    """Sink-side state of the centralized baseline.

    The aggregator keeps the most recent window reported by every sensor and
    recomputes the global outlier set on demand.  With ``indexed=True``
    (default) the union of all windows is mirrored in an incremental
    neighborhood index; ``indexed=False`` preserves the full-recompute
    reference behavior.  With ``batched=True`` (default, only meaningful
    when indexed) each window upload's diff is applied to the index as one
    :class:`~repro.core.batch.EventBatch` instead of point by point --
    results are identical, only the dispatch is amortized.
    """

    def __init__(
        self, query: OutlierQuery, indexed: bool = True, batched: bool = True
    ) -> None:
        self.query = query
        self._windows: Dict[int, Set[DataPoint]] = {}
        #: Number of reporting windows containing each union point; a point
        #: enters the index on 0 -> 1 and leaves it on 1 -> 0.
        self._multiplicity: Counter = Counter()
        self._index: Optional[NeighborhoodIndex] = (
            NeighborhoodIndex(metric=query.ranking.metric) if indexed else None
        )
        # Dirty-set rescoring over the union: the per-round outlier
        # publication becomes a tail read of the maintained (score, ≺) order
        # instead of a full rescore of every reported window.
        self._cache: Optional[ScoreCache] = (
            ScoreCache.if_supported(self._index, query.ranking)
            if self._index is not None
            else None
        )
        self._batched = bool(batched) and self._index is not None
        self.updates_received = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_window(self, node_id: int, points: Iterable[DataPoint]) -> None:
        """Replace the stored window of ``node_id`` with ``points``.

        Only the symmetric difference against the previously stored window
        touches the union bookkeeping and the index.
        """
        fresh = {p for p in points}
        previous = self._windows.get(int(node_id), set())
        self._windows[int(node_id)] = fresh
        batch = EventBatch() if self._batched else None
        for point in fresh - previous:
            self._multiplicity[point] += 1
            if self._multiplicity[point] == 1:
                if batch is not None:
                    batch.adds.append(point)
                elif self._index is not None:
                    self._index.add(point)
        for point in previous - fresh:
            self._release(point, batch)
        if batch:
            self._index.apply_batch(batch)
        self.updates_received += 1

    def forget(self, node_id: int) -> None:
        """Drop a sensor's contribution (e.g. when it leaves the network)."""
        previous = self._windows.pop(int(node_id), None)
        if previous:
            batch = EventBatch() if self._batched else None
            for point in previous:
                self._release(point, batch)
            if batch:
                self._index.apply_batch(batch)

    def _release(
        self, point: DataPoint, batch: Optional[EventBatch] = None
    ) -> None:
        remaining = self._multiplicity[point] - 1
        if remaining > 0:
            self._multiplicity[point] = remaining
        else:
            del self._multiplicity[point]
            if batch is not None:
                batch.evicts.append(point)
            elif self._index is not None:
                self._index.discard(point)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def reporting_nodes(self) -> List[int]:
        """Sensors that have reported at least one window."""
        return sorted(self._windows)

    def union(self) -> Set[DataPoint]:
        """The union of the most recent windows of every reporting sensor."""
        return set(self._multiplicity)

    def window_of(self, node_id: int) -> Set[DataPoint]:
        return set(self._windows.get(int(node_id), set()))

    def compute_outliers(self) -> List[DataPoint]:
        """``O_n`` over the union of all reported windows (ordered)."""
        cache = self._cache
        if cache is not None and not cache.degraded:
            return cache.top_n(self.query.n)
        return self.query.outliers(self.union(), index=self._index)

    def total_points(self) -> int:
        """Number of distinct points currently known to the sink."""
        return len(self._multiplicity)
