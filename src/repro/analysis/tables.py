"""Plain-text table rendering for experiment results.

The benchmark harness prints, for every figure of the paper, the same series
the figure plots.  These helpers render those series as aligned text tables
so the output of ``pytest benchmarks/ --benchmark-only`` doubles as the
experiment report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Union

Number = Union[int, float]

__all__ = ["format_table", "format_series_table"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 10 ** (-precision) or abs(value) >= 10 ** 6:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_line([str(h) for h in headers]))
    lines.append(render_line(["-" * w for w in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    precision: int = 4,
    title: str = "",
) -> str:
    """Render one figure's data: an x column plus one column per curve."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)
