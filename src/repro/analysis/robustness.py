"""Robustness metrics for fault-and-churn scenarios.

Three questions the fault subsystem makes answerable, each with its metric:

* **How available was the network?**  :func:`availability_report` reads the
  per-node availability counters a fault-model run records
  (``SimulationResult.fault_stats``); fault-free runs report 1.0.
* **Did the detectors find the faulty-sensor points?**
  :func:`injected_point_scores` grades the nodes' final estimates as a
  retrieval task against the dataset's injection record (spikes, stuck-at
  runs, drifts -- including the fault model's permanent whole-sensor
  faults), restricted to the final windows so aged-out faults do not count
  as misses.
* **How quickly does a fault become visible?**  :func:`detection_latency`
  replays the reference query round by round over the dataset alone and
  measures, for each injected point, how many rounds pass between its
  injection and its first appearance in the reference top-n.  This is a
  property of the workload and the query (a data-level latency), so it
  isolates "the fault is geometrically detectable after r rounds" from any
  protocol or network effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Set

from ..core.outliers import OutlierQuery
from ..core.points import DataPoint, RestKey
from ..datasets.streams import SensorDataset

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an analysis->wsn
    # runtime dependency; this module only reads result attributes)
    from ..wsn.results import SimulationResult

__all__ = [
    "RetrievalScores",
    "LatencyReport",
    "availability_report",
    "mean_availability",
    "injected_point_scores",
    "detection_latency",
]


# ----------------------------------------------------------------------
# Availability
# ----------------------------------------------------------------------
def availability_report(result: "SimulationResult") -> Dict[int, float]:
    """Planned per-node availability of a run (1.0 for every node of a
    fault-free run)."""
    if result.fault_stats:
        return {
            node_id: float(stats["availability"])
            for node_id, stats in sorted(result.fault_stats.items())
        }
    return {node_id: 1.0 for node_id in sorted(result.estimates)}


def mean_availability(result: "SimulationResult") -> float:
    """Network-wide mean planned availability.

    Delegates to :attr:`~repro.wsn.results.SimulationResult.mean_availability`
    so the summary table and the sweep reports can never diverge.
    """
    return result.mean_availability


# ----------------------------------------------------------------------
# Precision / recall on injected faulty-sensor points
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetrievalScores:
    """Precision/recall of reported outliers against injected faults."""

    precision: float
    recall: float
    reported: int
    relevant: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "reported": float(self.reported),
            "relevant": float(self.relevant),
        }


def injected_point_scores(
    result: "SimulationResult", dataset: SensorDataset
) -> RetrievalScores:
    """Grade the final estimates as retrieval of injected faulty points.

    The *reported* set is the union over nodes of the final outlier
    estimates; the *relevant* set is every injected point still inside some
    final window (faults that aged out of the window are not recoverable
    and therefore not counted as misses).  Precision is 1.0 by convention
    when nothing was reported, recall 1.0 when nothing was recoverable.
    """
    scenario = result.scenario
    window = scenario.detection.window_length
    final_keys: Set[RestKey] = {
        point.rest
        for point in dataset.union_window(scenario.rounds - 1, window)
    }
    relevant = dataset.injections.all_keys & final_keys
    reported: Set[RestKey] = set()
    for keys in result.estimates.values():
        reported |= set(keys)
    hits = reported & relevant
    return RetrievalScores(
        precision=len(hits) / len(reported) if reported else 1.0,
        recall=len(hits) / len(relevant) if relevant else 1.0,
        reported=len(reported),
        relevant=len(relevant),
    )


# ----------------------------------------------------------------------
# Data-level detection latency
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencyReport:
    """Rounds from injection to first reference-top-n appearance."""

    latencies: Dict[RestKey, int]
    undetected: int

    @property
    def detected(self) -> int:
        return len(self.latencies)

    @property
    def detected_fraction(self) -> float:
        total = self.detected + self.undetected
        return self.detected / total if total else 1.0

    @property
    def mean_rounds(self) -> float:
        """Mean latency over the detected faults (0.0 when none detected)."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies.values()) / len(self.latencies)


def detection_latency(
    dataset: SensorDataset,
    query: OutlierQuery,
    window_length: int,
    rounds: Optional[int] = None,
) -> LatencyReport:
    """Replay the reference query per round and time injected-fault visibility.

    For every sampling round ``t`` the reference answer is the query's
    top-n over the union of all sensors' windows ending at ``t``.  An
    injected point first appearing in that answer at round ``t`` has
    latency ``t - epoch`` (0 = flagged the round it was sampled).  Points
    never appearing while inside a window count as ``undetected``.
    """
    rounds = dataset.epochs if rounds is None else min(rounds, dataset.epochs)
    injected = dataset.injections.all_keys
    if not injected:
        return LatencyReport(latencies={}, undetected=0)
    epoch_of: Dict[RestKey, int] = {}
    first_seen: Dict[RestKey, int] = {}
    ever_windowed: Set[RestKey] = set()
    for round_index in range(rounds):
        union: Set[DataPoint] = dataset.union_window(round_index, window_length)
        windowed_injected = [p for p in union if p.rest in injected]
        for point in windowed_injected:
            ever_windowed.add(point.rest)
            epoch_of.setdefault(point.rest, point.epoch)
        answer: Iterable[DataPoint] = query.outliers(union)
        for point in answer:
            if point.rest in injected and point.rest not in first_seen:
                first_seen[point.rest] = round_index
    latencies = {
        key: first_seen[key] - epoch_of[key] for key in first_seen
    }
    return LatencyReport(
        latencies=latencies,
        undetected=len(ever_windowed) - len(first_seen),
    )
