"""Cross-run energy aggregation and traffic-imbalance analysis.

The paper's figures average each configuration over four simulation
repetitions with different seeds; :func:`aggregate_energy` reproduces that
averaging.  :func:`traffic_imbalance` quantifies the hot-spot effect the
conclusion section describes (the sink's neighborhood carrying a traffic
density tens of times the network average under the centralized scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from ..core.errors import ExperimentError
from ..network.stats import EnergyReport
from ..network.topology import Topology

__all__ = ["EnergySummary", "aggregate_energy", "traffic_imbalance"]


@dataclass(frozen=True)
class EnergySummary:
    """Seed-averaged energy figures for one configuration.

    All per-round quantities are "average joules per node per sampling
    round", the unit of the paper's Figures 4 and 7-9; the min/avg/max node
    totals are whole-run joules as in Figure 5.
    """

    runs: int
    avg_tx_per_round: float
    avg_rx_per_round: float
    avg_total_per_round: float
    min_node_total: float
    avg_node_total: float
    max_node_total: float

    @property
    def normalised_min(self) -> float:
        return self.min_node_total / self.avg_node_total if self.avg_node_total else 0.0

    @property
    def normalised_max(self) -> float:
        return self.max_node_total / self.avg_node_total if self.avg_node_total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "runs": float(self.runs),
            "avg_tx_per_round": self.avg_tx_per_round,
            "avg_rx_per_round": self.avg_rx_per_round,
            "avg_total_per_round": self.avg_total_per_round,
            "min_node_total": self.min_node_total,
            "avg_node_total": self.avg_node_total,
            "max_node_total": self.max_node_total,
            "normalised_min": self.normalised_min,
            "normalised_max": self.normalised_max,
        }


def aggregate_energy(reports: Sequence[EnergyReport]) -> EnergySummary:
    """Average the per-run energy figures over repetitions."""
    if not reports:
        raise ExperimentError("aggregate_energy needs at least one report")
    count = len(reports)
    return EnergySummary(
        runs=count,
        avg_tx_per_round=sum(r.average_per_node_per_round("tx_joules") for r in reports) / count,
        avg_rx_per_round=sum(r.average_per_node_per_round("rx_joules") for r in reports) / count,
        avg_total_per_round=sum(
            r.average_per_node_per_round("total_joules") for r in reports
        ) / count,
        min_node_total=sum(r.minimum_node_total() for r in reports) / count,
        avg_node_total=sum(r.average_per_node("total_joules") for r in reports) / count,
        max_node_total=sum(r.maximum_node_total() for r in reports) / count,
    )


def traffic_imbalance(
    report: EnergyReport,
    topology: Topology,
    sink_id: int,
) -> Dict[str, float]:
    """How concentrated the energy expenditure is around the sink.

    Returns the ratio of the sink-neighborhood's average per-node energy to
    the network-wide average, the overall max/avg ratio, and the identity of
    the hottest node.  Under the centralized baseline the sink's neighborhood
    relays every window of every sensor, so these ratios are large; under the
    distributed algorithms they stay near one.
    """
    by_node = report.by_node()
    if sink_id not in by_node:
        raise ExperimentError(f"sink {sink_id} not present in the energy report")
    neighborhood = {sink_id} | topology.neighbors(sink_id)
    hot_values = [by_node[n].total_joules for n in neighborhood if n in by_node]
    average = report.average_per_node("total_joules")
    hot_average = sum(hot_values) / len(hot_values)
    hottest = report.hottest_node()
    return {
        "sink_neighborhood_ratio": hot_average / average if average else 0.0,
        "max_over_avg": hottest.total_joules / average if average else 0.0,
        "hottest_node": float(hottest.node_id),
        "sink_neighborhood_size": float(len(hot_values)),
    }
