"""Detection-accuracy metrics.

The paper evaluates accuracy as the fraction of sensors whose converged
outlier estimate equals the correct answer (reporting ~99%, with errors
attributed to dropped packets).  This module computes that metric plus a
graded Jaccard similarity that distinguishes "off by one point" from
"completely wrong", which is useful when packet loss is injected.
Estimates and references are compared on the points' ``rest`` fields so hop
annotations never influence the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Set

from ..core.points import DataPoint, RestKey

__all__ = ["normalise", "jaccard", "AccuracyReport", "compare_estimates"]


def normalise(points: Iterable[DataPoint]) -> Set[RestKey]:
    """Reduce a collection of points to the set of their ``rest`` keys."""
    return {p.rest for p in points}


def jaccard(a: Set[RestKey], b: Set[RestKey]) -> float:
    """Jaccard similarity of two key sets (1.0 when both are empty)."""
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


@dataclass
class AccuracyReport:
    """Per-node comparison of estimates against the reference answer."""

    exact: Dict[int, bool] = field(default_factory=dict)
    similarity: Dict[int, float] = field(default_factory=dict)

    @property
    def node_count(self) -> int:
        return len(self.exact)

    @property
    def exact_fraction(self) -> float:
        """Fraction of sensors whose estimate is exactly correct."""
        if not self.exact:
            return 1.0
        return sum(1 for ok in self.exact.values() if ok) / len(self.exact)

    @property
    def mean_similarity(self) -> float:
        """Average Jaccard similarity across sensors."""
        if not self.similarity:
            return 1.0
        return sum(self.similarity.values()) / len(self.similarity)

    @property
    def incorrect_nodes(self) -> List[int]:
        return sorted(node for node, ok in self.exact.items() if not ok)

    def as_dict(self) -> Dict[str, float]:
        return {
            "node_count": float(self.node_count),
            "exact_fraction": self.exact_fraction,
            "mean_similarity": self.mean_similarity,
        }


def compare_estimates(
    estimates: Mapping[int, Iterable[DataPoint]],
    references: Mapping[int, Iterable[DataPoint]],
) -> AccuracyReport:
    """Compare every sensor's estimate with its (per-sensor) reference.

    For the global and centralized algorithms the caller passes the same
    reference for every sensor; for the semi-global algorithm each sensor has
    its own ``O_n(D_i^{<=d})``.
    """
    report = AccuracyReport()
    for node_id, estimate in estimates.items():
        reference = references.get(node_id, [])
        est_keys = normalise(estimate)
        ref_keys = normalise(reference)
        report.exact[node_id] = est_keys == ref_keys
        report.similarity[node_id] = jaccard(est_keys, ref_keys)
    return report
