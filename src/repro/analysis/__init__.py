"""Analysis utilities: accuracy metrics, energy aggregation, report tables."""

from .accuracy import AccuracyReport, compare_estimates, jaccard, normalise
from .energy_stats import EnergySummary, aggregate_energy, traffic_imbalance
from .tables import format_series_table, format_table

__all__ = [
    "AccuracyReport",
    "compare_estimates",
    "jaccard",
    "normalise",
    "EnergySummary",
    "aggregate_energy",
    "traffic_imbalance",
    "format_table",
    "format_series_table",
]
