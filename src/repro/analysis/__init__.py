"""Analysis utilities: accuracy metrics, energy aggregation, report tables."""

from .accuracy import AccuracyReport, compare_estimates, jaccard, normalise
from .robustness import (
    LatencyReport,
    RetrievalScores,
    availability_report,
    detection_latency,
    injected_point_scores,
    mean_availability,
)
from .energy_stats import EnergySummary, aggregate_energy, traffic_imbalance
from .tables import format_series_table, format_table

__all__ = [
    "AccuracyReport",
    "compare_estimates",
    "jaccard",
    "normalise",
    "LatencyReport",
    "RetrievalScores",
    "availability_report",
    "mean_availability",
    "injected_point_scores",
    "detection_latency",
    "EnergySummary",
    "aggregate_energy",
    "traffic_imbalance",
    "format_table",
    "format_series_table",
]
