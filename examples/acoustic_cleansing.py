"""Data cleansing before acoustic source localization (the paper's motivating
application, Section 2).

A sound source at an unknown position is heard by a field of sensors; each
sensor reports the time of arrival (converted to a range estimate).  A few
sensors are faulty -- echoes, desynchronised clocks -- and report wildly
wrong ranges.  Feeding all readings to a least-squares localiser gives a
badly biased position; running the in-network outlier detection first lets
every sensor prune the bad readings *locally*, so only clean data (and far
fewer bytes) need to be considered by the localiser.

Run with:  python examples/acoustic_cleansing.py
"""

import math
import random

import numpy as np

from repro import (
    GlobalOutlierDetector,
    InMemoryNetwork,
    NearestNeighborDistance,
    OutlierQuery,
    make_point,
)

SPEED_OF_SOUND = 343.0  # m/s


def localise(positions, ranges):
    """Least-squares source localization from (x, y, estimated range)."""
    positions = np.asarray(positions, dtype=float)
    ranges = np.asarray(ranges, dtype=float)
    # Linearise against the first sensor (standard multilateration trick).
    x0, y0 = positions[0]
    r0 = ranges[0]
    a_rows, b_rows = [], []
    for (x, y), r in zip(positions[1:], ranges[1:]):
        a_rows.append([2.0 * (x - x0), 2.0 * (y - y0)])
        b_rows.append(r0 ** 2 - r ** 2 + x ** 2 - x0 ** 2 + y ** 2 - y0 ** 2)
    solution, *_ = np.linalg.lstsq(np.asarray(a_rows), np.asarray(b_rows), rcond=None)
    return float(solution[0]), float(solution[1])


def main() -> None:
    rng = random.Random(11)
    source = (23.0, 31.0)

    # Sixteen sensors on a grid; each measures its distance to the source
    # (time-difference-of-arrival converted to metres) with small noise.
    sensor_positions = {i: (6.0 * (i % 4) + 3.0, 6.0 * (i // 4) + 3.0) for i in range(16)}
    adjacency = {i: [j for j in range(16) if j != i and
                     math.dist(sensor_positions[i], sensor_positions[j]) < 6.5]
                 for i in range(16)}

    measured = {}
    for node, (x, y) in sensor_positions.items():
        true_range = math.dist((x, y), source)
        noise = rng.gauss(0.0, 0.15)
        measured[node] = true_range + noise
    # Three sensors hear an echo / have a clock offset: ranges far too long.
    for faulty in (2, 7, 13):
        measured[faulty] += rng.uniform(25.0, 40.0)

    # Each sensor holds one data point: (range, x, y).  The in-network
    # protocol finds the 3 most outlying readings across the whole field.
    query = OutlierQuery(NearestNeighborDistance(), n=3)
    detectors = {i: GlobalOutlierDetector(i, query) for i in sensor_positions}
    datasets = {
        node: [make_point([measured[node], *sensor_positions[node]], origin=node, epoch=0)]
        for node in sensor_positions
    }
    network = InMemoryNetwork(detectors, adjacency)
    network.inject_local_data(datasets)
    network.run_to_quiescence()

    flagged = {p.origin for p in detectors[0].estimate()}
    print("sensors flagged as outliers by the in-network protocol:", sorted(flagged))

    all_nodes = sorted(sensor_positions)
    dirty = localise([sensor_positions[n] for n in all_nodes],
                     [measured[n] for n in all_nodes])
    clean_nodes = [n for n in all_nodes if n not in flagged]
    clean = localise([sensor_positions[n] for n in clean_nodes],
                     [measured[n] for n in clean_nodes])

    print(f"true source position:        ({source[0]:6.2f}, {source[1]:6.2f})")
    print(f"localised from all data:     ({dirty[0]:6.2f}, {dirty[1]:6.2f})"
          f"   error = {math.dist(dirty, source):5.2f} m")
    print(f"localised after cleansing:   ({clean[0]:6.2f}, {clean[1]:6.2f})"
          f"   error = {math.dist(clean, source):5.2f} m")


if __name__ == "__main__":
    main()
