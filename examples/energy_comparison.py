"""Energy comparison: in-network detection vs. centralising the data.

Runs three full WSN simulations (discrete-event simulator, broadcast MAC,
Crossbow-mote energy model) over the same synthetic Intel-Lab-style workload:

* the centralized baseline (every node ships its window to a sink over AODV),
* the distributed global algorithm with the NN ranking function,
* the distributed semi-global algorithm with epsilon = 2.

It then prints the average per-node energy per sampling round and the
hot-spot ratios, reproducing the paper's core claim: in-network detection
uses a fraction of the energy and spreads it far more evenly.

Run with:  python examples/energy_comparison.py
"""

from repro.analysis import format_table, traffic_imbalance
from repro.core import Algorithm, DetectionConfig
from repro.datasets import build_intel_lab_dataset
from repro.network import Topology
from repro.wsn import ScenarioConfig, run_scenario


def main() -> None:
    configurations = [
        DetectionConfig(algorithm=Algorithm.CENTRALIZED, ranking="nn",
                        n_outliers=4, k=4, window_length=8),
        DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn",
                        n_outliers=4, k=4, window_length=8),
        DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, ranking="nn",
                        n_outliers=4, k=4, window_length=8, hop_diameter=2),
    ]

    rows = []
    for detection in configurations:
        scenario = ScenarioConfig(detection=detection, node_count=16, rounds=12, seed=7)
        result = run_scenario(scenario)
        dataset = build_intel_lab_dataset(scenario.dataset_config())
        topology = Topology.from_positions(dataset.positions, scenario.transmission_range)
        hotspots = traffic_imbalance(result.energy, topology, scenario.sink_id)
        summary = result.summary()
        rows.append([
            scenario.label(),
            summary["avg_tx_per_round"],
            summary["avg_rx_per_round"],
            summary["avg_total_per_round"],
            hotspots["max_over_avg"],
            summary["accuracy_exact"],
        ])

    print(format_table(
        headers=["algorithm", "TX J/round", "RX J/round", "total J/round",
                 "hottest/avg", "accuracy"],
        rows=rows,
        precision=5,
        title="16 sensors, 12 rounds, w=8, n=4 (synthetic Intel-Lab workload)",
    ))


if __name__ == "__main__":
    main()
