"""Quickstart: distributed global outlier detection over an in-memory network.

Four sensors each hold a small window of (temperature, x, y) readings; one of
them recorded a spurious spike.  Every sensor runs the paper's global
detection protocol over a loss-free in-memory transport and converges to the
same, exact top-2 outliers -- while exchanging far fewer points than
centralising all the data would require.

Run with:  python examples/quickstart.py
"""

from repro import (
    AverageKNNDistance,
    GlobalOutlierDetector,
    InMemoryNetwork,
    OutlierQuery,
    make_point,
)
from repro.core import global_reference


def main() -> None:
    # Every sensor agrees on the outlier definition: average distance to the
    # 3 nearest neighbors, report the top 2.
    query = OutlierQuery(AverageKNNDistance(k=3), n=2)

    # Four sensors in a line: 0 - 1 - 2 - 3 (single-hop links only).
    adjacency = {0: [1], 1: [2], 2: [3], 3: []}
    detectors = {i: GlobalOutlierDetector(i, query) for i in adjacency}

    # Each sensor samples five readings around 21 degrees; sensor 2 recorded a
    # 40-degree spike (a faulty reading) and sensor 0 a 5-degree one.
    readings = {
        0: [21.1, 20.9, 21.3, 5.0, 21.0],
        1: [21.4, 21.2, 20.8, 21.1, 21.3],
        2: [20.7, 40.2, 21.0, 21.2, 20.9],
        3: [21.0, 21.1, 21.2, 20.8, 21.4],
    }
    datasets = {
        node: [
            make_point([temperature, float(node) * 5.0, 0.0], origin=node, epoch=epoch)
            for epoch, temperature in enumerate(values)
        ]
        for node, values in readings.items()
    }

    network = InMemoryNetwork(detectors, adjacency)
    network.inject_local_data(datasets)
    deliveries = network.run_to_quiescence()

    print("protocol quiesced after", deliveries, "packet deliveries")
    print("data points put on the air:", network.log.point_transmissions,
          "(out of", sum(len(v) for v in datasets.values()), "total readings)")
    print("all sensors agree:", network.estimates_agree())

    reference = global_reference(query, datasets)
    print("\nreference answer (omniscient):")
    for point in reference:
        print(f"  temperature={point.values[0]:5.1f}  from sensor {point.origin}")

    print("\nsensor 3's local estimate after convergence:")
    for point in detectors[3].estimate():
        print(f"  temperature={point.values[0]:5.1f}  from sensor {point.origin}")


if __name__ == "__main__":
    main()
