"""Streaming operation: sliding windows, dynamic data and a sensor joining.

The protocol is event-driven: when new samples arrive, old samples age out of
the window, or the neighborhood changes, affected sensors simply process the
event and the network re-converges.  This example drives a five-sensor chain
through several sampling rounds, prints the (always consistent, always exact)
estimates after every round, then hot-plugs a sixth sensor whose data changes
the answer.

Run with:  python examples/streaming_updates.py
"""

import random

from repro import (
    GlobalOutlierDetector,
    InMemoryNetwork,
    NearestNeighborDistance,
    OutlierQuery,
    SlidingWindow,
    make_point,
)
from repro.core import global_reference


def main() -> None:
    rng = random.Random(5)
    query = OutlierQuery(NearestNeighborDistance(), n=2)
    window_length = 4

    adjacency = {0: [1], 1: [2], 2: [3], 3: [4], 4: []}
    detectors = {i: GlobalOutlierDetector(i, query) for i in adjacency}
    windows = {i: SlidingWindow(window_length) for i in adjacency}
    network = InMemoryNetwork(detectors, adjacency)

    local_streams = {i: [] for i in adjacency}

    def sample_round(epoch: int) -> None:
        for node in sorted(adjacency):
            value = rng.gauss(20.0, 0.5)
            if node == 3 and epoch == 4:
                value = 35.0  # a transient fault at sensor 3
            point = make_point([value, node * 4.0, 0.0], origin=node, epoch=epoch)
            local_streams[node].append(point)
            added, _ = windows[node].slide(epoch, [point])
            expired = [p for p in detectors[node].holdings
                       if p.timestamp < windows[node].cutoff(epoch)]
            message = detectors[node].update_local_data(added, expired)
            if message is not None:
                network.submit(message)  
        network.run_to_quiescence()

    for epoch in range(6):
        sample_round(epoch)
        current_windows = {n: windows[n].points for n in adjacency}
        reference = {p.rest for p in global_reference(query, current_windows)}
        estimate = {p.rest for p in detectors[0].estimate()}
        top = sorted(detectors[0].estimate(), key=lambda p: -p.values[0])
        print(f"round {epoch}: agree={network.estimates_agree()} "
              f"exact={estimate == reference} "
              f"top outlier temp={top[0].values[0]:.1f} (sensor {top[0].origin})")

    # A sixth sensor joins next to sensor 4 with unusually cold readings.
    print("\nsensor 5 joins the network next to sensor 4 ...")
    detectors[5] = GlobalOutlierDetector(5, query)
    network.detectors[5] = detectors[5]
    network.adjacency[4].add(5)
    network.adjacency[5] = {4}
    network.submit(detectors[4].neighborhood_changed({3, 5}))
    network.submit(detectors[5].neighborhood_changed({4}))
    cold = [make_point([7.0 + 0.1 * e, 24.0, 0.0], origin=5, epoch=6 + e) for e in range(2)]
    network.inject_local_data({5: cold})
    network.run_to_quiescence()

    print("all sensors agree after the join:", network.estimates_agree())
    for point in detectors[0].estimate():
        print(f"  outlier: temperature={point.values[0]:.1f} from sensor {point.origin}")


if __name__ == "__main__":
    main()
