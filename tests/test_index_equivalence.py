"""Randomized equivalence suite: the incremental index vs the brute oracle.

Theorems 1-2 of the paper hold only if every sensor computes ``O_n(P_i)``,
the support sets ``[P|x]`` and the sufficient sets *exactly*; an index that
is merely "approximately right" would silently break convergence.  These
tests therefore drive the :class:`~repro.core.index.NeighborhoodIndex`
engine and the full-recompute reference implementations through identical
randomized workloads -- scores, minimal support sets, sufficient-set
fixpoints and complete detector protocol transcripts -- across all four
ranking functions and arbitrary add/evict/message/neighborhood-change
interleavings, asserting set-level identity (not approximate closeness).

Two data regimes are exercised:

* *continuous* Gaussian clouds (the generic case);
* *integer grids*, where many pairwise distances collide exactly and every
  floating-point path (scalar ``math.dist``, the numpy matrix oracle, the
  cached index lists) is provably bit-identical, so the ``≺`` tie-breaking
  logic is stressed hard.

The final section replays the same workloads for *every registered metric*
(Manhattan, Chebyshev, weighted Euclidean, Mahalanobis): the index sorts its
neighbor lists under whatever metric it is configured with, and the
equivalence guarantee -- indexed == brute-force oracle, bitwise -- must hold
per geometry, not only for the Euclidean default.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.centralized import CentralizedAggregator
from repro.core import (
    AverageKNNDistance,
    GlobalOutlierDetector,
    InMemoryNetwork,
    KthNearestNeighborDistance,
    NearestNeighborDistance,
    NeighborCountWithinRadius,
    NeighborhoodIndex,
    OutlierQuery,
    ScoreCache,
    SemiGlobalOutlierDetector,
    compute_sufficient_set,
    global_reference,
    make_point,
    satisfies_sufficiency,
    semi_global_reference_all,
    support_of_set,
    top_n_outliers,
)
from repro.core.errors import RankingError
from repro.core.metrics import metric_from_name, registered_metrics


def random_connected_adjacency(rng: random.Random, sensors: int):
    """A random connected graph: a random tree plus a few extra edges.

    (Local copy of the helper in ``tests/conftest.py`` -- importing the
    ``conftest`` module by name would collide with ``benchmarks/conftest.py``
    when the whole repository is collected in one pytest run.)
    """
    adjacency = {i: set() for i in range(sensors)}
    order = list(range(sensors))
    rng.shuffle(order)
    for index in range(1, sensors):
        other = rng.choice(order[:index])
        adjacency[order[index]].add(other)
        adjacency[other].add(order[index])
    for _ in range(rng.randint(0, sensors)):
        a, b = rng.sample(range(sensors), 2)
        adjacency[a].add(b)
        adjacency[b].add(a)
    return {node: sorted(neighbors) for node, neighbors in adjacency.items()}


RANKINGS = [
    NearestNeighborDistance(),
    KthNearestNeighborDistance(k=3),
    AverageKNNDistance(k=4),
    # k >= 8 matters: numpy switches to pairwise summation there, so this
    # regime guards the left-to-right summation agreement between the bulk
    # oracle and the scalar/indexed paths.
    AverageKNNDistance(k=9),
    NeighborCountWithinRadius(alpha=6.0),
]
RANKING_IDS = ["nn", "kth-nn", "knn", "knn9", "count"]


def _cloud(rng: random.Random, count: int, dim: int = 2, origin: int = 0,
           start_epoch: int = 0, grid: str = "continuous"):
    """Random dataset in one of three regimes.

    ``"continuous"`` -- Gaussian coordinates (generic position, no ties);
    ``"int-grid"``   -- integer coordinates (exact arithmetic, many ties);
    ``"tenth-grid"`` -- integers scaled by 0.1, i.e. quantised sensor
    readings: distances tie *mathematically* but the coordinates are not
    exactly representable, so any code path computing distances with a
    different floating-point recipe rounds the ties apart and flips the
    ``≺`` tie-break.  This regime is what caught the ``math.dist`` vs
    vectorised-numpy divergence.
    """
    points = []
    for i in range(count):
        if grid == "int-grid":
            values = [float(rng.randint(-8, 8)) for _ in range(dim)]
        elif grid == "tenth-grid":
            values = [rng.randint(-40, 40) * 0.1 for _ in range(dim)]
        else:
            values = [rng.gauss(0.0, 10.0) for _ in range(dim)]
        points.append(make_point(values, origin=origin, epoch=start_epoch + i))
    return points


GRID_REGIMES = ["continuous", "int-grid", "tenth-grid"]


def _metric_for(name: str, dim: int = 2):
    """A registered metric instance with parameters sized for ``dim``."""
    if name == "weighted-euclidean":
        return metric_from_name(
            name, weights=tuple(0.5 + 0.5 * i for i in range(dim))
        )
    if name == "mahalanobis":
        # Diagonally dominant SPD matrix with off-diagonal correlation.
        cov = tuple(
            tuple(
                float(dim) + 2.0 + i if i == j else 0.4
                for j in range(dim)
            )
            for i in range(dim)
        )
        return metric_from_name(name, cov=cov)
    return metric_from_name(name)


def _metric_rankings(metric):
    """One representative of every ranking family, on ``metric``.  The COUNT
    radius is metric-scale dependent, so it is chosen per geometry."""
    alpha = {"chebyshev": 5.0, "mahalanobis": 3.0}.get(metric.name, 8.0)
    return [
        NearestNeighborDistance(metric=metric),
        KthNearestNeighborDistance(k=3, metric=metric),
        AverageKNNDistance(k=4, metric=metric),
        NeighborCountWithinRadius(alpha=alpha, metric=metric),
    ]


# ----------------------------------------------------------------------
# Index mechanics
# ----------------------------------------------------------------------
class TestIndexMechanics:
    def test_add_discard_roundtrip(self):
        rng = random.Random(7)
        pts = _cloud(rng, 20)
        index = NeighborhoodIndex(pts)
        assert len(index) == 20
        assert index.covers(pts)
        assert index.add(pts[0]) is False  # already present
        assert index.discard(pts[3]) is True
        assert index.discard(pts[3]) is False
        assert pts[3] not in index
        assert len(index) == 19

    def test_slot_reuse_after_eviction(self):
        rng = random.Random(8)
        pts = _cloud(rng, 10)
        index = NeighborhoodIndex(pts)
        for p in pts[:5]:
            index.discard(p)
        fresh = _cloud(rng, 5, origin=1)
        for p in fresh:
            index.add(p)
        ranking = NearestNeighborDistance()
        remaining = pts[5:] + fresh
        for x in remaining:
            assert ranking.score_indexed(index, x) == ranking.score(x, remaining)

    def test_replace_is_hop_only(self):
        rng = random.Random(9)
        pts = _cloud(rng, 6)
        index = NeighborhoodIndex(pts)
        promoted = pts[2].with_hop(3)
        assert index.replace(pts[2], promoted) is True
        assert promoted in index and pts[2] not in index
        # Geometry is untouched: scores still match the oracle.
        mirror = pts[:2] + [promoted] + pts[3:]
        ranking = AverageKNNDistance(k=2)
        for x in mirror:
            assert ranking.score_indexed(index, x) == ranking.score(x, mirror)

    def test_replace_rejects_different_observation(self):
        rng = random.Random(10)
        pts = _cloud(rng, 3)
        index = NeighborhoodIndex(pts)
        with pytest.raises(RankingError):
            index.replace(pts[0], make_point([99.0, 99.0], origin=5, epoch=77))

    def test_dimension_mismatch_rejected(self):
        index = NeighborhoodIndex([make_point([1.0, 2.0], 0, 0)])
        with pytest.raises(RankingError):
            index.add(make_point([1.0], 0, 1))

    def test_same_observation_copies_are_not_neighbors(self):
        base = make_point([0.0], origin=0, epoch=0)
        twin = base.with_hop(2)           # same ``rest``, different hop
        far = make_point([5.0], origin=0, epoch=1)
        index = NeighborhoodIndex([base, twin, far])
        ranking = NearestNeighborDistance()
        # The hop twin must not count as base's nearest neighbor.
        assert ranking.score_indexed(index, base) == 5.0
        assert ranking.score(base, [base, twin, far]) == 5.0

    def test_try_subset_full_vs_partial(self):
        rng = random.Random(11)
        pts = _cloud(rng, 12)
        index = NeighborhoodIndex(pts)
        covered, subset = index.try_subset(pts)
        assert covered and subset is None
        covered, subset = index.try_subset(pts[:5])
        assert covered and subset is not None and subset.size == 5
        covered, subset = index.try_subset(pts[:2] + [make_point([0.0, 0.0], 9, 9)])
        assert not covered

    def test_entries_is_readonly_snapshot(self):
        """``entries()`` must not hand out the live internals: it returns an
        immutable tuple, so callers cannot corrupt the index, and the
        snapshot stays intact across later mutations."""
        rng = random.Random(14)
        pts = _cloud(rng, 8)
        index = NeighborhoodIndex(pts)
        entries = index.entries(pts[0])
        assert isinstance(entries, tuple)
        with pytest.raises(TypeError):
            entries[0] = (0.0, None, 0)  # type: ignore[index]
        before = list(entries)
        assert index.discard(pts[3])
        assert list(entries) == before  # snapshot untouched
        assert len(index.entries(pts[0])) == len(before) - 1  # index moved on
        # The snapshot is ordered by (distance, ≺) like the brute oracle.
        ranking = NearestNeighborDistance()
        remaining = [p for p in pts if p != pts[3]]
        assert index.entries(pts[0])[0][0] == ranking.score(pts[0], remaining)


# ----------------------------------------------------------------------
# Scores and minimal support sets under churn
# ----------------------------------------------------------------------
@pytest.mark.parametrize("grid", GRID_REGIMES)
@pytest.mark.parametrize("ranking", RANKINGS, ids=RANKING_IDS)
def test_scores_and_supports_match_oracle_under_churn(ranking, grid):
    rng = random.Random(hash((type(ranking).__name__, grid)) & 0xFFFF)
    mirror = _cloud(rng, 30, grid=grid)
    index = NeighborhoodIndex(mirror)
    next_epoch = 1000
    for step in range(120):
        roll = rng.random()
        if roll < 0.45 and len(mirror) > 4:
            victim = rng.choice(mirror)
            mirror.remove(victim)
            assert index.discard(victim)
        else:
            fresh = _cloud(rng, 1, origin=1, start_epoch=next_epoch, grid=grid)[0]
            next_epoch += 1
            mirror.append(fresh)
            assert index.add(fresh)
        if step % 10 != 0:
            continue
        # Full-index scoring: indexed walk vs scalar oracle, bit-exact.
        for x in rng.sample(mirror, min(6, len(mirror))):
            assert ranking.score_indexed(index, x) == ranking.score(x, mirror)
            assert ranking.support_indexed(index, x) == ranking.support(x, mirror)
        # Subset scoring: masked walk vs scalar oracle on the subset.
        sub = rng.sample(mirror, max(3, len(mirror) // 2))
        covered, subset = index.try_subset(sub)
        assert covered
        for x in rng.sample(sub, min(5, len(sub))):
            assert ranking.score_indexed(index, x, subset) == ranking.score(x, sub)
            assert ranking.support_indexed(index, x, subset) == ranking.support(x, sub)
        # Ranked outliers (the detectors' estimate path), order included.
        assert (
            top_n_outliers(ranking, mirror, 5, index=index)
            == top_n_outliers(ranking, mirror, 5)
        )


@pytest.mark.parametrize("grid", GRID_REGIMES)
@pytest.mark.parametrize("ranking", RANKINGS, ids=RANKING_IDS)
def test_all_scoring_paths_bitwise_identical(ranking, grid):
    """The scalar oracle, the vectorised bulk oracle and the indexed walks
    must agree *bitwise*, not approximately: a single last-ulp disagreement
    on a mathematically tied distance flips the ``≺`` tie-break and the
    detector transcripts diverge.  (Regression test for ``math.dist`` vs
    vectorised-numpy rounding on quantised readings.)"""
    rng = random.Random(hash((type(ranking).__name__, grid, "bitwise")) & 0xFFFF)
    for _ in range(6):
        pts = _cloud(rng, rng.randint(5, 24), grid=grid)
        index = NeighborhoodIndex(pts)
        bulk = ranking.bulk_scores(pts)
        for i, x in enumerate(pts):
            scalar = ranking.score(x, pts)
            assert bulk[i] == scalar
            assert ranking.score_indexed(index, x) == scalar
        assert (
            top_n_outliers(ranking, pts, 4, index=index)
            == top_n_outliers(ranking, pts, 4)
        )


@pytest.mark.parametrize("ranking", RANKINGS, ids=RANKING_IDS)
def test_support_of_set_matches_oracle(ranking):
    rng = random.Random(21)
    P = _cloud(rng, 40)
    index = NeighborhoodIndex(P)
    Q = rng.sample(P, 8)
    assert (
        support_of_set(ranking, Q, P, index=index)
        == support_of_set(ranking, Q, P)
    )
    sub = rng.sample(P, 17)
    Qs = rng.sample(sub, 5)
    assert (
        support_of_set(ranking, Qs, sub, index=index)
        == support_of_set(ranking, Qs, sub)
    )


# ----------------------------------------------------------------------
# Sufficient-set fixpoint
# ----------------------------------------------------------------------
@pytest.mark.parametrize("grid", GRID_REGIMES)
@pytest.mark.parametrize("ranking", RANKINGS, ids=RANKING_IDS)
def test_sufficient_sets_match_oracle(ranking, grid):
    rng = random.Random(hash((type(ranking).__name__, grid, "zfix")) & 0xFFFF)
    query = OutlierQuery(ranking, n=3)
    for _ in range(10):
        P = _cloud(rng, rng.randint(6, 35), grid=grid)
        index = NeighborhoodIndex(P)
        shared = set(rng.sample(P, rng.randint(0, len(P) // 2)))
        fast = compute_sufficient_set(query, P, shared, index=index)
        slow = compute_sufficient_set(query, P, shared)
        assert fast == slow
        assert satisfies_sufficiency(query, fast, P, shared)


# ----------------------------------------------------------------------
# Full protocol transcripts: indexed and oracle detectors in lockstep
# ----------------------------------------------------------------------
def _twin_global_networks(query, adjacency, seed):
    nets = []
    for indexed in (True, False):
        detectors = {
            i: GlobalOutlierDetector(i, query, neighbors=adjacency[i], indexed=indexed)
            for i in adjacency
        }
        nets.append(InMemoryNetwork(detectors, adjacency, seed=seed))
    return nets


def _transcript(net):
    return [(m.sender, dict(m.payloads)) for m in net.log.messages]


@pytest.mark.parametrize("ranking", RANKINGS, ids=RANKING_IDS)
def test_global_detector_transcripts_match_oracle(ranking):
    rng = random.Random(hash(type(ranking).__name__) & 0xFFFF)
    sensors = 5
    adjacency = random_connected_adjacency(rng, sensors)
    query = OutlierQuery(ranking, n=3)
    fast_net, slow_net = _twin_global_networks(query, adjacency, seed=42)

    datasets = {i: _cloud(rng, 8, origin=i) for i in range(sensors)}
    for net in (fast_net, slow_net):
        net.inject_local_data(datasets)
        net.run_to_quiescence()

    # Interleave evictions, fresh data and deliveries for a few rounds.  As
    # in the paper's sliding-window rule, an expired point is deleted by
    # *every* sensor holding it, so each round's expired set is evicted
    # network-wide.
    for round_index in range(4):
        expired = [
            p
            for points in datasets.values()
            for p in points
            if p.epoch % 4 == round_index % 4
        ]
        evictions = {i: expired for i in range(sensors)}
        fresh = {
            i: _cloud(rng, 2, origin=i, start_epoch=100 + 10 * round_index)
            for i in range(sensors)
        }
        for net in (fast_net, slow_net):
            net.evict(evictions)
            net.inject_local_data(fresh)
            net.run_to_quiescence()

    assert _transcript(fast_net) == _transcript(slow_net)
    assert fast_net.estimates() == slow_net.estimates()
    assert fast_net.estimates_agree() and slow_net.estimates_agree()

    # Both converge to the omniscient answer (Theorem 1).
    final = {
        i: fast_net.detectors[i].local_data for i in range(sensors)
    }
    reference = set(global_reference(query, final))
    for estimate in fast_net.estimates().values():
        assert estimate == reference


def test_global_detector_neighborhood_changes_match_oracle(nn_query):
    """Link churn: drop and re-add edges mid-run, transcripts stay equal."""
    rng = random.Random(77)
    adjacency = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
    fast_net, slow_net = _twin_global_networks(nn_query, adjacency, seed=5)
    datasets = {i: _cloud(rng, 6, origin=i) for i in range(4)}
    for net in (fast_net, slow_net):
        net.inject_local_data(datasets)
        net.run_to_quiescence()

    # Bring up a shortcut link 0-3, then drop 1-2, on both twins.
    for net in (fast_net, slow_net):
        net.adjacency[0].add(3)
        net.adjacency[3].add(0)
        net.submit(net.detectors[0].neighborhood_changed({1, 3}))
        net.submit(net.detectors[3].neighborhood_changed({2, 0}))
        net.run_to_quiescence()
        net.adjacency[1].discard(2)
        net.adjacency[2].discard(1)
        net.submit(net.detectors[1].neighborhood_changed({0}))
        net.submit(net.detectors[2].neighborhood_changed({3}))
        net.run_to_quiescence()

    assert _transcript(fast_net) == _transcript(slow_net)
    assert fast_net.estimates() == slow_net.estimates()


@pytest.mark.parametrize("variant", ["refined", "paper"])
@pytest.mark.parametrize("ranking", [RANKINGS[0], RANKINGS[2]], ids=["nn", "knn"])
def test_semiglobal_detector_transcripts_match_oracle(ranking, variant):
    """Chain topology forces multi-hop forwarding, so the min-hop merge and
    its O(1) index relabelling are exercised on every round."""
    rng = random.Random(hash((type(ranking).__name__, variant)) & 0xFFFF)
    sensors = 5
    adjacency = {i: [j for j in (i - 1, i + 1) if 0 <= j < sensors]
                 for i in range(sensors)}
    query = OutlierQuery(ranking, n=2)
    nets = []
    for indexed in (True, False):
        detectors = {
            i: SemiGlobalOutlierDetector(
                i, query, hop_diameter=2, neighbors=adjacency[i],
                variant=variant, indexed=indexed,
            )
            for i in range(sensors)
        }
        nets.append(InMemoryNetwork(detectors, adjacency, seed=13))
    fast_net, slow_net = nets

    datasets = {i: _cloud(rng, 5, origin=i) for i in range(sensors)}
    for net in (fast_net, slow_net):
        net.inject_local_data(datasets)
        net.run_to_quiescence()

    for round_index in range(3):
        expired = [
            p
            for points in datasets.values()
            for p in points
            if p.epoch % 3 == round_index % 3
        ]
        evictions = {i: expired for i in range(sensors)}
        fresh = {
            i: _cloud(rng, 2, origin=i, start_epoch=200 + 10 * round_index)
            for i in range(sensors)
        }
        for net in (fast_net, slow_net):
            net.evict(evictions)
            net.inject_local_data(fresh)
            net.run_to_quiescence()

    assert _transcript(fast_net) == _transcript(slow_net)
    assert fast_net.estimates() == slow_net.estimates()


# ----------------------------------------------------------------------
# Centralized baseline and reference computations
# ----------------------------------------------------------------------
def test_centralized_aggregator_matches_oracle(knn_query):
    rng = random.Random(31)
    fast = CentralizedAggregator(knn_query, indexed=True)
    slow = CentralizedAggregator(knn_query, indexed=False)
    streams = {i: _cloud(rng, 30, origin=i) for i in range(4)}
    for round_index in range(12):
        for node in range(4):
            window = streams[node][round_index: round_index + 8]
            fast.update_window(node, window)
            slow.update_window(node, window)
        assert fast.union() == slow.union()
        assert fast.compute_outliers() == slow.compute_outliers()
        assert fast.total_points() == slow.total_points()
    fast.forget(2)
    slow.forget(2)
    assert fast.union() == slow.union()
    assert fast.compute_outliers() == slow.compute_outliers()


def test_semi_global_reference_shared_index_matches_oracle(nn_query):
    rng = random.Random(41)
    sensors = 6
    adjacency = random_connected_adjacency(rng, sensors)
    datasets = {i: _cloud(rng, 7, origin=i) for i in range(sensors)}
    fast = semi_global_reference_all(
        nn_query, datasets, adjacency, 2, shared_index=True
    )
    slow = semi_global_reference_all(nn_query, datasets, adjacency, 2)
    assert fast == slow


# ----------------------------------------------------------------------
# Every registered metric: indexed engine vs brute oracle
#
# The index caches neighbor lists sorted under its configured metric, so the
# equivalence guarantee must hold per geometry, not only for the Euclidean
# default.  These tests replay the churn/scoring/support/sufficient-set and
# full-transcript workloads above for every name in the metric registry.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("grid", GRID_REGIMES)
@pytest.mark.parametrize("metric_name", registered_metrics())
def test_scores_and_supports_match_oracle_under_every_metric(metric_name, grid):
    metric = _metric_for(metric_name)
    rng = random.Random(f"{metric_name}-{grid}-metric-churn")  # str seeds are deterministic
    mirror = _cloud(rng, 24, grid=grid)
    index = NeighborhoodIndex(mirror, metric=metric)
    rankings = _metric_rankings(metric)
    next_epoch = 1000
    for step in range(60):
        if rng.random() < 0.45 and len(mirror) > 5:
            victim = rng.choice(mirror)
            mirror.remove(victim)
            assert index.discard(victim)
        else:
            fresh = _cloud(rng, 1, origin=1, start_epoch=next_epoch, grid=grid)[0]
            next_epoch += 1
            mirror.append(fresh)
            assert index.add(fresh)
        if step % 12 != 0:
            continue
        for ranking in rankings:
            # Bulk oracle, scalar oracle and indexed walks, bitwise.
            bulk = ranking.bulk_scores(mirror)
            for i, x in enumerate(rng.sample(mirror, min(5, len(mirror)))):
                scalar = ranking.score(x, mirror)
                assert ranking.score_indexed(index, x) == scalar
                assert bulk[mirror.index(x)] == scalar
                assert ranking.support_indexed(index, x) == ranking.support(x, mirror)
            # Subset scoring (the sufficient-set fixpoint shape).
            sub = rng.sample(mirror, max(4, len(mirror) // 2))
            covered, subset = index.try_subset(sub)
            assert covered
            for x in rng.sample(sub, min(4, len(sub))):
                assert ranking.score_indexed(index, x, subset) == ranking.score(x, sub)
                assert (
                    ranking.support_indexed(index, x, subset)
                    == ranking.support(x, sub)
                )
            assert (
                top_n_outliers(ranking, mirror, 5, index=index)
                == top_n_outliers(ranking, mirror, 5)
            )


@pytest.mark.parametrize("metric_name", registered_metrics())
def test_sufficient_sets_match_oracle_under_every_metric(metric_name):
    metric = _metric_for(metric_name)
    rng = random.Random(f"{metric_name}-metric-zfix")
    for ranking in _metric_rankings(metric):
        query = OutlierQuery(ranking, n=3)
        for _ in range(4):
            P = _cloud(rng, rng.randint(8, 28))
            index = NeighborhoodIndex(P, metric=metric)
            shared = set(rng.sample(P, rng.randint(0, len(P) // 2)))
            fast = compute_sufficient_set(query, P, shared, index=index)
            slow = compute_sufficient_set(query, P, shared)
            assert fast == slow
            assert satisfies_sufficiency(query, fast, P, shared)


@pytest.mark.parametrize(
    "metric_name", [name for name in registered_metrics() if name != "euclidean"]
)
def test_global_detector_transcripts_match_oracle_under_metric(metric_name):
    """Whole-protocol equivalence under non-Euclidean geometry: the indexed
    and brute-force detectors (both constructing their state from a
    metric-carrying query) must emit identical transcripts."""
    metric = _metric_for(metric_name)
    rng = random.Random(f"{metric_name}-transcripts")
    sensors = 4
    adjacency = random_connected_adjacency(rng, sensors)
    query = OutlierQuery(AverageKNNDistance(k=3, metric=metric), n=3)
    fast_net, slow_net = _twin_global_networks(query, adjacency, seed=17)

    datasets = {i: _cloud(rng, 6, origin=i) for i in range(sensors)}
    for net in (fast_net, slow_net):
        net.inject_local_data(datasets)
        net.run_to_quiescence()

    for round_index in range(3):
        expired = [
            p
            for points in datasets.values()
            for p in points
            if p.epoch % 3 == round_index % 3
        ]
        evictions = {i: expired for i in range(sensors)}
        fresh = {
            i: _cloud(rng, 2, origin=i, start_epoch=300 + 10 * round_index)
            for i in range(sensors)
        }
        for net in (fast_net, slow_net):
            net.evict(evictions)
            net.inject_local_data(fresh)
            net.run_to_quiescence()

    assert _transcript(fast_net) == _transcript(slow_net)
    assert fast_net.estimates() == slow_net.estimates()
    assert fast_net.estimates_agree() and slow_net.estimates_agree()

    # Convergence to the omniscient answer holds under any metric
    # (Theorem 1 never uses properties of the Euclidean distance).
    final = {i: fast_net.detectors[i].local_data for i in range(sensors)}
    reference = set(global_reference(query, final))
    for estimate in fast_net.estimates().values():
        assert estimate == reference


def test_indexed_paths_reject_mismatched_metric():
    """Querying an index built under one metric with a ranking configured
    for another must fail loudly, not silently score in the wrong
    geometry."""
    rng = random.Random("metric-mismatch")
    pts = _cloud(rng, 8)
    euclidean_index = NeighborhoodIndex(pts)  # default metric
    manhattan = metric_from_name("manhattan")
    ranking = AverageKNNDistance(k=3, metric=manhattan)
    with pytest.raises(RankingError):
        ranking.score_indexed(euclidean_index, pts[0])
    with pytest.raises(RankingError):
        ranking.support_indexed(euclidean_index, pts[0])
    with pytest.raises(RankingError):
        ranking.bulk_scores_indexed(euclidean_index, pts)
    # A matching index (separately constructed but same geometry) is fine.
    manhattan_index = NeighborhoodIndex(pts, metric=metric_from_name("manhattan"))
    assert (
        ranking.score_indexed(manhattan_index, pts[0])
        == ranking.score(pts[0], pts)
    )


# ----------------------------------------------------------------------
# Dirty-set rescoring: randomized event streams vs the brute oracle
#
# The ScoreCache rescores only the points whose k-neighbor frontier an event
# perturbed, so these tests drive indexed (cached) and brute-force detector
# twins through interleaved add/evict/replace/message/neighborhood streams
# and assert that every emitted message, every estimate and the final state
# coincide -- under every registered metric, not only the Euclidean default.
# ----------------------------------------------------------------------
def _message_view(message):
    return None if message is None else (message.sender, dict(message.payloads))


def _assert_event_equal(fast, slow, fast_msg, slow_msg, query):
    assert _message_view(fast_msg) == _message_view(slow_msg)
    assert fast.holdings == slow.holdings
    assert fast.estimate() == slow.estimate()
    # The cache's maintained order must equal the oracle ranking whenever
    # the detectors would trust it.
    cache = getattr(fast, "_cache", None)
    if cache is not None and not cache.degraded:
        assert cache.top_n(query.n) == fast.estimate()


@pytest.mark.parametrize("metric_name", registered_metrics())
def test_global_dirty_rescoring_event_stream_matches_oracle(metric_name):
    metric = _metric_for(metric_name)
    rng = random.Random(f"{metric_name}-global-stream")
    query = OutlierQuery(AverageKNNDistance(k=3, metric=metric), n=3)
    fast = GlobalOutlierDetector(0, query, neighbors=[1, 2], indexed=True)
    slow = GlobalOutlierDetector(0, query, neighbors=[1, 2], indexed=False)
    assert fast._cache is not None  # the built-in rankings support caching

    pool = []
    epoch = 0
    for step in range(60):
        roll = rng.random()
        if roll < 0.30 or len(pool) < 4:
            fresh = _cloud(rng, rng.randint(1, 3), start_epoch=epoch)
            epoch += 3
            pool.extend(fresh)
            events = [d.add_local_points(fresh) for d in (fast, slow)]
        elif roll < 0.50:
            victims = rng.sample(pool, rng.randint(1, min(3, len(pool))))
            for victim in victims:
                pool.remove(victim)
            events = [d.evict_points(victims) for d in (fast, slow)]
        elif roll < 0.70 and fast.neighbors:
            sender = rng.choice(sorted(fast.neighbors))
            delivered = _cloud(
                rng, rng.randint(1, 3), origin=sender, start_epoch=epoch
            )
            epoch += 3
            pool.extend(delivered)
            events = [d.handle_message(sender, delivered) for d in (fast, slow)]
        elif roll < 0.85:
            fresh = _cloud(rng, 1, start_epoch=epoch)
            epoch += 1
            victims = rng.sample(pool, min(2, len(pool)))
            for victim in victims:
                pool.remove(victim)
            pool.extend(fresh)
            events = [
                d.update_local_data(fresh, victims) for d in (fast, slow)
            ]
        else:
            neighbors = rng.choice([{1}, {2}, {1, 2}])
            events = [d.neighborhood_changed(neighbors) for d in (fast, slow)]
        _assert_event_equal(fast, slow, events[0], events[1], query)


@pytest.mark.parametrize("metric_name", registered_metrics())
def test_semiglobal_dirty_rescoring_event_stream_matches_oracle(metric_name):
    """Interleaved add/evict/replace/message streams: re-delivering a held
    observation at a smaller hop exercises the O(1) relabel path and the
    per-level caches' membership churn on every round."""
    metric = _metric_for(metric_name)
    rng = random.Random(f"{metric_name}-semiglobal-stream")
    query = OutlierQuery(KthNearestNeighborDistance(k=2, metric=metric), n=2)
    fast = SemiGlobalOutlierDetector(
        0, query, hop_diameter=2, neighbors=[1, 2], indexed=True
    )
    slow = SemiGlobalOutlierDetector(
        0, query, hop_diameter=2, neighbors=[1, 2], indexed=False
    )
    assert fast._caches is not None and len(fast._caches) == 2

    pool = []
    delivered_history = []
    epoch = 0
    for step in range(60):
        roll = rng.random()
        if roll < 0.30 or len(pool) < 4:
            fresh = _cloud(rng, rng.randint(1, 2), start_epoch=epoch)
            epoch += 2
            pool.extend(fresh)
            events = [d.add_local_points(fresh) for d in (fast, slow)]
        elif roll < 0.50:
            victims = rng.sample(pool, rng.randint(1, min(2, len(pool))))
            for victim in victims:
                pool.remove(victim)
            events = [d.evict_points(victims) for d in (fast, slow)]
        else:
            sender = rng.choice([1, 2])
            points = []
            for _ in range(rng.randint(1, 3)):
                if delivered_history and rng.random() < 0.45:
                    # Re-deliver a known observation, sometimes at a smaller
                    # hop -- the [·]^min merge replaces the held copy.
                    previous = rng.choice(delivered_history)
                    hop = max(1, previous.hop - rng.randint(0, 1))
                    points.append(previous.with_hop(hop))
                else:
                    fresh = _cloud(
                        rng, 1, origin=sender, start_epoch=epoch
                    )[0].with_hop(rng.randint(1, 2))
                    epoch += 1
                    points.append(fresh)
            delivered_history.extend(points)
            pool.extend(p for p in points if p.rest not in
                        {q.rest for q in pool})
            events = [d.handle_message(sender, points) for d in (fast, slow)]
        _assert_event_equal(fast, slow, events[0], events[1], query)


def test_score_cache_matches_oracle_under_churn_and_degrades_on_twins():
    rng = random.Random("score-cache-churn")
    ranking = AverageKNNDistance(k=3)
    index = NeighborhoodIndex()
    cache = ScoreCache(index, ranking)
    assert cache.supported
    mirror = []
    epoch = 0
    for step in range(80):
        if rng.random() < 0.55 or len(mirror) < 5:
            fresh = _cloud(rng, 1, start_epoch=epoch)[0]
            epoch += 1
            index.add(fresh)
            mirror.append(fresh)
        else:
            victim = rng.choice(mirror)
            mirror.remove(victim)
            index.discard(victim)
        assert not cache.degraded
        assert cache.top_n(4) == top_n_outliers(ranking, mirror, 4, index=index)
        assert len(cache) == len(mirror)
    # Two hop variants of one observation break strict (score, ≺) ordering,
    # so the cache must flag itself rather than return a slot-order answer...
    twin = mirror[0].with_hop(7)
    index.add(twin)
    assert cache.degraded
    # ...and recover (with correct answers) once the twin leaves.
    index.discard(twin)
    assert not cache.degraded
    assert cache.top_n(4) == top_n_outliers(ranking, mirror, 4, index=index)


def test_score_cache_unsupported_without_frontier_spec():
    """Rankings that do not expose a frontier structure (user-defined
    subclasses) must leave the cache unsupported; detectors then take the
    legacy full path and still match the oracle."""

    class OpaqueRanking(AverageKNNDistance):
        def frontier_spec(self):
            return None

    rng = random.Random("opaque")
    index = NeighborhoodIndex(_cloud(rng, 6))
    assert ScoreCache.if_supported(index, OpaqueRanking(k=2)) is None
    # Direct construction still yields a fully initialized (inert) object.
    cache = ScoreCache(index, OpaqueRanking(k=2))
    assert not cache.supported and cache.degraded
    assert len(cache) == 0
    assert cache.member_points() == []
    assert cache.top_n(3) == []

    query = OutlierQuery(OpaqueRanking(k=2), n=2)
    fast = GlobalOutlierDetector(0, query, neighbors=[1], indexed=True)
    slow = GlobalOutlierDetector(0, query, neighbors=[1], indexed=False)
    assert fast._cache is None
    epoch = 0
    for _ in range(10):
        fresh = _cloud(rng, 2, start_epoch=epoch)
        epoch += 2
        fast_msg = fast.add_local_points(fresh)
        slow_msg = slow.add_local_points(fresh)
        assert _message_view(fast_msg) == _message_view(slow_msg)
        assert fast.estimate() == slow.estimate()


@pytest.mark.parametrize(
    "metric_name", [name for name in registered_metrics() if name != "euclidean"]
)
def test_centralized_aggregator_matches_oracle_under_metric(metric_name):
    metric = _metric_for(metric_name)
    rng = random.Random(f"{metric_name}-sink")
    query = OutlierQuery(KthNearestNeighborDistance(k=2, metric=metric), n=3)
    fast = CentralizedAggregator(query, indexed=True)
    slow = CentralizedAggregator(query, indexed=False)
    streams = {i: _cloud(rng, 18, origin=i) for i in range(3)}
    for round_index in range(8):
        for node in range(3):
            window = streams[node][round_index: round_index + 6]
            fast.update_window(node, window)
            slow.update_window(node, window)
        assert fast.compute_outliers() == slow.compute_outliers()
