"""Tests for the performance-benchmark harness and the ``bench`` CLI.

The benchmark machinery is a regression guard, so these tests exercise it
at deliberately tiny window sizes/event counts: the point is the artifact
schema, the floor-check semantics and the CLI wiring, not the numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BENCH_SETUP_SCHEMA,
    check_batched_floor,
    check_setup_floor,
    check_speedup_floor,
    render_hotpath_table,
    render_regression_report,
    render_setup_table,
    run_hotpath_bench,
    run_setup_bench,
    write_bench_artifacts,
)
from repro.cli import main


class TestHotpathHarness:
    def test_payload_schema(self):
        payload = run_hotpath_bench(windows=(12, 20), events=2, quick=True)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["benchmark"] == "hotpath"
        assert payload["quick"] is True
        assert [row["window"] for row in payload["windows"]] == [12, 20]
        for row in payload["windows"]:
            assert row["indexed_ms"] > 0
            assert row["rebuild_ms"] > 0
            assert row["speedup"] == row["rebuild_ms"] / row["indexed_ms"]
            assert row["events_indexed"] == row["events_rebuild"] == 2

    def test_render_table_lists_every_window(self):
        payload = run_hotpath_bench(windows=(12,), events=2)
        table = render_hotpath_table(payload)
        assert "Per-event detector latency" in table
        assert "      12 " in table

    def test_floor_check_semantics(self):
        payload = {
            "windows": [
                {"window": 256, "speedup": 6.0},
                {"window": 1024, "speedup": 9.0},
            ]
        }
        ok, message = check_speedup_floor(payload, 5.0, 256)
        assert ok and "6.0x" in message
        ok, _ = check_speedup_floor(payload, 7.5, 256)
        assert not ok
        # A missing window must fail, never pass vacuously.
        ok, message = check_speedup_floor(payload, 1.0, 64)
        assert not ok and "not in the measured sweep" in message

    def test_payload_batched_fields(self):
        payload = run_hotpath_bench(windows=(12,), events=2, batch_sizes=(1, 4))
        (row,) = payload["windows"]
        assert [entry["batch_size"] for entry in row["batch_sweep"]] == [1, 4]
        for entry in row["batch_sweep"]:
            assert entry["batched_ms"] > 0
            assert entry["speedup"] > 0
        # The headline columns are the largest swept batch size.
        assert row["batch_size"] == 4
        assert row["batched_ms"] == row["batch_sweep"][-1]["batched_ms"]
        assert row["batched_speedup"] == pytest.approx(
            row["indexed_ms"] / row["batched_ms"]
        )
        assert row["events_batched"] > 0

    def test_batch_sizes_larger_than_window_are_skipped(self):
        payload = run_hotpath_bench(windows=(12,), events=2, batch_sizes=(4, 64))
        (row,) = payload["windows"]
        assert [entry["batch_size"] for entry in row["batch_sweep"]] == [4]
        assert row["batch_size"] == 4

    def test_batched_floor_check_semantics(self):
        payload = {
            "windows": [
                {"window": 256, "batched_speedup": 4.0, "batch_size": 64},
                {"window": 1024, "batched_speedup": None, "batch_size": None},
            ]
        }
        ok, message = check_batched_floor(payload, 2.5, 256)
        assert ok and "4.0x" in message
        ok, message = check_batched_floor(payload, 5.0, 256)
        assert not ok and "REGRESSION" in message
        # A row without batched measurements fails, never passes vacuously.
        ok, message = check_batched_floor(payload, 0.1, 1024)
        assert not ok and "no batched measurement" in message
        # So does a window that was never measured.
        ok, message = check_batched_floor(payload, 0.1, 64)
        assert not ok and "not in the measured sweep" in message

    def test_render_table_includes_batched_columns(self):
        payload = run_hotpath_bench(windows=(12,), events=2, batch_sizes=(1, 4))
        table = render_hotpath_table(payload)
        assert "batched ms" in table and "batch x" in table
        assert "batch sweep (events per tick): 1, 4" in table

    def test_regression_report_compares_old_and_new(self):
        baseline = {
            "windows": [{"window": 256, "indexed_ms": 2.0, "speedup": 8.0}]
        }
        current = {
            "windows": [
                {
                    "window": 256,
                    "indexed_ms": 3.0,
                    "batched_ms": 0.6,
                    "speedup": 5.0,
                }
            ]
        }
        report = render_regression_report(baseline, current)
        assert "2.000 -> 3.000" in report
        # Baselines from before the batched path render as "-".
        assert "- -> 0.600" in report
        assert "8.000x -> 5.000x" in report

    def test_artifacts_written_as_valid_json(self, tmp_path):
        payload = run_hotpath_bench(windows=(12,), events=2)
        written = write_bench_artifacts(tmp_path, hotpath=payload)
        assert [p.name for p in written] == ["BENCH_hotpath.json"]
        decoded = json.loads(written[0].read_text())
        assert decoded["schema"] == BENCH_SCHEMA
        assert decoded["windows"][0]["window"] == 12


class TestSetupHarness:
    def test_payload_schema(self):
        payload = run_setup_bench(node_counts=(32, 64), repeats=1)
        assert payload["schema"] == BENCH_SETUP_SCHEMA
        assert payload["benchmark"] == "setup"
        assert [row["nodes"] for row in payload["sizes"]] == [32, 64]
        for row in payload["sizes"]:
            assert row["layout_ms"] > 0
            assert row["grid_ms"] > 0
            assert row["brute_ms"] > 0  # well below the brute cap
            assert row["speedup"] == pytest.approx(
                row["brute_ms"] / row["grid_ms"]
            )
            assert row["edges"] > 0
            assert row["mean_degree"] > 0
            assert row["terrain"] > 0

    def test_brute_skipped_above_cap(self):
        from repro.bench import measure_setup

        row = measure_setup(48, repeats=1, brute_cap=32)
        assert row["brute_ms"] is None
        assert row["speedup"] is None
        assert row["grid_ms"] > 0

    def test_render_table_lists_every_size(self):
        payload = run_setup_bench(node_counts=(32,), repeats=1)
        table = render_setup_table(payload)
        assert "Scenario setup cost" in table
        assert "      32 " in table
        assert "brute oracle measured up to" in table

    def test_render_table_dashes_uncapped_sizes(self):
        payload = {
            "brute_cap": 16,
            "sizes": [
                {
                    "nodes": 32,
                    "terrain": 40.0,
                    "layout_ms": 0.1,
                    "grid_ms": 1.0,
                    "brute_ms": None,
                    "speedup": None,
                    "edges": 10,
                    "mean_degree": 2.0,
                }
            ],
        }
        table = render_setup_table(payload)
        assert " - " in table

    def test_setup_floor_check_semantics(self):
        payload = {
            "brute_cap": 4096,
            "sizes": [
                {"nodes": 2048, "speedup": 6.0},
                {"nodes": 16384, "speedup": None},
            ],
        }
        ok, message = check_setup_floor(payload, 4.0, 2048)
        assert ok and "6.0x" in message
        ok, message = check_setup_floor(payload, 8.0, 2048)
        assert not ok and "REGRESSION" in message
        # A size where the brute oracle was skipped fails, never passes
        # vacuously.
        ok, message = check_setup_floor(payload, 0.1, 16384)
        assert not ok and "brute oracle not measured" in message
        # So does a size that was never measured.
        ok, message = check_setup_floor(payload, 0.1, 512)
        assert not ok and "not in the measured sweep" in message

    def test_setup_artifact_written_as_valid_json(self, tmp_path):
        payload = run_setup_bench(node_counts=(32,), repeats=1)
        written = write_bench_artifacts(tmp_path, setup=payload)
        assert [p.name for p in written] == ["BENCH_setup.json"]
        decoded = json.loads(written[0].read_text())
        assert decoded["schema"] == BENCH_SETUP_SCHEMA
        assert decoded["sizes"][0]["nodes"] == 32


class TestBenchCLI:
    def test_bench_writes_both_artifacts_and_passes_floor(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench",
                "--quick",
                "--windows",
                "12,20",
                "--events",
                "2",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--floor",
                "0.1",
                "--floor-window",
                "20",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "perf guard ok" in output
        hotpath = json.loads((tmp_path / "BENCH_hotpath.json").read_text())
        e2e = json.loads((tmp_path / "BENCH_e2e.json").read_text())
        assert hotpath["benchmark"] == "hotpath"
        assert e2e["benchmark"] == "e2e"
        # The e2e grid covers all three algorithms of the paper.
        algorithms = {row["algorithm"] for row in e2e["scenarios"]}
        assert algorithms == {"global", "semi-global", "centralized"}
        for row in e2e["scenarios"]:
            assert row["wallclock_seconds"] > 0

    def test_bench_check_fails_below_floor(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench",
                "--windows",
                "12",
                "--events",
                "2",
                "--skip-e2e",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--floor",
                "1e9",
                "--floor-window",
                "12",
            ]
        )
        assert exit_code == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The artifact is still written so CI can upload the evidence.
        assert (tmp_path / "BENCH_hotpath.json").exists()
        assert not (tmp_path / "BENCH_e2e.json").exists()

    def test_bench_batch_floor_passes(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench",
                "--windows",
                "12",
                "--events",
                "2",
                "--batch-sizes",
                "1,4",
                "--skip-e2e",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--floor",
                "0.01",
                "--floor-window",
                "12",
                "--batch-floor",
                "0.01",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "batch guard ok" in output
        hotpath = json.loads((tmp_path / "BENCH_hotpath.json").read_text())
        assert hotpath["windows"][0]["batch_size"] == 4

    def test_bench_batch_floor_failure_prints_baseline_diff(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {"windows": [{"window": 12, "indexed_ms": 1.0, "speedup": 9.0}]}
            )
        )
        exit_code = main(
            [
                "bench",
                "--windows",
                "12",
                "--events",
                "2",
                "--batch-sizes",
                "4",
                "--skip-e2e",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--floor",
                "0.01",
                "--floor-window",
                "12",
                "--batch-floor",
                "1e9",
                "--baseline",
                str(baseline),
            ]
        )
        assert exit_code == 1
        output = capsys.readouterr().out
        assert "batch guard REGRESSION" in output
        # The failure is accompanied by the readable old-vs-new table.
        assert "perf regression report" in output
        # The artifact is still written so CI can upload the evidence.
        assert (tmp_path / "BENCH_hotpath.json").exists()

    def test_bench_rejects_malformed_windows(self, tmp_path, capsys):
        assert main(["bench", "--windows", "abc"]) == 2
        assert main(["bench", "--windows", "4"]) == 2

    def test_bench_rejects_malformed_batch_sizes(self, tmp_path, capsys):
        assert main(["bench", "--batch-sizes", "abc"]) == 2
        assert main(["bench", "--batch-sizes", "0"]) == 2

    def test_bench_setup_writes_artifact_and_passes_floor(
        self, tmp_path, capsys
    ):
        exit_code = main(
            [
                "bench",
                "--setup",
                "--setup-nodes",
                "32,64",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--setup-floor",
                "0.01",
                "--setup-floor-nodes",
                "64",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "setup guard ok" in output
        setup = json.loads((tmp_path / "BENCH_setup.json").read_text())
        assert setup["benchmark"] == "setup"
        assert [row["nodes"] for row in setup["sizes"]] == [32, 64]
        # The setup mode does not run the other suites.
        assert not (tmp_path / "BENCH_hotpath.json").exists()
        assert not (tmp_path / "BENCH_e2e.json").exists()

    def test_bench_setup_check_fails_below_floor(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench",
                "--setup",
                "--setup-nodes",
                "32",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--setup-floor",
                "1e9",
                "--setup-floor-nodes",
                "32",
            ]
        )
        assert exit_code == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The artifact is still written so CI can upload the evidence.
        assert (tmp_path / "BENCH_setup.json").exists()

    def test_bench_rejects_malformed_setup_nodes(self, tmp_path, capsys):
        assert main(["bench", "--setup", "--setup-nodes", "abc"]) == 2
        assert main(["bench", "--setup", "--setup-nodes", "1"]) == 2
