"""Tests for the performance-benchmark harness and the ``bench`` CLI.

The benchmark machinery is a regression guard, so these tests exercise it
at deliberately tiny window sizes/event counts: the point is the artifact
schema, the floor-check semantics and the CLI wiring, not the numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    check_batched_floor,
    check_speedup_floor,
    render_hotpath_table,
    render_regression_report,
    run_hotpath_bench,
    write_bench_artifacts,
)
from repro.cli import main


class TestHotpathHarness:
    def test_payload_schema(self):
        payload = run_hotpath_bench(windows=(12, 20), events=2, quick=True)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["benchmark"] == "hotpath"
        assert payload["quick"] is True
        assert [row["window"] for row in payload["windows"]] == [12, 20]
        for row in payload["windows"]:
            assert row["indexed_ms"] > 0
            assert row["rebuild_ms"] > 0
            assert row["speedup"] == row["rebuild_ms"] / row["indexed_ms"]
            assert row["events_indexed"] == row["events_rebuild"] == 2

    def test_render_table_lists_every_window(self):
        payload = run_hotpath_bench(windows=(12,), events=2)
        table = render_hotpath_table(payload)
        assert "Per-event detector latency" in table
        assert "      12 " in table

    def test_floor_check_semantics(self):
        payload = {
            "windows": [
                {"window": 256, "speedup": 6.0},
                {"window": 1024, "speedup": 9.0},
            ]
        }
        ok, message = check_speedup_floor(payload, 5.0, 256)
        assert ok and "6.0x" in message
        ok, _ = check_speedup_floor(payload, 7.5, 256)
        assert not ok
        # A missing window must fail, never pass vacuously.
        ok, message = check_speedup_floor(payload, 1.0, 64)
        assert not ok and "not in the measured sweep" in message

    def test_payload_batched_fields(self):
        payload = run_hotpath_bench(windows=(12,), events=2, batch_sizes=(1, 4))
        (row,) = payload["windows"]
        assert [entry["batch_size"] for entry in row["batch_sweep"]] == [1, 4]
        for entry in row["batch_sweep"]:
            assert entry["batched_ms"] > 0
            assert entry["speedup"] > 0
        # The headline columns are the largest swept batch size.
        assert row["batch_size"] == 4
        assert row["batched_ms"] == row["batch_sweep"][-1]["batched_ms"]
        assert row["batched_speedup"] == pytest.approx(
            row["indexed_ms"] / row["batched_ms"]
        )
        assert row["events_batched"] > 0

    def test_batch_sizes_larger_than_window_are_skipped(self):
        payload = run_hotpath_bench(windows=(12,), events=2, batch_sizes=(4, 64))
        (row,) = payload["windows"]
        assert [entry["batch_size"] for entry in row["batch_sweep"]] == [4]
        assert row["batch_size"] == 4

    def test_batched_floor_check_semantics(self):
        payload = {
            "windows": [
                {"window": 256, "batched_speedup": 4.0, "batch_size": 64},
                {"window": 1024, "batched_speedup": None, "batch_size": None},
            ]
        }
        ok, message = check_batched_floor(payload, 2.5, 256)
        assert ok and "4.0x" in message
        ok, message = check_batched_floor(payload, 5.0, 256)
        assert not ok and "REGRESSION" in message
        # A row without batched measurements fails, never passes vacuously.
        ok, message = check_batched_floor(payload, 0.1, 1024)
        assert not ok and "no batched measurement" in message
        # So does a window that was never measured.
        ok, message = check_batched_floor(payload, 0.1, 64)
        assert not ok and "not in the measured sweep" in message

    def test_render_table_includes_batched_columns(self):
        payload = run_hotpath_bench(windows=(12,), events=2, batch_sizes=(1, 4))
        table = render_hotpath_table(payload)
        assert "batched ms" in table and "batch x" in table
        assert "batch sweep (events per tick): 1, 4" in table

    def test_regression_report_compares_old_and_new(self):
        baseline = {
            "windows": [{"window": 256, "indexed_ms": 2.0, "speedup": 8.0}]
        }
        current = {
            "windows": [
                {
                    "window": 256,
                    "indexed_ms": 3.0,
                    "batched_ms": 0.6,
                    "speedup": 5.0,
                }
            ]
        }
        report = render_regression_report(baseline, current)
        assert "2.000 -> 3.000" in report
        # Baselines from before the batched path render as "-".
        assert "- -> 0.600" in report
        assert "8.000x -> 5.000x" in report

    def test_artifacts_written_as_valid_json(self, tmp_path):
        payload = run_hotpath_bench(windows=(12,), events=2)
        written = write_bench_artifacts(tmp_path, hotpath=payload)
        assert [p.name for p in written] == ["BENCH_hotpath.json"]
        decoded = json.loads(written[0].read_text())
        assert decoded["schema"] == BENCH_SCHEMA
        assert decoded["windows"][0]["window"] == 12


class TestBenchCLI:
    def test_bench_writes_both_artifacts_and_passes_floor(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench",
                "--quick",
                "--windows",
                "12,20",
                "--events",
                "2",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--floor",
                "0.1",
                "--floor-window",
                "20",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "perf guard ok" in output
        hotpath = json.loads((tmp_path / "BENCH_hotpath.json").read_text())
        e2e = json.loads((tmp_path / "BENCH_e2e.json").read_text())
        assert hotpath["benchmark"] == "hotpath"
        assert e2e["benchmark"] == "e2e"
        # The e2e grid covers all three algorithms of the paper.
        algorithms = {row["algorithm"] for row in e2e["scenarios"]}
        assert algorithms == {"global", "semi-global", "centralized"}
        for row in e2e["scenarios"]:
            assert row["wallclock_seconds"] > 0

    def test_bench_check_fails_below_floor(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench",
                "--windows",
                "12",
                "--events",
                "2",
                "--skip-e2e",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--floor",
                "1e9",
                "--floor-window",
                "12",
            ]
        )
        assert exit_code == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The artifact is still written so CI can upload the evidence.
        assert (tmp_path / "BENCH_hotpath.json").exists()
        assert not (tmp_path / "BENCH_e2e.json").exists()

    def test_bench_batch_floor_passes(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench",
                "--windows",
                "12",
                "--events",
                "2",
                "--batch-sizes",
                "1,4",
                "--skip-e2e",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--floor",
                "0.01",
                "--floor-window",
                "12",
                "--batch-floor",
                "0.01",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "batch guard ok" in output
        hotpath = json.loads((tmp_path / "BENCH_hotpath.json").read_text())
        assert hotpath["windows"][0]["batch_size"] == 4

    def test_bench_batch_floor_failure_prints_baseline_diff(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {"windows": [{"window": 12, "indexed_ms": 1.0, "speedup": 9.0}]}
            )
        )
        exit_code = main(
            [
                "bench",
                "--windows",
                "12",
                "--events",
                "2",
                "--batch-sizes",
                "4",
                "--skip-e2e",
                "--output-dir",
                str(tmp_path),
                "--check",
                "--floor",
                "0.01",
                "--floor-window",
                "12",
                "--batch-floor",
                "1e9",
                "--baseline",
                str(baseline),
            ]
        )
        assert exit_code == 1
        output = capsys.readouterr().out
        assert "batch guard REGRESSION" in output
        # The failure is accompanied by the readable old-vs-new table.
        assert "perf regression report" in output
        # The artifact is still written so CI can upload the evidence.
        assert (tmp_path / "BENCH_hotpath.json").exists()

    def test_bench_rejects_malformed_windows(self, tmp_path, capsys):
        assert main(["bench", "--windows", "abc"]) == 2
        assert main(["bench", "--windows", "4"]) == 2

    def test_bench_rejects_malformed_batch_sizes(self, tmp_path, capsys):
        assert main(["bench", "--batch-sizes", "abc"]) == 2
        assert main(["bench", "--batch-sizes", "0"]) == 2
